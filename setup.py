"""Setup shim.

The sandboxed environment has no ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel.  This shim lets the classic
``python setup.py develop`` editable install work offline; with network
access a plain ``pip install -e .`` works too.
"""

from setuptools import setup

setup()
