"""Fig. 6a: validation accuracy of the 100%/70%/50%-wrong criteria.

Follows the paper's protocol: generate a labelled corpus of AutoBench
testbenches (label = Eval2 outcome), validate each with every criterion
using one fixed judge group per task, and report accuracy over all /
correct / wrong testbenches.  Shape assertions encode the published
trends: stricter thresholds get better on wrong TBs and worse on correct
ones, and 70%-wrong wins globally (paper: 88.85%).
"""

from repro.eval import render_fig6a, run_study

from ._config import FULL, JOBS, bench_tasks, emit

SAMPLES_PER_TASK = 10 if FULL else 4


def _study():
    return run_study(bench_tasks(), samples_per_task=SAMPLES_PER_TASK,
                     n_jobs=JOBS)


def test_fig6a_validator_accuracy(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    accuracies = study.accuracies()
    text = (render_fig6a(accuracies)
            + f"\n\ncorpus: {len(study.records)} testbenches, "
              f"{study.n_correct} labelled correct")
    emit("fig6a_validator_accuracy", text)

    acc100 = accuracies["100%-wrong"]
    acc70 = accuracies["70%-wrong"]
    acc50 = accuracies["50%-wrong"]

    # Monotone trade-off along the threshold axis (paper Fig. 6a):
    # stricter criteria catch more wrong TBs...
    assert acc50["wrong"] >= acc70["wrong"] >= acc100["wrong"]
    # ...at the price of rejecting more correct TBs.
    assert acc100["correct"] >= acc70["correct"] >= acc50["correct"]
    # 70%-wrong is the best (or tied-best) global criterion.
    best = max(accuracies.values(), key=lambda a: a["total"])
    assert acc70["total"] >= best["total"] - 0.02
    # Global accuracy in the paper's neighbourhood (88.85%).
    assert 0.75 <= acc70["total"] <= 0.99
