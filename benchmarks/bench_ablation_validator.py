"""Ablation A2: validator internals — the green-row override and N_R.

Two design choices the paper fixes without a sweep:

- the 25% fully-green-row override attached to the 70% criterion,
- the judge-group size N_R = 20.

Measured on the Fig. 6a labelled corpus protocol.
"""

from repro.core.validator import Criterion
from repro.eval.validator_study import run_study

from ._config import FULL, JOBS, bench_tasks, emit

SAMPLES = 6 if FULL else 3


def _accuracy_with(criteria: dict, group_size: int):
    """Run the study with a custom criterion set / group size."""
    study = run_study(bench_tasks()[::2], samples_per_task=SAMPLES,
                      group_size=group_size, n_jobs=JOBS,
                      criteria=criteria)
    return {name: study.accuracy(name) for name in criteria}


def _run_ablation():
    with_row = Criterion("70%+row", 0.70, 0.25)
    without_row = Criterion("70%-norow", 0.70, None)
    row_rule = _accuracy_with({c.name: c for c in (with_row,
                                                   without_row)}, 20)
    base = Criterion("70%+row", 0.70, 0.25)
    group_sizes = {}
    for n_r in (5, 10, 20):
        group_sizes[n_r] = _accuracy_with({base.name: base},
                                          n_r)[base.name]
    return row_rule, group_sizes


def test_ablation_validator_design(benchmark):
    row_rule, group_sizes = benchmark.pedantic(_run_ablation, rounds=1,
                                               iterations=1)
    lines = ["ABLATION A2 — VALIDATOR DESIGN CHOICES", "",
             "Green-row override (70% column threshold):",
             f"{'variant':<12}{'total':>8}{'correct':>9}{'wrong':>8}"]
    for name, acc in row_rule.items():
        lines.append(f"{name:<12}{acc['total']:>8.1%}"
                     f"{acc['correct']:>9.1%}{acc['wrong']:>8.1%}")
    lines += ["", "Judge-group size N_R (70%-wrong with row rule):",
              f"{'N_R':<6}{'total':>8}{'correct':>9}{'wrong':>8}"]
    for n_r, acc in group_sizes.items():
        lines.append(f"{n_r:<6}{acc['total']:>8.1%}"
                     f"{acc['correct']:>9.1%}{acc['wrong']:>8.1%}")
    emit("ablation_validator", "\n".join(lines))

    # The row override exists to protect correct TBs: with it, accuracy
    # on correct testbenches must not be worse.
    assert (row_rule["70%+row"]["correct"]
            >= row_rule["70%-norow"]["correct"] - 0.01)
    # More judges never hurt much: N_R=20 within noise of the best.
    best_total = max(acc["total"] for acc in group_sizes.values())
    assert group_sizes[20]["total"] >= best_total - 0.05
