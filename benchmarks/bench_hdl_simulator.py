"""Substrate micro-benchmarks: parser and simulator throughput.

Not a paper experiment — these keep the simulator honest as the repo
evolves, since every paper experiment sits on thousands of these runs.
"""

from repro.codegen import render_checker_core, render_driver
from repro.core.checker_runtime import run_checker
from repro.core.simulation import run_driver
from repro.hdl import parse_source, simulate
from repro.problems import get_task

COUNTER_TB = """
module top_module (input clk, input reset, output reg [7:0] q);
always @(posedge clk) begin
    if (reset) q <= 8'd0;
    else q <= q + 8'd1;
end
endmodule

module tb;
    reg clk, reset;
    wire [7:0] q;
    integer i;
    top_module dut(.clk(clk), .reset(reset), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        reset = 1;
        @(posedge clk); #1;
        reset = 0;
        for (i = 0; i < 200; i = i + 1) begin
            @(posedge clk); #1;
        end
        $display("q=%d", q);
        $finish;
    end
endmodule
"""


def test_parse_throughput(benchmark):
    source = get_task("cmb_alu8").golden_rtl()
    result = benchmark(parse_source, source)
    assert result.modules


def test_simulate_200_cycle_counter(benchmark):
    result = benchmark(simulate, COUNTER_TB, "tb")
    assert result.stdout == ["q=200"]


def test_full_tb_run_and_check(benchmark):
    task = get_task("seq_count8_en")
    plan = task.canonical_scenarios()
    driver = render_driver(task, plan)
    checker = render_checker_core(task)
    rtl = task.golden_rtl()

    def run_and_check():
        run = run_driver(driver, rtl)
        return run_checker(checker, task.ports, run.records)

    report = benchmark(run_and_check)
    assert report.all_passed
