"""Substrate micro-benchmarks: parser and simulator throughput.

Not a paper experiment — these keep the simulator honest as the repo
evolves, since every paper experiment sits on thousands of these runs.

Two modes:

- ``pytest benchmarks/bench_hdl_simulator.py --benchmark-only`` runs the
  pytest-benchmark suite (steady-state numbers, caches warm);
- ``python benchmarks/bench_hdl_simulator.py [--quick] [--record]``
  times the compiled-vs-interpreted engines and the batched-vs-serial
  validator path end-to-end (cold caches), prints a report, and with
  ``--record`` refreshes ``benchmarks/BENCH_simulator.json`` so future
  PRs have a perf trajectory to compare against.
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.codegen import render_checker_core, render_driver
from repro.core.checker_runtime import run_checker
from repro.core.simulation import (clear_simulation_caches,
                                   clear_template_caches, run_driver,
                                   run_driver_batch, run_mutant_sweep)
from repro.hdl.compile import clear_program_cache
from repro.core.validator import ScenarioValidator
from repro.hdl import current_context, parse_source, simulate, use_context
from repro.llm.base import MeteredClient, UsageMeter
from repro.llm.profiles import get_profile
from repro.llm.synthetic import SyntheticLLM
from repro.mutation import generate_mutants
from repro.problems import get_task

BENCH_JSON = Path(__file__).parent / "BENCH_simulator.json"

# Numbers measured on the seed commit (pure interpreter, no caches) on
# the reference container; kept here so speedups are always reported
# against the same origin.  ``parse_small_tb_ms`` is the pre-master-regex
# front end (char-at-a-time lexer + level-cascade expression parser) on
# the COUNTER_TB source, measured immediately before the lexer rewrite.
SEED_BASELINE = {
    "counter_ms": 10.09,
    "tier1_suite_s": 85.9,
    "parse_small_tb_ms": 1.12,
}

COUNTER_TB = """
module top_module (input clk, input reset, output reg [7:0] q);
always @(posedge clk) begin
    if (reset) q <= 8'd0;
    else q <= q + 8'd1;
end
endmodule

module tb;
    reg clk, reset;
    wire [7:0] q;
    integer i;
    top_module dut(.clk(clk), .reset(reset), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        reset = 1;
        @(posedge clk); #1;
        reset = 0;
        for (i = 0; i < 200; i = i + 1) begin
            @(posedge clk); #1;
        end
        $display("q=%d", q);
        $finish;
    end
endmodule
"""


def test_parse_throughput(benchmark):
    source = get_task("cmb_alu8").golden_rtl()
    result = benchmark(parse_source, source)
    assert result.modules


def test_simulate_200_cycle_counter(benchmark):
    result = benchmark(simulate, COUNTER_TB, "tb")
    assert result.stdout == ["q=200"]


def test_simulate_200_cycle_counter_interpreted(benchmark):
    def run():
        return simulate(COUNTER_TB, "tb", engine="interpret")

    result = benchmark(run)
    assert result.stdout == ["q=200"]


def test_full_tb_run_and_check(benchmark):
    task = get_task("seq_count8_en")
    plan = task.canonical_scenarios()
    driver = render_driver(task, plan)
    checker = render_checker_core(task)
    rtl = task.golden_rtl()

    def run_and_check():
        run = run_driver(driver, rtl)
        return run_checker(checker, task.ports, run.records)

    report = benchmark(run_and_check)
    assert report.all_passed


def test_run_driver_batch_mutants(benchmark):
    """Steady-state batched sweep: one driver, ten mutant DUTs."""
    task = get_task("seq_count8_en")
    driver = render_driver(task, task.canonical_scenarios())
    mutants = [m.source for m in generate_mutants(
        task.golden_rtl(), 10, task.task_id)]

    # jobs=1 pinned: this measures the warm in-process batch path, not
    # pool fan-out, regardless of any REPRO_JOBS in the environment.
    runs = benchmark(run_driver_batch, driver, mutants, jobs=1)
    assert len(runs) == 10


def test_mutant_sweep_lockstep(benchmark):
    """Steady-state lockstep sweep: 20 mutants + golden lane, one run."""
    task = get_task("seq_count8_en")
    driver = render_driver(task, task.canonical_scenarios())
    golden = task.golden_rtl()
    mutants = [m.source for m in generate_mutants(
        golden, 20, task.task_id)]

    sweep = benchmark(run_mutant_sweep, driver, mutants,
                      golden_src=golden, mutant_engine="lockstep")
    assert sweep.engine == "lockstep", sweep.fallback_reason
    assert len(sweep.runs) == 20


def test_parse_throughput_reference_lexer(benchmark):
    from repro.hdl.lexer import tokenize

    source = get_task("cmb_alu8").golden_rtl()
    result = benchmark(tokenize, source, "reference")
    assert result[-1].text == ""


# ----------------------------------------------------------------------
# Cold-path engine comparison (script mode)
# ----------------------------------------------------------------------
def _time_repeated(fn, min_seconds: float, min_rounds: int = 3) -> float:
    """Best-of wall time per call, at least ``min_rounds`` calls."""
    best = float("inf")
    start = time.perf_counter()
    rounds = 0
    while rounds < min_rounds or time.perf_counter() - start < min_seconds:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
        rounds += 1
    return best


def bench_parse(seconds: float) -> dict:
    """Front-end cost: master-regex tokenizer vs reference, plus the
    full cold parse (lexer + recursive-descent parser, caches bypassed).

    ``lexer_speedup`` is a same-run, same-machine ratio — the CI floor
    gates on it.  ``parse_speedup_vs_seed`` compares the recorded
    pre-rewrite front end and is only meaningful on the reference
    container, so it never gates quick runs.
    """
    from repro.hdl.lexer import tokenize
    from repro.hdl.parser import parse_source as parse_uncached

    sources = {
        "small_tb": COUNTER_TB,
        "alu8_rtl": get_task("cmb_alu8").golden_rtl(),
    }
    out = {}
    for name, src in sources.items():
        master = _time_repeated(lambda: tokenize(src, "master"), seconds)
        reference = _time_repeated(lambda: tokenize(src, "reference"),
                                   seconds)
        cold_parse = _time_repeated(lambda: parse_uncached(src), seconds)
        out[name] = {
            "tokenize_master_ms": master * 1000,
            "tokenize_reference_ms": reference * 1000,
            "lexer_speedup": reference / master,
            "parse_source_cold_ms": cold_parse * 1000,
        }
    out["small_tb"]["parse_speedup_vs_seed"] = (
        SEED_BASELINE["parse_small_tb_ms"]
        / out["small_tb"]["parse_source_cold_ms"])
    return out


def bench_counter(seconds: float) -> dict:
    out = {}
    for engine in ("interpret", "compiled"):
        def run(_engine=engine):
            result = simulate(COUNTER_TB, "tb", engine=_engine)
            assert result.stdout == ["q=200"]
        out[engine] = _time_repeated(run, seconds) * 1000
    out["speedup_compiled_vs_interpret"] = (
        out["interpret"] / out["compiled"])
    out["speedup_vs_seed"] = SEED_BASELINE["counter_ms"] / out["compiled"]
    return out


def _build_validator(task_id: str, group_size: int = 20):
    task = get_task(task_id)
    profile = get_profile("gpt-4o")
    client = MeteredClient(SyntheticLLM(profile, seed=990), UsageMeter())
    validator = ScenarioValidator(client, task, group_size=group_size)
    validator.rtl_group  # force judge-group generation outside timing
    plan = task.canonical_scenarios()
    from repro.core.artifacts import HybridTestbench
    tb = HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task),
        scenarios=tuple((s.index, s.description) for s in plan),
        origin="bench")
    return validator, tb


def bench_validator_matrix(seconds: float, task_id: str = "seq_count8_en",
                           group_size: int = 20) -> dict:
    """End-to-end 20-sample R/S matrix builds (the acceptance scenario).

    ``seed_style_ms`` re-parses/re-elaborates/interprets every judge run
    on every validate — the seed's cost model, paid on *every* matrix
    build.  The batched path is reported twice: ``cold_first_ms`` (first
    validate of a fresh driver: everything compiles once) and
    ``steady_state_ms`` (what correction loops, criteria studies and
    AutoEval reruns pay once the design templates are compiled).
    """
    validator, tb = _build_validator(task_id, group_size)
    out = {}
    # Seed cost model: interpreter, no surviving caches.
    with use_context(engine="interpret"):

        def seed_style():
            clear_simulation_caches()
            validator._sim_cache.clear()
            report = validator.validate(tb)
            assert report.matrix is not None
        out["seed_style_ms"] = _time_repeated(seed_style, seconds) * 1000

    # Batched path, compiled engine.
    with use_context(engine="compiled"):
        clear_simulation_caches()
        validator._sim_cache.clear()
        t0 = time.perf_counter()
        validator.validate(tb)
        out["cold_first_ms"] = (time.perf_counter() - t0) * 1000
        # One warm validate so steady state measures pure template reuse.
        validator._sim_cache.clear()
        validator.validate(tb)

        def steady():
            validator._sim_cache.clear()
            report = validator.validate(tb)
            assert report.matrix is not None
        out["steady_state_ms"] = _time_repeated(steady, seconds) * 1000
    out["speedup_steady_vs_seed_style"] = (
        out["seed_style_ms"] / out["steady_state_ms"])
    out["speedup_cold_vs_seed_style"] = (
        out["seed_style_ms"] / out["cold_first_ms"])
    return out


def bench_batch_vs_serial(seconds: float,
                          task_id: str = "seq_count8_en") -> dict:
    """Warm-path sweep of one driver over ten mutants: batch vs loop."""
    task = get_task(task_id)
    driver = render_driver(task, task.canonical_scenarios())
    mutants = [m.source for m in generate_mutants(
        task.golden_rtl(), 10, task.task_id)]

    def serial():
        for mutant in mutants:
            run_driver(driver, mutant)

    def batched():
        # jobs=1 pinned: the comparison is batch dedup/template reuse
        # vs a plain loop, so pool fan-out (context jobs / REPRO_JOBS)
        # must not leak into the measurement.
        run_driver_batch(driver, mutants, jobs=1)

    # Warm the caches once so both paths measure steady state.
    batched()
    return {
        "serial_ms": _time_repeated(serial, seconds) * 1000,
        "batch_ms": _time_repeated(batched, seconds) * 1000,
    }


def bench_driver_reuse(seconds: float, task_id: str = "seq_count8_en",
                       n_variants: int = 10) -> dict:
    """Cross-design driver reuse: the slot-program cold-start win.

    One driver paired with ``n_variants`` distinct DUT designs:

    - ``pair_cold_ms`` — first simulation of each fresh pair with the
      shared-program cache cleared per pair (the PR-1 cost model, where
      every new pairing recompiled the driver's closures);
    - ``pair_shared_ms`` — first simulation of each fresh pair with the
      program cache warm: only elaboration + slot binding remains;
    - ``steady_same_ms`` / ``steady_cross_ms`` — per-run template-cached
      cost of rerunning one pair vs cycling across all pairs.  The
      acceptance bar is parity (``steady_cross_vs_same`` ~ 1.0): once
      bound, a cross-design sweep costs the same per run as hammering a
      single design.
    """
    task = get_task(task_id)
    driver = render_driver(task, task.canonical_scenarios())
    variants = [m.source for m in generate_mutants(
        task.golden_rtl(), n_variants, task.task_id)]

    def cold_pairs():
        # Fresh templates AND fresh programs for every pairing.
        clear_simulation_caches()
        for dut in variants:
            clear_program_cache()
            run_driver(driver, dut)

    def shared_pairs():
        # Fresh templates, warm shared programs: pure bind cost.
        clear_template_caches()
        for dut in variants:
            run_driver(driver, dut)

    out = {}
    out["pair_cold_ms"] = (_time_repeated(cold_pairs, seconds)
                           * 1000 / n_variants)
    clear_simulation_caches()
    shared_pairs()  # warm the program cache once
    out["pair_shared_ms"] = (_time_repeated(shared_pairs, seconds)
                             * 1000 / n_variants)
    out["cold_start_speedup"] = out["pair_cold_ms"] / out["pair_shared_ms"]

    def steady_same():
        for _ in range(n_variants):
            run_driver(driver, variants[0])

    def steady_cross():
        for dut in variants:
            run_driver(driver, dut)

    steady_cross()  # warm every template
    out["steady_same_ms"] = (_time_repeated(steady_same, seconds)
                             * 1000 / n_variants)
    out["steady_cross_ms"] = (_time_repeated(steady_cross, seconds)
                              * 1000 / n_variants)
    out["steady_cross_vs_same"] = (out["steady_cross_ms"]
                                   / out["steady_same_ms"])
    return out


def bench_mutant_sweep(seconds: float, task_id: str = "seq_count8_en",
                       n_mutants: int = 20) -> dict:
    """Lockstep union vs per-mutant sweeps at AutoEval scale.

    One driver, 20 mutants plus the golden lane — the shape Eval2
    batches and validator matrix builds take.  ``lockstep_speedup`` is
    the steady-state ratio (union template warm, what correction loops
    pay on every sweep) and gates CI; the fresh numbers clear the
    design/pair/union template caches per round (first sweep of a new
    driver, shared slot programs warm) and are informational.
    """
    task = get_task(task_id)
    driver = render_driver(task, task.canonical_scenarios())
    golden = task.golden_rtl()
    mutants = [m.source for m in generate_mutants(
        golden, n_mutants, task.task_id)]

    def sweep(engine):
        result = run_mutant_sweep(driver, mutants, golden_src=golden,
                                  mutant_engine=engine)
        assert result.engine == engine, result.fallback_reason
        assert result.golden.ok

    # Warm templates and shared programs for both paths.
    sweep("lockstep")
    sweep("per-mutant")
    out = {
        "n_mutants": n_mutants,
        "lockstep_steady_ms": _time_repeated(
            lambda: sweep("lockstep"), seconds) * 1000,
        "per_mutant_steady_ms": _time_repeated(
            lambda: sweep("per-mutant"), seconds) * 1000,
    }
    out["lockstep_speedup"] = (out["per_mutant_steady_ms"]
                               / out["lockstep_steady_ms"])

    def fresh(engine):
        clear_template_caches()
        sweep(engine)

    out["lockstep_fresh_ms"] = _time_repeated(
        lambda: fresh("lockstep"), seconds) * 1000
    out["per_mutant_fresh_ms"] = _time_repeated(
        lambda: fresh("per-mutant"), seconds) * 1000
    out["lockstep_fresh_speedup"] = (out["per_mutant_fresh_ms"]
                                     / out["lockstep_fresh_ms"])
    return out


def _pid_after_hold(delay: float = 0.05) -> int:
    """Pool-worker probe for the warm-start bench's boot barrier: hold
    the worker briefly (so a sibling gets scheduled too), then report
    which process ran.  Module-level so spawn workers can unpickle it."""
    time.sleep(delay)
    return os.getpid()


def bench_pool_warm_start(seconds: float, task_id: str = "seq_count8_en",
                          n_variants: int = 20, jobs: int = 2) -> dict:
    """Warm-start value on spawn-started pools, parity on fork.

    A spawn-started worker begins as a blank interpreter; its first
    batch historically paid the full front end (parse + elaborate +
    compile) for every unique (driver, DUT) pair.  With warm start, pool
    creation ships a CacheSnapshot and workers rebuild the templates in
    their initializer — so the timed first batch runs at template-hit
    steady state.  Worker boot (interpreter + imports + initializer) is
    deliberately excluded from the timing via a sleep barrier that
    forces every worker up first: the boot cost is paid once per pool,
    the cold-cache cost otherwise recurs on every fresh/healed worker.

    ``fork_parity`` guards the other direction: forked workers inherit
    caches through memory, so the warm-start machinery must not tax the
    default path (no snapshot is shipped to fork pools).
    """
    from repro.core.simulation import get_sim_pool, shutdown_sim_pool

    task = get_task(task_id)
    driver = render_driver(task, task.canonical_scenarios())
    variants = [m.source for m in generate_mutants(
        task.golden_rtl(), n_variants, task.task_id)]

    # Warm the parent once: this is what the snapshot will carry.
    run_driver_batch(driver, variants, jobs=1)

    def boot_barrier(pool) -> None:
        # Wait until every worker has *checked in* (returned its PID):
        # a worker only runs tasks after its initializer completes, so
        # N distinct PIDs proves all N workers are booted and warmed.
        # Submitting plain sleeps is not enough — an already-booted
        # worker can drain the whole queue while a slow sibling is
        # still importing, which would push that sibling's boot (and
        # snapshot import) into the timed window.
        seen: set = set()
        for _ in range(200):  # bound the wait (~10 s worst case)
            futures = [pool.submit(_pid_after_hold)
                       for _ in range(jobs * 2)]
            seen |= {future.result() for future in futures}
            if len(seen) >= jobs:
                return
        raise RuntimeError(f"pool workers never all booted ({seen})")

    def first_batch_ms(warm: bool) -> float:
        with use_context(start_method="spawn", warm_start=warm):
            shutdown_sim_pool()
            pool = get_sim_pool(jobs)
            boot_barrier(pool)
            t0 = time.perf_counter()
            runs = run_driver_batch(driver, variants, jobs=jobs)
            elapsed = time.perf_counter() - t0
            assert all(run.ok for run in runs)
            shutdown_sim_pool()
            return elapsed * 1000

    rounds = max(2, int(seconds / 0.3))
    out = {
        "spawn_cold_first_batch_ms": min(first_batch_ms(False)
                                         for _ in range(rounds)),
        "spawn_warm_first_batch_ms": min(first_batch_ms(True)
                                         for _ in range(rounds)),
    }
    out["warm_start_speedup"] = (out["spawn_cold_first_batch_ms"]
                                 / out["spawn_warm_first_batch_ms"])

    # Fork path: steady-state batches with warm start on vs off must be
    # at parity (the flag ships nothing to fork pools).
    def fork_steady_ms(warm: bool) -> float:
        with use_context(warm_start=warm):
            shutdown_sim_pool()
            run_driver_batch(driver, variants, jobs=jobs)  # pool up + warm
            return _time_repeated(
                lambda: run_driver_batch(driver, variants, jobs=jobs),
                seconds) * 1000

    out["fork_steady_warm_ms"] = fork_steady_ms(True)
    out["fork_steady_cold_flag_ms"] = fork_steady_ms(False)
    out["fork_parity"] = (out["fork_steady_warm_ms"]
                          / out["fork_steady_cold_flag_ms"])
    shutdown_sim_pool()
    return out


def bench_context_overhead(seconds: float) -> dict:
    """Cost of the PR-4 configuration API on the hot path.

    ``resolve_us`` / ``dispatch_us`` price one ``current_context()``
    resolve and one method-registry lookup (both sit on every simulate
    / campaign-item call).  ``overhead_ratio`` is the end-to-end check:
    a context-resolved counter simulation (``engine=None`` under an
    active ``use_context``) against the same run with the engine passed
    explicitly — the PR-3 cost model.  Parity (~1.0) is the CI floor:
    the explicit-global-to-context redesign must not tax the hot path.
    """
    from repro.eval.methods import get_method

    n = 10_000

    def resolve_loop():
        for _ in range(n):
            current_context()

    def dispatch_loop():
        for _ in range(n):
            get_method("baseline")

    out = {
        "resolve_us": _time_repeated(resolve_loop, seconds) / n * 1e6,
        "dispatch_us": _time_repeated(dispatch_loop, seconds) / n * 1e6,
    }

    def run_explicit():
        result = simulate(COUNTER_TB, "tb", engine="compiled")
        assert result.stdout == ["q=200"]

    def run_context():
        result = simulate(COUNTER_TB, "tb")
        assert result.stdout == ["q=200"]

    out["simulate_explicit_ms"] = _time_repeated(run_explicit,
                                                 seconds) * 1000
    with use_context(engine="compiled"):
        out["simulate_context_ms"] = _time_repeated(run_context,
                                                    seconds) * 1000
    out["overhead_ratio"] = (out["simulate_context_ms"]
                             / out["simulate_explicit_ms"])
    return out


def bench_service_throughput(seconds: float, concurrency: int = 8) -> dict:
    """Sustained service throughput: micro-batched vs unbatched serial.

    Two server configurations face the same closed-loop load
    (``scripts/loadgen.py``: ``concurrency`` workers in the
    thundering-herd shape — everyone at iteration *k* submits the same
    fresh epoch-*k* DUT, the load that motivates request coalescing):

    - **serial**: one executor thread, ``batch_max=1`` (every request
      is its own batch call).  The pre-micro-batching cost model:
      every request simulates, even when its neighbour just asked for
      the identical design.
    - **batched**: a 5 ms coalescing window with ``batch_max`` matched
      to the offered concurrency (full windows flush early instead of
      waiting out the timer).  A coalesced window dedups to its unique
      DUTs — one simulation answers every duplicate request — and
      unique survivors fan out across the sim pool where the host has
      cores for it (``jobs`` adapts; on a single-core runner the batch
      runs inline, since process fan-out cannot beat the GIL-free
      nothing it has to offer there).

    ``batched_vs_serial`` is the acceptance ratio (CI gates >= 1.5x at
    concurrency 8); p50/p99 come from the batched leg.
    """
    sys.path.insert(0, str(Path(__file__).parents[1] / "scripts"))
    from loadgen import default_payload_factory, run_load

    from repro.core.simulation import shutdown_sim_pool
    from repro.service import ServiceConfig, ServiceThread

    duration = max(2.0, seconds)
    factory = default_payload_factory()
    pool_jobs = max(1, min(4, os.cpu_count() or 1))
    legs = {
        "serial": ServiceConfig(port=0, workers=1, batch_max=1),
        "batched": ServiceConfig(port=0, workers=4,
                                 batch_max=concurrency,
                                 batch_window_ms=5.0),
    }
    out: dict = {"concurrency": concurrency,
                 "duration_per_leg_s": duration,
                 "pool_jobs": pool_jobs}
    for leg, config in legs.items():
        context = current_context().evolve(
            jobs=1 if leg == "serial" else pool_jobs)
        shutdown_sim_pool()
        clear_simulation_caches()
        service = ServiceThread(config, context).start()
        try:
            stats = run_load(service.base_url, concurrency=concurrency,
                             duration_s=duration,
                             payload_factory=factory)
        finally:
            service.stop()
        assert stats["errors"] == 0 and stats["completed_200"] > 0, stats
        out[leg] = {
            "throughput_rps": stats["throughput_rps"],
            "p50_ms": stats["latency_ms"]["p50"],
            "p99_ms": stats["latency_ms"]["p99"],
            "requests": stats["requests"],
        }
    shutdown_sim_pool()
    out["batched_vs_serial"] = (out["batched"]["throughput_rps"]
                                / out["serial"]["throughput_rps"])
    return out


def bench_campaign_resume(seconds: float, n_tasks: int = 6) -> dict:
    """Kill-resume value: resuming a half-completed campaign vs cold.

    ``cold_ms`` runs a full methods x tasks campaign from cleared caches
    into a fresh store — the cost an interrupted campaign pays if it has
    to restart from scratch.  ``resume_ms`` replays the crash-recovery
    path: a store pre-populated with the first half of the items (the
    CorrectBench-heavy half, methods-major order) plus the co-located
    cache snapshot, caches cleared, then ``run_campaign(resume=True)``
    answers the stored half without simulating and boots warm for the
    rest.  ``resume_speedup`` is the same-run ratio CI gates on (>= 2x):
    if resuming ever gets within 2x of recomputing, the store has
    stopped paying for itself.
    """
    import shutil
    import tempfile

    from repro.eval import (CampaignStore, campaign_items, default_config,
                            run_campaign, store_key)
    from repro.problems import load_dataset

    tasks = load_dataset()
    cmb = [t.task_id for t in tasks if t.kind == "CMB"]
    seq = [t.task_id for t in tasks if t.kind == "SEQ"]
    task_ids = cmb[:n_tasks // 2] + seq[:n_tasks - n_tasks // 2]
    config = default_config(task_ids=task_ids)
    items = campaign_items(config)
    half = len(items) // 2

    # One full run provides the stored half and the co-located snapshot
    # a killed campaign leaves behind (run_campaign saves it at prewarm
    # time, before any item computes).
    seed_root = tempfile.mkdtemp(prefix="bench-resume-seed-")
    try:
        seed_store = CampaignStore(seed_root)
        clear_simulation_caches()
        full = run_campaign(config, store=seed_store)
        snapshot = seed_store.load_snapshot()
    finally:
        shutil.rmtree(seed_root, ignore_errors=True)

    def cold_ms() -> float:
        root = tempfile.mkdtemp(prefix="bench-resume-cold-")
        try:
            store = CampaignStore(root)
            clear_simulation_caches()
            t0 = time.perf_counter()
            result = run_campaign(config, store=store)
            elapsed = time.perf_counter() - t0
            assert result.store_hits == 0
            return elapsed * 1000
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def resume_ms() -> float:
        root = tempfile.mkdtemp(prefix="bench-resume-warm-")
        try:
            store = CampaignStore(root)
            for item, run in zip(items[:half], full.runs[:half]):
                store.put(store_key(*item), run)
            if snapshot is not None:
                store.save_snapshot(snapshot)
            clear_simulation_caches()
            t0 = time.perf_counter()
            result = run_campaign(config, store=store, resume=True)
            elapsed = time.perf_counter() - t0
            assert result.store_hits == half
            assert result.runs == full.runs
            return elapsed * 1000
        finally:
            shutil.rmtree(root, ignore_errors=True)

    rounds = max(2, int(seconds / 0.5))
    out = {
        "n_items": len(items),
        "stored_half": half,
        "cold_ms": min(cold_ms() for _ in range(rounds)),
        "resume_ms": min(resume_ms() for _ in range(rounds)),
    }
    out["resume_speedup"] = out["cold_ms"] / out["resume_ms"]
    return out


def main(argv) -> int:
    quick = "--quick" in argv
    record = "--record" in argv
    seconds = 0.3 if quick else 2.0

    parse = bench_parse(seconds)
    counter = bench_counter(seconds)
    matrix = bench_validator_matrix(seconds)
    batch = bench_batch_vs_serial(seconds)
    reuse = bench_driver_reuse(seconds)
    context = bench_context_overhead(seconds)
    sweep = bench_mutant_sweep(seconds)
    warm = bench_pool_warm_start(seconds)
    service = bench_service_throughput(seconds)
    resume = bench_campaign_resume(seconds)

    report = {
        "seed_baseline": SEED_BASELINE,
        "parse_front_end": parse,
        "counter_200_cycles_ms": counter,
        "validator_rs_matrix_20_ms": matrix,
        "driver_batch_10_mutants": batch,
        "driver_reuse_10_variants": reuse,
        "context_overhead": context,
        "mutant_sweep_20": sweep,
        "pool_warm_start": warm,
        "service_throughput": service,
        "campaign_resume": resume,
    }
    print(json.dumps(report, indent=2))

    ok = True
    # Same-machine, same-run ratios: meaningful on any host (CI gates on
    # these).  The interpret engine benefits from this PR's shared
    # improvements (port aliasing, parse cache, scheduler), so the
    # thresholds sit below the vs-seed ones.
    # Quick (CI) floor sits below the measured ~3.2x like every other
    # quick gate here (noise headroom on shared runners); the full-run
    # floor is the 3x acceptance bar, checked with long sampling below.
    lexer_floor = 2.5 if quick else 3.0
    if parse["small_tb"]["lexer_speedup"] < lexer_floor:
        print("WARNING: master-regex lexer speedup "
              f"{parse['small_tb']['lexer_speedup']:.2f}x < "
              f"{lexer_floor}x vs reference lexer", file=sys.stderr)
        ok = False
    if counter["speedup_compiled_vs_interpret"] < 2.0:
        print("WARNING: counter compiled-vs-interpret speedup "
              f"{counter['speedup_compiled_vs_interpret']:.2f}x < 2x",
              file=sys.stderr)
        ok = False
    if matrix["speedup_steady_vs_seed_style"] < 2.0:
        print("WARNING: R/S matrix steady-state speedup "
              f"{matrix['speedup_steady_vs_seed_style']:.2f}x < 2x",
              file=sys.stderr)
        ok = False
    # Cross-design steady state must sit at parity with same-design:
    # bound programs make a sweep over N designs cost the same per run
    # as re-running one design.
    if reuse["steady_cross_vs_same"] > 1.5:
        print("WARNING: cross-design steady state "
              f"{reuse['steady_cross_vs_same']:.2f}x same-design (> 1.5x)",
              file=sys.stderr)
        ok = False
    # Context-resolution parity: the SimContext redesign must not tax
    # the hot path vs the PR-3 explicit-argument cost model.  The quick
    # floor carries noise headroom for shared CI runners.
    overhead_floor = 1.2 if quick else 1.1
    if context["overhead_ratio"] > overhead_floor:
        print("WARNING: context-resolved simulate is "
              f"{context['overhead_ratio']:.3f}x the explicit-engine "
              f"run (> {overhead_floor}x)", file=sys.stderr)
        ok = False
    if context["resolve_us"] > 10.0:
        print("WARNING: current_context() resolve costs "
              f"{context['resolve_us']:.2f}us (> 10us)", file=sys.stderr)
        ok = False
    # Lockstep mutant sweeps are the tentpole win: one union simulation
    # vs 21 separate runs.  The quick (CI) floor carries noise headroom
    # below the measured ~3x; full runs gate at the 2x acceptance bar.
    lockstep_floor = 1.5 if quick else 2.0
    if sweep["lockstep_speedup"] < lockstep_floor:
        print("WARNING: lockstep mutant sweep only "
              f"{sweep['lockstep_speedup']:.2f}x the per-mutant path "
              f"(< {lockstep_floor}x)", file=sys.stderr)
        ok = False
    # Warm-started spawn pools must beat unwarmed ones on the first
    # batch (the whole point of shipping the snapshot), and the fork
    # path — which ships nothing — must stay at parity.  Spawn timing on
    # shared runners is noisy, so the quick floor carries headroom below
    # the measured ~2x.
    warm_floor = 1.1 if quick else 1.15
    if warm["warm_start_speedup"] < warm_floor:
        print("WARNING: warm spawn-pool first batch only "
              f"{warm['warm_start_speedup']:.2f}x the cold one "
              f"(< {warm_floor}x)", file=sys.stderr)
        ok = False
    if warm["fork_parity"] > 1.3:
        print("WARNING: fork steady state with warm_start on is "
              f"{warm['fork_parity']:.2f}x the off path (> 1.3x)",
              file=sys.stderr)
        ok = False
    # Cross-request micro-batching is the PR-8 tentpole: coalesced
    # windows must beat unbatched serial dispatch under the same
    # closed-loop load.  1.5x is the acceptance bar at concurrency 8 —
    # quick and full alike, since the ratio is same-run/same-machine.
    if service["batched_vs_serial"] < 1.5:
        print("WARNING: micro-batched service throughput only "
              f"{service['batched_vs_serial']:.2f}x unbatched serial "
              "(< 1.5x)", file=sys.stderr)
        ok = False
    # Resuming a half-completed campaign must beat recomputing it cold:
    # the stored half (the CorrectBench-heavy one) is answered without
    # simulation.  2x is the acceptance bar on full runs (AutoEval
    # grading is method-independent, so half the items leave roughly
    # half the irreducible work — measured ~2.2-2.4x); the quick (CI)
    # floor carries noise headroom below it, like the lockstep gate.
    resume_floor = 1.5 if quick else 2.0
    if resume["resume_speedup"] < resume_floor:
        print("WARNING: campaign resume only "
              f"{resume['resume_speedup']:.2f}x a cold rerun "
              f"(< {resume_floor}x)", file=sys.stderr)
        ok = False
    # Absolute floor vs the recorded seed numbers: only comparable on
    # the reference container, so it never gates quick (CI) runs.
    if not quick and counter["speedup_vs_seed"] < 3.0:
        print("WARNING: counter speedup vs seed "
              f"{counter['speedup_vs_seed']:.2f}x < 3x", file=sys.stderr)
        ok = False
    if not quick and parse["small_tb"]["parse_speedup_vs_seed"] < 3.0:
        print("WARNING: cold-parse speedup vs pre-rewrite front end "
              f"{parse['small_tb']['parse_speedup_vs_seed']:.2f}x < 3x",
              file=sys.stderr)
        ok = False

    if record:
        BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
        print(f"recorded {BENCH_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
