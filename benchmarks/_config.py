"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures.  By default
they run on a balanced dataset slice with one seed so ``pytest
benchmarks/ --benchmark-only`` finishes in minutes; set ``REPRO_FULL=1``
for the paper-scale protocol (156 tasks, 5 seeds) and ``REPRO_JOBS=N``
(0 = all cores) to parallelise.

Bench output (the rendered table/figure) is printed and also written to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.eval.campaign import campaign_jobs_from_env
from repro.problems import dataset_slice, load_dataset

OUT_DIR = Path(__file__).parent / "out"

FULL = os.environ.get("REPRO_FULL", "") == "1"
JOBS = campaign_jobs_from_env(default=(os.cpu_count() or 2) // 2 or 1)

# Paper protocol: 156 tasks x 5 repetitions.
FULL_SEEDS = (0, 1, 2, 3, 4)
SLICE_SEEDS = (0,)


def bench_tasks() -> list[str]:
    if FULL:
        return [task.task_id for task in load_dataset()]
    return [task.task_id for task in dataset_slice(18, 16, stride=4)]


def bench_seeds() -> tuple[int, ...]:
    return FULL_SEEDS if FULL else SLICE_SEEDS


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
