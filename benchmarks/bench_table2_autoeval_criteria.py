"""Table II: the AutoEval criteria — definitions and nesting semantics.

Table II is definitional, so this bench verifies the semantics it states:
the criteria are *nested* (Eval2 implies Eval1 implies Eval0) and each
level is separating — artifacts exist at every terminal band.
"""

from repro.codegen import render_checker_core, render_driver
from repro.core import HybridTestbench
from repro.eval import EvalLevel, evaluate, render_table2
from repro.mutation import inject_verilog_syntax_fault
from repro.problems import get_task

from ._config import emit


def _tb(task, driver, checker):
    plan = task.canonical_scenarios()
    return HybridTestbench(
        task_id=task.task_id, driver_src=driver, checker_src=checker,
        scenarios=tuple((s.index, s.description) for s in plan))


def _band_exemplars():
    """Build one testbench per terminal band for a fixed task."""
    task = get_task("cmb_kmap4_a")
    plan = task.canonical_scenarios()
    golden_driver = render_driver(task, plan)
    golden_checker = render_checker_core(task)

    failed = _tb(task, inject_verilog_syntax_fault(golden_driver, 1),
                 golden_checker)
    eval0 = _tb(task, golden_driver,
                render_checker_core(task,
                                    task.variant_params(task.variants[0])))
    thin_plan = tuple(type(plan[0])(s.index, s.name, s.description,
                                    s.vectors[:1]) for s in plan[:1])
    eval1 = HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, thin_plan),
        checker_src=golden_checker,
        scenarios=tuple((s.index, s.description) for s in thin_plan))
    eval2 = _tb(task, golden_driver, golden_checker)
    return {EvalLevel.FAILED: failed, EvalLevel.EVAL0: eval0,
            EvalLevel.EVAL1: eval1, EvalLevel.EVAL2: eval2}


def test_table2_autoeval_criteria(benchmark):
    exemplars = _band_exemplars()
    results = benchmark.pedantic(
        lambda: {band: evaluate(tb) for band, tb in exemplars.items()},
        rounds=1, iterations=1)

    lines = [render_table2(), "", "Band exemplars (one TB per band):"]
    for band, result in sorted(results.items()):
        lines.append(f"  expected {band.label:<7} -> measured "
                     f"{result.level.label:<7} {result.detail}")
    emit("table2_autoeval_criteria", "\n".join(lines))

    # Every terminal band is reachable, and grading hits it exactly.
    for band, result in results.items():
        assert result.level == band, (band, result.detail)
    # Nesting: a level passing Eval2 passes everything below.
    top = results[EvalLevel.EVAL2]
    for lower in (EvalLevel.EVAL0, EvalLevel.EVAL1, EvalLevel.EVAL2):
        assert top.passes(lower)
