"""Fig. 7: CorrectBench on different LLMs (GPT-4o, Claude-3.5-Sonnet,
GPT-4o-mini).

Repeats the three-method comparison per model profile and renders the
stacked Eval2/Eval1/Eval0/Failed bands.  Shape assertions: the method
ordering at Eval2 holds for every model (the paper's compatibility
claim), and the weaker model scores lower overall.
"""

from repro.eval import (EvalLevel, default_config, render_fig7,
                        run_campaign)
from repro.eval.campaign import (METHOD_AUTOBENCH, METHOD_BASELINE,
                                 METHOD_CORRECTBENCH)
from repro.eval.metrics import level_stat

from ._config import JOBS, bench_seeds, bench_tasks, emit

MODELS = ("GPT-4o", "Claude-3.5-Sonnet", "GPT-4o-mini")


def _run_models():
    results = {}
    for model in MODELS:
        # The paper ran Claude once due to rate limits; mirror that by
        # using a single seed for non-GPT-4o models in full mode.
        seeds = bench_seeds() if model == "GPT-4o" else (0,)
        config = default_config(task_ids=bench_tasks(), seeds=seeds,
                                profile_name=model, n_jobs=JOBS)
        results[model] = run_campaign(config)
    return results


def test_fig7_other_llms(benchmark):
    results = benchmark.pedantic(_run_models, rounds=1, iterations=1)
    emit("fig7_other_llms", render_fig7(results))

    def eval2(model, method):
        return level_stat(results[model], method, "Total",
                          EvalLevel.EVAL2).ratio

    # CorrectBench's improvement is consistent across models.
    for model in MODELS:
        assert eval2(model, METHOD_CORRECTBENCH) > eval2(
            model, METHOD_AUTOBENCH)
        assert eval2(model, METHOD_CORRECTBENCH) > eval2(
            model, METHOD_BASELINE)
    # The lightweight model is the weakest with every method.
    assert eval2("GPT-4o-mini", METHOD_CORRECTBENCH) < eval2(
        "GPT-4o", METHOD_CORRECTBENCH)
