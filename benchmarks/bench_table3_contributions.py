"""Table III: contributions of the validator and the corrector.

Decomposes CorrectBench's gain over AutoBench into tasks the validator's
actions rescued ("Val.") and, within those, tasks whose final accepted
testbench came from the corrector ("Corr.").
"""

from repro.eval import default_config, render_table3, run_campaign
from repro.eval.campaign import METHOD_AUTOBENCH, METHOD_CORRECTBENCH
from repro.eval.metrics import contribution_stats

from ._config import JOBS, bench_seeds, bench_tasks, emit


def _run():
    config = default_config(
        task_ids=bench_tasks(), seeds=bench_seeds(),
        methods=(METHOD_CORRECTBENCH, METHOD_AUTOBENCH), n_jobs=JOBS)
    return run_campaign(config)


def test_table3_contributions(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table3_contributions", render_table3(result))

    stats = {s.group: s for s in contribution_stats(result)}
    total = stats["Total"]
    # CorrectBench gains over AutoBench, and the gain is explained by
    # validator-driven actions (the paper: Gain 28.0 vs Val. 26.8).
    assert total.gain > 0
    assert total.validator > 0
    # The corrector accounts for a sizeable minority of rescued passes
    # (paper: 9.2 / 26.8 = 34%).
    assert 0 < total.corrector <= total.validator
    # SEQ benefits more from correction than CMB in relative terms
    # whenever both groups were rescued at all.
    seq, cmb = stats["SEQ"], stats["CMB"]
    if seq.validator > 0 and cmb.validator > 0 and cmb.corrector > 0:
        assert (seq.corrector / seq.validator
                >= 0.5 * (cmb.corrector / cmb.validator))
