"""Fig. 6b: end-to-end CorrectBench performance and token cost per
validation criterion.

Runs the whole framework under each criterion and reports the Eval2 pass
ratio plus input/output tokens per task.  Shape assertions: 70%-wrong
performs best (paper's choice), and stricter criteria cost more tokens
(more "wrong" reports trigger more corrections and reboots).
"""

from repro.eval import (EvalLevel, default_config, render_fig6b,
                        run_campaign)
from repro.eval.campaign import METHOD_CORRECTBENCH
from repro.eval.metrics import level_stat, mean_usage

from ._config import JOBS, bench_seeds, bench_tasks, emit

CRITERIA_ORDER = ("100%-wrong", "70%-wrong", "50%-wrong")


def _run_all():
    rows = {}
    for criterion in CRITERIA_ORDER:
        config = default_config(
            task_ids=bench_tasks(), seeds=bench_seeds(),
            methods=(METHOD_CORRECTBENCH,), criterion_name=criterion,
            n_jobs=JOBS)
        result = run_campaign(config)
        input_tokens, output_tokens = mean_usage(result,
                                                 METHOD_CORRECTBENCH)
        rows[criterion] = {
            "eval2": level_stat(result, METHOD_CORRECTBENCH, "Total",
                                EvalLevel.EVAL2).ratio,
            "input_tokens": input_tokens,
            "output_tokens": output_tokens,
        }
    return rows


def test_fig6b_criteria_performance(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit("fig6b_criteria_performance", render_fig6b(rows))

    # The paper's chosen criterion performs best end to end.
    assert rows["70%-wrong"]["eval2"] >= rows["100%-wrong"]["eval2"] - 0.02
    assert rows["70%-wrong"]["eval2"] >= rows["50%-wrong"]["eval2"] - 0.02
    # Token cost rises as the validator gets stricter (more wrong
    # verdicts -> more corrections/reboots), Fig. 6b's bar trend.
    assert (rows["50%-wrong"]["input_tokens"]
            >= rows["100%-wrong"]["input_tokens"])
