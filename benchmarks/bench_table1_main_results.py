"""Table I: main results — CorrectBench vs AutoBench vs Baseline.

Regenerates the paper's headline table: Eval0/1/2 pass ratios and mean
pass counts per task group.  Shape assertions encode the paper's
qualitative claims: method ordering at Eval2, the SEQ gap, and the
near-perfect Eval0 of the checked pipeline.
"""

from repro.eval import (EvalLevel, default_config, render_table1,
                        run_campaign)
from repro.eval.campaign import (METHOD_AUTOBENCH, METHOD_BASELINE,
                                 METHOD_CORRECTBENCH)
from repro.eval.metrics import level_stat

from ._config import JOBS, bench_seeds, bench_tasks, emit


def _run_main_campaign():
    config = default_config(task_ids=bench_tasks(), seeds=bench_seeds(),
                            n_jobs=JOBS)
    return run_campaign(config)


def test_table1_main_results(benchmark):
    result = benchmark.pedantic(_run_main_campaign, rounds=1,
                                iterations=1)
    emit("table1_main_results", render_table1(result))

    def ratio(method, group="Total", level=EvalLevel.EVAL2):
        return level_stat(result, method, group, level).ratio

    # Paper shape: CorrectBench > AutoBench > Baseline at Eval2.
    assert (ratio(METHOD_CORRECTBENCH) > ratio(METHOD_AUTOBENCH)
            > ratio(METHOD_BASELINE))
    # Sequential tasks are the hard class for every method.
    for method in (METHOD_CORRECTBENCH, METHOD_AUTOBENCH,
                   METHOD_BASELINE):
        assert ratio(method, "CMB") > ratio(method, "SEQ")
    # The checked pipeline nearly eliminates syntax failures (Eval0).
    assert ratio(METHOD_CORRECTBENCH, "Total", EvalLevel.EVAL0) > 0.95
    # The paper's headline: CorrectBench gains roughly a third over
    # AutoBench and at least ~1.7x over the baseline.
    assert ratio(METHOD_CORRECTBENCH) / ratio(METHOD_BASELINE) > 1.5
