"""Extension: coverage-based self-validation (the paper's future work).

Re-runs the Fig. 6a labelled-corpus protocol with the coverage-augmented
validator and compares against the plain 70%-wrong RS-matrix validator.
Expected shape: accuracy on *wrong* testbenches improves (weak-coverage
testbenches are exactly the ones the RS matrix cannot see) at little or
no cost on correct testbenches.
"""

from repro.core.coverage import CoveragePolicy, CoverageValidator
from repro.core.generator import AutoBenchGenerator
from repro.core.validator import CRITERION_70, ScenarioValidator
from repro.eval import EvalLevel, evaluate, golden_artifacts
from repro.llm import GPT_4O, MeteredClient, UsageMeter
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

from ._config import FULL, bench_tasks, emit

SAMPLES = 8 if FULL else 4


def _study_task(task_id):
    task = get_task(task_id)
    golden = golden_artifacts(task_id)
    group_client = MeteredClient(SyntheticLLM(GPT_4O, seed=990),
                                 UsageMeter())
    plain = ScenarioValidator(group_client, task, CRITERION_70)
    covered = CoverageValidator(plain, CoveragePolicy())
    rows = []
    for sample in range(SAMPLES):
        client = MeteredClient(SyntheticLLM(GPT_4O, seed=1000 + sample),
                               UsageMeter())
        testbench = AutoBenchGenerator(client, task).generate(attempt=0)
        label = evaluate(testbench, golden).level >= EvalLevel.EVAL2
        rows.append((label, plain.validate(testbench).verdict,
                     covered.validate(testbench).verdict))
    return rows


def _accuracy(rows, index):
    total = [(label, row[index]) for label, *row in rows]
    wrong = [(label, verdict) for label, verdict in total if not label]
    correct = [(label, verdict) for label, verdict in total if label]

    def acc(pairs):
        if not pairs:
            return 1.0
        return sum(1 for label, verdict in pairs
                   if verdict == label) / len(pairs)

    return acc(total), acc(correct), acc(wrong)


def test_extension_coverage_validation(benchmark):
    def run():
        rows = []
        for task_id in bench_tasks()[::2]:
            rows.extend(_study_task(task_id))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_total, plain_correct, plain_wrong = _accuracy(rows, 0)
    cov_total, cov_correct, cov_wrong = _accuracy(rows, 1)
    text = "\n".join([
        "EXTENSION — COVERAGE-BASED SELF-VALIDATION",
        "",
        f"{'validator':<22}{'total':>8}{'correct':>9}{'wrong':>8}",
        "-" * 47,
        f"{'70%-wrong (paper)':<22}{plain_total:>8.1%}"
        f"{plain_correct:>9.1%}{plain_wrong:>8.1%}",
        f"{'70%-wrong + coverage':<22}{cov_total:>8.1%}"
        f"{cov_correct:>9.1%}{cov_wrong:>8.1%}",
        "",
        f"corpus: {len(rows)} labelled testbenches",
        "",
        "Note: the 'correct' TBs the coverage gate rejects are shallow",
        "plans that pass Eval2 by luck on easy tasks (their mutants die",
        "on any stimulus); gating trades those away for a substantial",
        "gain in wrong-TB detection — the blind spot of the RS matrix.",
    ])
    emit("ext_coverage_validation", text)

    # The coverage gate catches weak TBs the RS matrix cannot see.
    assert cov_wrong >= plain_wrong
    # The cost is bounded: it only rejects correct-but-weak outliers.
    assert cov_correct >= plain_correct - 0.20
    # Net global accuracy stays in the same band.
    assert cov_total >= plain_total - 0.08
