"""Ablation A1: the agent's correction/reboot budgets (I_C^max, I_R^max).

The paper fixes I_C^max = 3 and I_R^max = 10 without a sweep; this
ablation fills that gap.  Expectation: pass ratio grows monotonically-ish
with the reboot budget and saturates, while corrections trade tokens for
rescued tasks.
"""

from repro.core import CorrectBenchWorkflow
from repro.eval import EvalLevel, evaluate
from repro.llm import GPT_4O, MeteredClient, UsageMeter
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

from ._config import FULL, bench_seeds, bench_tasks, emit

BUDGETS = ((0, 0), (0, 3), (3, 0), (1, 3), (3, 3), (3, 10))


def _run_budget_sweep():
    tasks = bench_tasks()
    if not FULL:
        tasks = tasks[::2]
    seeds = bench_seeds()
    rows = {}
    for ic_max, ir_max in BUDGETS:
        passed = total = tokens = 0
        for seed in seeds:
            for task_id in tasks:
                client = MeteredClient(SyntheticLLM(GPT_4O, seed=seed),
                                       UsageMeter())
                workflow = CorrectBenchWorkflow(
                    client, get_task(task_id), ic_max=ic_max,
                    ir_max=ir_max)
                result = workflow.run()
                level = evaluate(result.final_tb).level
                passed += level >= EvalLevel.EVAL2
                tokens += client.meter.total.total_tokens
                total += 1
        rows[(ic_max, ir_max)] = (passed / total, tokens / total)
    return rows


def test_ablation_agent_budgets(benchmark):
    rows = benchmark.pedantic(_run_budget_sweep, rounds=1, iterations=1)
    lines = ["ABLATION A1 — AGENT BUDGET SWEEP (I_C^max, I_R^max)", "",
             f"{'I_C':>4}{'I_R':>5}{'Eval2':>9}{'tok/task':>10}"]
    for (ic_max, ir_max), (ratio, tokens) in rows.items():
        lines.append(f"{ic_max:>4}{ir_max:>5}{ratio:>9.1%}{tokens:>10.0f}")
    emit("ablation_budgets", "\n".join(lines))

    # No self-checking at all (0,0) is the floor.
    floor = rows[(0, 0)][0]
    assert rows[(3, 10)][0] >= floor
    assert rows[(0, 3)][0] >= floor
    # The paper's configuration is at (or near) the top of the sweep.
    best = max(ratio for ratio, _ in rows.values())
    assert rows[(3, 10)][0] >= best - 0.03
    # Bigger budgets cost more tokens.
    assert rows[(3, 10)][1] >= rows[(0, 0)][1]
