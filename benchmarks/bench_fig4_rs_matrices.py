"""Fig. 4: example RS matrices for correct and wrong testbenches.

Renders the RTL-Scenario matrices of a validated-correct testbench and of
a misconception-carrying one, and checks the visual structure the figure
shows: wrong testbenches produce (nearly) solid red columns, correct ones
are green-dominated.
"""

from repro.codegen import render_checker_core, render_driver
from repro.core import CRITERION_70, HybridTestbench, ScenarioValidator
from repro.llm import GPT_4O, MeteredClient, UsageMeter
from repro.llm.faults import FaultModel
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

from ._config import emit

TASK_ID = "cmb_dec3to8"


def _matrices():
    task = get_task(TASK_ID)
    plan = task.canonical_scenarios()
    client = MeteredClient(SyntheticLLM(GPT_4O, seed=0), UsageMeter())
    validator = ScenarioValidator(client, task, CRITERION_70)

    def tb(checker_src):
        return HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=checker_src,
            scenarios=tuple((s.index, s.description) for s in plan))

    correct_report = validator.validate(tb(render_checker_core(task)))

    sticky = FaultModel(GPT_4O, seed=0).sticky_misconception(task)
    wrong_variant = next(v for v in task.variants if v.vid != sticky.vid)
    wrong_report = validator.validate(
        tb(render_checker_core(task, task.variant_params(wrong_variant))))
    return correct_report, wrong_report


def test_fig4_rs_matrices(benchmark):
    correct_report, wrong_report = benchmark.pedantic(_matrices,
                                                      rounds=1,
                                                      iterations=1)
    text = "\n".join([
        "FIG. 4 — EXAMPLE RS MATRICES ('#' correct / 'X' wrong)",
        "",
        f"Correct testbench (verdict: {correct_report.verdict}):",
        correct_report.matrix.render_ascii(),
        "",
        f"Wrong testbench (verdict: {wrong_report.verdict}, "
        f"wrong scenarios: {list(wrong_report.wrong)}):",
        wrong_report.matrix.render_ascii(),
    ])
    emit("fig4_rs_matrices", text)

    assert correct_report.verdict is True
    assert wrong_report.verdict is False
    # The wrong TB shows the figure's signature: at least one column is
    # >= 70% red.
    fractions = [wrong_report.matrix.column_wrong_fraction(s)
                 for s in wrong_report.matrix.scenario_indexes]
    assert any(f is not None and f >= 0.70 for f in fractions)
    # The correct TB's matrix is green-dominated.
    green = correct_report.matrix.fully_green_row_fraction()
    assert green >= 0.5
