#!/usr/bin/env python3
"""Regenerate the checked-in trace regression corpus (tests/traces/).

Each entry records one full CorrectBench session against the synthetic
model and writes it as ``tests/traces/<task>.<label>.trace.jsonl``.
The corpus pins the correction loop end to end: strict replay
(:func:`repro.core.trace.replay_workflow`) must reproduce every round
verdict and the final result bit for bit, so any behavioural drift in
the generator / validator / corrector pipeline shows up as a replay
mismatch in ``tests/core/test_trace_corpus.py``.

Scenario coverage (seeds chosen by probing the synthetic model):

- quick single-round acceptance,
- multi-round correction recoveries (with and without reboots),
- budget-capped give-ups (correction-only and reboot budgets),
- a stage-2 ``ExtractionError`` retry: one ``correct_rewrite`` reply is
  recorded with its python fence mislabelled, so every replay walks the
  corrector's retry path deterministically.

Usage::

    PYTHONPATH=src python scripts/record_trace_corpus.py [OUT_DIR]

Deterministic: re-running writes byte-identical files (modulo the
per-exchange ``elapsed_ms`` timing field, which replay ignores).
Exits non-zero if a recording misses its expected shape or fails
strict replay.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.agent import CorrectBenchWorkflow          # noqa: E402
from repro.core.trace import (JsonlTraceSink, Trace,       # noqa: E402
                              load_trace, replay_workflow)
from repro.core.validator import DEFAULT_CRITERION         # noqa: E402
from repro.llm import (MeteredClient, UsageMeter,          # noqa: E402
                       get_profile)
from repro.llm.base import ChatResponse                    # noqa: E402
from repro.llm.synthetic import SyntheticLLM               # noqa: E402
from repro.problems import get_task                        # noqa: E402

PROFILE = "gpt-4o-mini"
DEFAULT_OUT_DIR = REPO_ROOT / "tests" / "traces"


class FenceMangler:
    """Mislabel the python fence on one stage-2 corrector reply.

    ``extract_code_block_checked(text, "python")`` treats a reply whose
    fences all carry the wrong language as unusable, so the corrector
    re-asks once under the formatting rules.  The mangled text is what
    the trace records, which makes the retry replay deterministically.
    Delegates ``name`` / ``seed`` / ``introspect`` so trace headers and
    fault fingerprints see the real synthetic model underneath.
    """

    def __init__(self, inner):
        self.inner = inner
        self.mangled = 0

    @property
    def name(self):
        return self.inner.name

    @property
    def seed(self):
        return self.inner.seed

    def introspect(self, artifact_text):
        return self.inner.introspect(artifact_text)

    def complete(self, request):
        response = self.inner.complete(request)
        if (self.mangled == 0
                and request.intent.kind == "correct_rewrite"
                and not request.intent.payload.get("retry")
                and "```python" in response.text):
            self.mangled += 1
            return ChatResponse(
                response.text.replace("```python", "```text", 1),
                response.usage, response.model_name)
        return response


@dataclass(frozen=True)
class CorpusEntry:
    task_id: str
    label: str
    seed: int
    workflow_kwargs: dict = field(default_factory=dict)
    mangle_rewrite: bool = False
    #: shape checks against the finished recording
    expect_validated: bool = True
    min_rounds: int = 1
    expect_retry: bool = False

    @property
    def filename(self) -> str:
        return f"{self.task_id}.{self.label}.trace.jsonl"


#: The corpus.  Seeds were probed so each entry lands in its scenario;
#: see tests/core/test_trace_corpus.py for the replay assertions.
CORPUS = (
    # Single-round acceptance: the smallest faithful session.
    CorpusEntry("cmb_eq4", "quick", seed=3),
    # Multi-round recovery: three corrections, no reboot.
    CorpusEntry("cmb_add16", "recovery", seed=0, min_rounds=3),
    # Recovery that needs a reboot (fresh generation) to converge.
    CorpusEntry("cmb_alu4", "reboot_recovery", seed=2, min_rounds=4),
    CorpusEntry("seq_count4_up", "reboot_recovery", seed=3,
                min_rounds=4),
    # Give-up with the correction budget alone (no reboots allowed).
    CorpusEntry("seq_detect_101_ov", "giveup_corrections", seed=0,
                workflow_kwargs={"ic_max": 1, "ir_max": 0},
                expect_validated=False, min_rounds=2),
    # Give-up after exhausting a small reboot budget too.
    CorpusEntry("seq_detect_101_ov", "giveup_reboots", seed=2,
                workflow_kwargs={"ic_max": 2, "ir_max": 1},
                expect_validated=False, min_rounds=4),
    # Stage-2 ExtractionError retry (see FenceMangler).
    CorpusEntry("cmb_alu4", "extraction_retry", seed=0,
                mangle_rewrite=True, min_rounds=2, expect_retry=True),
)


def has_rewrite_retry(trace: Trace) -> bool:
    """True when some correction needed two stage-2 replies in a row."""
    kinds = [event["kind"] for event in trace.exchanges()]
    return any(a == b == "correct_rewrite"
               for a, b in zip(kinds, kinds[1:]))


def record_entry(entry: CorpusEntry, out_dir: Path) -> list[str]:
    path = out_dir / entry.filename
    if path.exists():
        path.unlink()
    inner = SyntheticLLM(get_profile(PROFILE), seed=entry.seed)
    if entry.mangle_rewrite:
        inner = FenceMangler(inner)
    client = MeteredClient(inner, UsageMeter())
    workflow = CorrectBenchWorkflow(
        client, get_task(entry.task_id), DEFAULT_CRITERION,
        trace_sink=JsonlTraceSink(str(path)), **entry.workflow_kwargs)
    result = workflow.run()

    trace = load_trace(str(path))
    problems = []
    if result.validated != entry.expect_validated:
        problems.append(f"validated={result.validated}, expected "
                        f"{entry.expect_validated}")
    rounds = len(trace.validations())
    if rounds < entry.min_rounds:
        problems.append(f"{rounds} rounds < {entry.min_rounds}")
    if entry.expect_retry and not has_rewrite_retry(trace):
        problems.append("no stage-2 retry exchange recorded")
    outcome = replay_workflow(trace)
    if not outcome.matches:
        problems.append(f"strict replay diverged at round "
                        f"{outcome.diverged_round()}")
    print(f"  {entry.filename}: rounds={rounds} "
          f"corrections={result.corrections} reboots={result.reboots} "
          f"validated={result.validated} "
          f"exchanges={len(trace.exchanges())}"
          + (" retry" if entry.expect_retry else ""))
    return [f"{entry.filename}: {p}" for p in problems]


def main(argv: list[str]) -> int:
    out_dir = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUT_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"Recording {len(CORPUS)} traces into {out_dir}")
    problems = []
    for entry in CORPUS:
        problems.extend(record_entry(entry, out_dir))
    if problems:
        print("\nCorpus problems:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("All recordings verified by strict replay.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
