#!/usr/bin/env python3
"""Closed-loop load generator for the testbench service.

Each of ``--concurrency`` workers keeps one HTTP connection open and
runs a closed loop — send a request, wait for the response, repeat —
until the duration elapses.  Closed-loop load means the offered rate
adapts to the service rate, so the numbers measure sustained capacity,
not queue explosion.

Every worker posts the same driver against its *own* DUT variant: the
exact shape the cross-request micro-batcher coalesces (one compatible
batch, many unique DUTs), so batched and unbatched server configs are
directly comparable.

Usage (the CI smoke job; see docs/service.md for the knobs)::

    PYTHONPATH=src python scripts/loadgen.py \\
        --url http://127.0.0.1:8322 --concurrency 8 --duration 30 \\
        --out loadgen.json --histogram histogram.json

Importable too: :func:`run_load` drives an already-running server and
returns the stats dict; ``benchmarks/bench_hdl_simulator.py`` uses it
for the ``service_throughput`` gate.
"""

import argparse
import http.client
import json
import sys
import threading
import time
from urllib.parse import urlsplit

#: Log-scale latency histogram bucket upper bounds (milliseconds).
HISTOGRAM_BUCKETS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
                        2000, 5000)


def default_payload_factory(scenario_mult: int = 10):
    """Payload factory: shared driver, DUT variants keyed by iteration.

    All workers at closed-loop iteration *k* submit the same epoch-*k*
    DUT variant — the thundering-herd shape that motivates request
    coalescing everywhere (parallel AutoEval clients scoring the same
    candidate, retry storms, shared mutant sets).  Every epoch is a
    *new* design, so nothing is pre-warmed; a coalescing server
    simulates each epoch once per window and fans the result back,
    while an unbatched server re-simulates per request.

    ``scenario_mult`` replicates the canonical scenario plan so one
    simulation costs what real testbench sweeps cost (a few ms),
    keeping the measurement about the simulation path rather than HTTP
    framing.
    """
    from repro.codegen import render_driver
    from repro.problems import get_task

    task = get_task("cmb_eq4")
    driver = render_driver(task,
                           task.canonical_scenarios() * scenario_mult)
    golden = task.golden_rtl()

    def build(worker: int, iteration: int) -> bytes:
        dut = golden.replace(
            "endmodule",
            f"\n// loadgen epoch {iteration}\nendmodule")
        return json.dumps({"driver": driver, "dut": dut}).encode()

    return build


def unique_payload_factory(scenario_mult: int = 10):
    """A distinct DUT per (worker, iteration): zero-dedup traffic.

    The adversarial counterpart to :func:`default_payload_factory` —
    no two requests ever coalesce into one simulation, so this bounds
    the window-latency cost batching adds when there is nothing to
    share.
    """
    build = default_payload_factory(scenario_mult)

    def unique(worker: int, iteration: int) -> bytes:
        payload = json.loads(build(worker, iteration))
        payload["dut"] = payload["dut"].replace(
            "// loadgen epoch", f"// loadgen worker {worker} epoch")
        return json.dumps(payload).encode()

    return unique


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _histogram(latencies_ms: list[float]) -> dict:
    counts = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
    for latency in latencies_ms:
        for slot, bound in enumerate(HISTOGRAM_BUCKETS_MS):
            if latency <= bound:
                counts[slot] += 1
                break
        else:
            counts[-1] += 1
    return {"buckets_ms": list(HISTOGRAM_BUCKETS_MS) + ["+Inf"],
            "counts": counts}


class _Worker(threading.Thread):
    def __init__(self, host: str, port: int, path: str, index: int,
                 payload_factory, deadline: float, timeout: float):
        super().__init__(daemon=True)
        self.host, self.port, self.path = host, port, path
        self.index = index
        self.payload_factory = payload_factory
        self.deadline = deadline
        self.timeout = timeout
        self.latencies_ms: list[float] = []
        self.statuses: dict[int, int] = {}
        self.errors = 0

    def run(self) -> None:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        iteration = 0
        try:
            while time.monotonic() < self.deadline:
                payload = self.payload_factory(self.index, iteration)
                iteration += 1
                started = time.monotonic()
                try:
                    connection.request("POST", self.path, body=payload)
                    response = connection.getresponse()
                    response.read()
                    status = response.status
                except (OSError, http.client.HTTPException):
                    self.errors += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout)
                    continue
                elapsed_ms = (time.monotonic() - started) * 1000.0
                self.latencies_ms.append(elapsed_ms)
                self.statuses[status] = self.statuses.get(status, 0) + 1
                if status == 429:
                    # Honour backpressure: brief closed-loop backoff.
                    time.sleep(min(0.05, self.timeout))
        finally:
            connection.close()


def run_load(url: str, *, concurrency: int = 8, duration_s: float = 10.0,
             path: str = "/v1/simulate", payload_factory=None,
             timeout: float = 60.0) -> dict:
    """Drive ``url`` closed-loop and return the stats dict."""
    parts = urlsplit(url)
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    if payload_factory is None:
        payload_factory = default_payload_factory()
    deadline = time.monotonic() + duration_s
    workers = [
        _Worker(host, port, path, index, payload_factory,
                deadline, timeout)
        for index in range(concurrency)]
    started = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=duration_s + timeout)
    elapsed = time.monotonic() - started

    latencies = sorted(latency for worker in workers
                       for latency in worker.latencies_ms)
    statuses: dict[str, int] = {}
    for worker in workers:
        for status, count in worker.statuses.items():
            key = str(status)
            statuses[key] = statuses.get(key, 0) + count
    completed = statuses.get("200", 0)
    return {
        "concurrency": concurrency,
        "duration_s": round(elapsed, 3),
        "requests": len(latencies),
        "completed_200": completed,
        "errors": sum(worker.errors for worker in workers),
        "statuses": statuses,
        "throughput_rps": round(completed / elapsed, 3) if elapsed else 0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p90": round(_percentile(latencies, 0.90), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "histogram": _histogram(latencies),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8322",
                        help="service base URL")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of closed-loop load")
    parser.add_argument("--path", default="/v1/simulate")
    parser.add_argument("--unique-payloads", action="store_true",
                        help="distinct DUT per request (zero-dedup "
                             "adversarial load) instead of the "
                             "thundering-herd default")
    parser.add_argument("--scenario-mult", type=int, default=10,
                        help="scenario-plan replication factor "
                             "(per-request simulation weight)")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--out", help="write full stats JSON here")
    parser.add_argument("--histogram",
                        help="write just the latency histogram here")
    parser.add_argument("--min-rps", type=float, default=None,
                        help="exit 1 if sustained 200-rps falls below")
    args = parser.parse_args(argv)

    factory = (unique_payload_factory(args.scenario_mult)
               if args.unique_payloads
               else default_payload_factory(args.scenario_mult))
    stats = run_load(args.url, concurrency=args.concurrency,
                     duration_s=args.duration, path=args.path,
                     payload_factory=factory, timeout=args.timeout)
    print(json.dumps(stats, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(stats, handle, indent=2)
            handle.write("\n")
    if args.histogram:
        with open(args.histogram, "w") as handle:
            json.dump(stats["histogram"], handle, indent=2)
            handle.write("\n")
    if args.min_rps is not None and stats["throughput_rps"] < args.min_rps:
        print(f"FAIL: {stats['throughput_rps']} rps < "
              f"{args.min_rps} rps floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
