#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Dependency-free by design (the CI image and the sandbox both lack a
link-check package): validates that every relative markdown link points
at an existing file or directory, and that ``#anchor`` fragments match
a heading in the target document (GitHub slug rules, simplified).
External ``http(s)`` links are listed but not fetched — CI must not
fail on somebody else's outage.

Usage::

    python scripts/check_links.py [FILE_OR_DIR ...]

Defaults to ``README.md`` and ``docs/`` relative to the repo root.
Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (simplified: lowercase, drop
    punctuation, spaces to dashes)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match.group(1))
            for match in _HEADING_RE.finditer(text)}


def check_file(path: Path) -> list[str]:
    errors = []
    text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-markdown: not checkable
            if fragment not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor "
                              f"#{fragment} in {resolved.name}")
    return errors


def collect(paths: list[str]) -> list[Path]:
    if not paths:
        paths = [str(REPO_ROOT / "README.md"), str(REPO_ROOT / "docs")]
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    errors = []
    files = collect(argv)
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if errors else 'ok'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
