"""Sequential simulation semantics: clocking, NBA region, resets, races."""

from repro.hdl import simulate


def test_nonblocking_swap():
    """The classic NBA test: two registers swap without a temp."""
    src = """
module tb;
    reg clk;
    reg [3:0] a, b;
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        a = 4'd1;
        b = 4'd2;
        @(posedge clk); #1;
        $display("%d %d", a, b);
        $finish;
    end
    always @(posedge clk) begin
        a <= b;
        b <= a;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["2 1"]


def test_pipeline_shifts_one_stage_per_edge():
    src = """
module top_module (input clk, input [3:0] d, output reg [3:0] q);
reg [3:0] s1;
always @(posedge clk) begin
    s1 <= d;
    q <= s1;
end
endmodule

module tb;
    reg clk;
    reg [3:0] d;
    wire [3:0] q;
    top_module dut(.clk(clk), .d(d), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        d = 4'd7;
        @(posedge clk); #1;
        d = 4'd3;
        @(posedge clk); #1;
        $display("%d", q);
        @(posedge clk); #1;
        $display("%d", q);
        $finish;
    end
endmodule
"""
    # After the 2nd edge q holds the 1st edge's d; after the 3rd, d=3.
    assert simulate(src, "tb").stdout == ["7", "3"]


def test_synchronous_reset():
    src = """
module tb;
    reg clk, rst;
    reg [3:0] q;
    always #5 clk = ~clk;
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= q + 4'd1;
    end
    initial begin
        clk = 0;
        rst = 1;
        @(posedge clk); #1;
        rst = 0;
        @(posedge clk); #1;
        @(posedge clk); #1;
        $display("%d", q);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["2"]


def test_asynchronous_reset_fires_without_clock():
    src = """
module tb;
    reg clk, areset;
    reg q;
    always @(posedge clk or posedge areset) begin
        if (areset) q <= 1'b0;
        else q <= 1'b1;
    end
    initial begin
        clk = 0;
        areset = 0;
        #3 areset = 1;  // no clock edge needed
        #1 $display("%b", q);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["0"]


def test_sampling_race_reads_stale_value():
    """Reading right at the posedge (no settle delay) sees the old value —
    the exact race the driver fault model injects."""
    src = """
module tb;
    reg clk;
    reg [3:0] q;
    always #5 clk = ~clk;
    always @(posedge clk) q <= q + 4'd1;
    initial begin
        clk = 0;
        q = 4'd0;
        @(posedge clk);
        $display("race=%d", q);
        #1 $display("settled=%d", q);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["race=0", "settled=1"]


def test_negedge_triggering():
    src = """
module tb;
    reg clk;
    reg [3:0] n;
    always #5 clk = ~clk;
    always @(negedge clk) n <= n + 4'd1;
    initial begin
        clk = 0;
        n = 4'd0;
        #21 $display("%d", n);
        $finish;
    end
endmodule
"""
    # Three negedges: x->0 at t=0 (a negedge per IEEE 1364: any
    # transition *to* 0), then 1->0 at t=10 and t=20.
    assert simulate(src, "tb").stdout == ["3"]


def test_memory_write_and_read():
    src = """
module tb;
    reg clk;
    reg [7:0] mem [3:0];
    reg [7:0] got;
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        @(posedge clk);
        mem[2] <= 8'd42;
        @(posedge clk); #1;
        got = mem[2];
        $display("%d", got);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["42"]


def test_fdisplay_capture_order():
    src = """
module tb;
    integer f;
    initial begin
        f = $fopen("out.txt");
        $fdisplay(f, "first");
        #10 $fdisplay(f, "second");
        $fclose(f);
        $finish;
    end
endmodule
"""
    result = simulate(src, "tb")
    assert result.files["out.txt"] == ["first", "second"]


def test_repeat_and_wait_composition():
    src = """
module tb;
    reg clk;
    reg [7:0] n;
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        n = 8'd0;
        repeat (3) begin
            @(posedge clk);
            n = n + 8'd1;
        end
        $display("%d", n);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["3"]


def test_two_clocks_independent():
    src = """
module tb;
    reg clk_a, clk_b;
    reg [7:0] ca, cb;
    always #5 clk_a = ~clk_a;
    always #7 clk_b = ~clk_b;
    always @(posedge clk_a) ca <= ca + 8'd1;
    always @(posedge clk_b) cb <= cb + 8'd1;
    initial begin
        clk_a = 0;
        clk_b = 0;
        ca = 0;
        cb = 0;
        #71;
        $display("%d %d", ca, cb);
        $finish;
    end
endmodule
"""
    # clk_a posedges at 5,15,...,65 -> 7; clk_b at 7,21,35,49,63 -> 5.
    assert simulate(src, "tb").stdout == ["7 5"]


def test_uninitialised_register_reads_x():
    src = """
module tb;
    reg [3:0] q;
    initial begin
        $display("%d", q);
        $finish;
    end
endmodule
"""
    assert simulate(src, "tb").stdout == ["x"]
