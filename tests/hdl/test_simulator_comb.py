"""Combinational simulation semantics."""

import pytest

from repro.hdl import SimulationError, compile_design, simulate
from repro.hdl.errors import SimulationLimit


def run_expr(expr: str, width: int = 8, **inputs) -> str:
    """Evaluate a Verilog expression through a tiny module + testbench."""
    decls = "\n".join(f"    input [{w - 1}:0] {name},"
                      for name, (w, _) in inputs.items())
    assigns = "\n".join(
        f"    {name} = {w}'d{value & ((1 << w) - 1)};"
        for name, (w, value) in inputs.items())
    regs = "\n".join(f"    reg [{w - 1}:0] {name};"
                     for name, (w, _) in inputs.items())
    conns = ", ".join(f".{name}({name})" for name in inputs)
    conns = conns + (", " if conns else "") + ".out(out)"
    src = f"""
module top_module (
{decls}
    output [{width - 1}:0] out
);
assign out = {expr};
endmodule

module tb;
{regs}
    wire [{width - 1}:0] out;
    top_module dut({conns});
    initial begin
{assigns}
        #10 $display("out=%d", out);
        $finish;
    end
endmodule
"""
    result = simulate(src, "tb")
    assert result.finished
    return result.stdout[-1].split("=")[1]


class TestOperators:
    def test_addition_wraps(self):
        assert run_expr("a + b", 8, a=(8, 200), b=(8, 100)) == "44"

    def test_subtraction_wraps(self):
        assert run_expr("a - b", 8, a=(8, 5), b=(8, 10)) == "251"

    def test_multiplication(self):
        assert run_expr("a * b", 8, a=(8, 12), b=(8, 12)) == "144"

    def test_division(self):
        assert run_expr("a / b", 8, a=(8, 100), b=(8, 7)) == "14"

    def test_modulo(self):
        assert run_expr("a % b", 8, a=(8, 100), b=(8, 7)) == "2"

    def test_division_by_zero_is_x(self):
        assert run_expr("a / b", 8, a=(8, 4), b=(8, 0)) == "x"

    def test_shift_left_drops_bits(self):
        assert run_expr("a << b", 8, a=(8, 0x81), b=(8, 1)) == "2"

    def test_shift_right(self):
        assert run_expr("a >> b", 8, a=(8, 0x80), b=(8, 3)) == "16"

    def test_comparison(self):
        assert run_expr("a < b", 1, a=(8, 3), b=(8, 9)) == "1"
        assert run_expr("a >= b", 1, a=(8, 9), b=(8, 9)) == "1"

    def test_equality(self):
        assert run_expr("a == b", 1, a=(8, 7), b=(8, 7)) == "1"
        assert run_expr("a != b", 1, a=(8, 7), b=(8, 8)) == "1"

    def test_ternary(self):
        assert run_expr("a ? b : 8'd9", 8, a=(1, 1), b=(8, 4)) == "4"
        assert run_expr("a ? b : 8'd9", 8, a=(1, 0), b=(8, 4)) == "9"

    def test_concat(self):
        assert run_expr("{a, b}", 8, a=(4, 0xA), b=(4, 0x5)) == "165"

    def test_replication(self):
        assert run_expr("{4{a}}", 8, a=(2, 0b10)) == "170"

    def test_reduction_xor(self):
        assert run_expr("^a", 1, a=(8, 0b1011)) == "1"
        assert run_expr("^a", 1, a=(8, 0b11)) == "0"

    def test_logical_ops(self):
        assert run_expr("a && b", 1, a=(8, 3), b=(8, 0)) == "0"
        assert run_expr("a || b", 1, a=(8, 0), b=(8, 5)) == "1"
        assert run_expr("!a", 1, a=(8, 0)) == "1"

    def test_bit_select(self):
        assert run_expr("a[3]", 1, a=(8, 0b1000)) == "1"

    def test_part_select(self):
        assert run_expr("a[7:4]", 4, a=(8, 0xAB)) == "10"

    def test_case_equality_with_known_values(self):
        assert run_expr("a === b", 1, a=(4, 5), b=(4, 5)) == "1"


class TestAlwaysComb:
    def test_case_statement(self):
        src = """
module top_module (input [1:0] sel, output reg [3:0] out);
always @(*) begin
    case (sel)
        2'd0: out = 4'd1;
        2'd1: out = 4'd2;
        default: out = 4'd15;
    endcase
end
endmodule

module tb;
    reg [1:0] sel;
    wire [3:0] out;
    top_module dut(.sel(sel), .out(out));
    initial begin
        sel = 2'd1;
        #10 $display("%d", out);
        sel = 2'd3;
        #10 $display("%d", out);
        $finish;
    end
endmodule
"""
        result = simulate(src, "tb")
        assert result.stdout == ["2", "15"]

    def test_for_loop_popcount(self):
        src = """
module top_module (input [7:0] in_bus, output reg [3:0] count);
integer i;
always @(*) begin
    count = 4'd0;
    for (i = 0; i < 8; i = i + 1) begin
        count = count + in_bus[i];
    end
end
endmodule

module tb;
    reg [7:0] in_bus;
    wire [3:0] count;
    top_module dut(.in_bus(in_bus), .count(count));
    initial begin
        in_bus = 8'b1011_0110;
        #10 $display("%d", count);
        $finish;
    end
endmodule
"""
        assert simulate(src, "tb").stdout == ["5"]

    def test_combinational_chain_settles(self):
        src = """
module top_module (input [3:0] a, output [3:0] out);
wire [3:0] mid;
assign mid = a + 4'd1;
assign out = mid + 4'd1;
endmodule

module tb;
    reg [3:0] a;
    wire [3:0] out;
    top_module dut(.a(a), .out(out));
    initial begin
        a = 4'd3;
        #10 $display("%d", out);
        $finish;
    end
endmodule
"""
        assert simulate(src, "tb").stdout == ["5"]

    def test_wire_initializer_is_continuous(self):
        # `wire w = expr;` must track its inputs, not freeze at time zero.
        src = """
module top_module (input [3:0] a, output [3:0] out);
wire [3:0] doubled = a + a;
assign out = doubled;
endmodule

module tb;
    reg [3:0] a;
    wire [3:0] out;
    top_module dut(.a(a), .out(out));
    initial begin
        a = 4'd2;
        #10 $display("%d", out);
        a = 4'd5;
        #10 $display("%d", out);
        $finish;
    end
endmodule
"""
        assert simulate(src, "tb").stdout == ["4", "10"]

    def test_combinational_loop_detected(self):
        src = """
module tb;
    wire a, b;
    assign a = ~b;
    assign b = ~a;
    initial #10 $finish;
endmodule
"""
        # Either it settles (stable x) or trips the delta budget; both are
        # acceptable, but it must not hang.
        try:
            simulate(src, "tb")
        except SimulationLimit:
            pass

    def test_x_absorbs_feedback(self):
        # A feedback loop through x-propagating operators settles at x
        # instead of oscillating — 4-state stability.
        src = """
module tb;
    reg start;
    wire a;
    assign a = start ^ a;
    initial begin
        start = 1'b1;
        #10 $display("%b", a);
        $finish;
    end
endmodule
"""
        assert simulate(src, "tb").stdout == ["x"]

    def test_oscillating_loop_trips_budget(self):
        # `===` produces defined bits from x, so this two-process ring
        # genuinely oscillates and must be cut off by the delta budget.
        src = """
module tb;
    wire a, b;
    assign a = ~(b === 1'b1);
    assign b = a;
    initial #10 $finish;
endmodule
"""
        with pytest.raises(SimulationLimit):
            simulate(src, "tb")


class TestCompileChecks:
    def test_unknown_identifier_rejected(self):
        with pytest.raises(Exception):
            compile_design("module top_module (output o);\n"
                           "assign o = nonexistent;\nendmodule",
                           "top_module")

    def test_missing_module_rejected(self):
        with pytest.raises(Exception):
            compile_design("module a (); endmodule", "top_module")

    def test_statement_budget(self):
        src = """
module tb;
    integer i;
    initial begin
        i = 0;
        while (1) i = i + 1;
    end
endmodule
"""
        with pytest.raises((SimulationLimit, SimulationError)):
            simulate(src, "tb", max_stmts=10_000)


class TestFinishInCombinational:
    """$finish inside a combinational process must end the run cleanly
    instead of escaping Simulator.run() as an internal exception."""

    SRC = """
module tb;
    reg go;
    always @(*) if (go) $finish;
    initial begin
        go = 0;
        #5 go = 1;
        #100 $display("never printed");
    end
endmodule
"""

    @pytest.mark.parametrize("engine", ["interpret", "compiled"])
    def test_finish_requested_cleanly(self, engine):
        result = simulate(self.SRC, "tb", engine=engine)
        assert result.finished
        assert result.sim_time == 5
        assert result.stdout == []
