"""Differential fuzzing: random HDL programs through every engine path.

A seeded generator produces small valid-by-construction programs
covering the supported surface — procedural blocks (delays, event
controls, loops, case/ternary), combinational logic (continuous
assigns, ``always @(*)`` case blocks), hierarchy (a child module
instance, both net-aliased and expression-bound ports), 4-state
``x``/``z`` literals, memories and ``$display`` formatting.  Each
program is executed three ways:

1. the ``interpret`` reference engine,
2. the ``compiled`` engine with a cold program cache (first compile of
   the slot-indexed programs),
3. the ``compiled`` engine again on a fresh elaboration, which must hit
   the shared-program cache and only *rebind* the slot tables — the
   path every production driver/DUT re-pairing takes.

All three must produce identical observable traces: stdout, emitted
files, finish flag, final simulation time and the final (VCD-visible)
value of every signal and memory word.  When a program errors, all
engines must raise the same error class.

The corpus is deterministic under a fixed seed.  Budget knobs:

- ``REPRO_FUZZ_PROGRAMS`` — corpus size (default 200; CI smoke uses a
  smaller budget, long fuzz runs a larger one),
- ``REPRO_FUZZ_SEED`` — base seed.
"""

import random

import pytest

from repro.hdl import current_context, simulate
from repro.hdl.compile import clear_program_cache, program_cache_stats
from repro.hdl.errors import HdlError

# Budget knobs ride on the root SimContext (seeded from
# REPRO_FUZZ_PROGRAMS / REPRO_FUZZ_SEED at import).
N_PROGRAMS = current_context().fuzz_programs
BASE_SEED = current_context().fuzz_seed
MAX_TIME = 100_000
MAX_STMTS = 400_000

# Aggregated across the parametrized cases; checked by the meta test.
_corpus_outcomes: dict[int, tuple[bool, bool]] = {}


# ----------------------------------------------------------------------
# Program generator
# ----------------------------------------------------------------------
class ProgramGen:
    """Random-but-valid Verilog programs over the supported subset."""

    UNOPS = ("~", "-", "&", "|", "^", "!", "~&", "~|")
    BINOPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
              "==", "!=", "<", "<=", ">", ">=", "&&", "||", "===", "!==")
    WIDTHS = (1, 2, 3, 4, 8)

    def __init__(self, rng: random.Random):
        self.rng = rng

    def literal(self, width: int) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.3:
            # Binary literal, sometimes with x/z digits (z reads as x).
            digits = "".join(
                rng.choice("xz") if rng.random() < 0.25 else rng.choice("01")
                for _ in range(width))
            return f"{width}'b{digits}"
        if roll < 0.65:
            return f"{width}'d{rng.randrange(1 << min(width, 16))}"
        return f"{width}'h{rng.randrange(1 << min(width, 16)):x}"

    def expr(self, nets: list[tuple[str, int]], depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if nets and rng.random() < 0.65:
                name, width = rng.choice(nets)
                roll = rng.random()
                if roll < 0.15 and width > 1:
                    return f"{name}[{rng.randrange(width)}]"
                if roll < 0.3 and width > 2:
                    lsb = rng.randrange(width - 1)
                    msb = rng.randrange(lsb, width)
                    return f"{name}[{msb}:{lsb}]"
                return name
            return self.literal(rng.choice(self.WIDTHS))
        roll = rng.random()
        if roll < 0.15:
            return f"({rng.choice(self.UNOPS)} {self.expr(nets, depth - 1)})"
        if roll < 0.7:
            return (f"({self.expr(nets, depth - 1)} {rng.choice(self.BINOPS)}"
                    f" {self.expr(nets, depth - 1)})")
        if roll < 0.82:
            return (f"({self.expr(nets, depth - 1)} ?"
                    f" {self.expr(nets, depth - 1)} :"
                    f" {self.expr(nets, depth - 1)})")
        if roll < 0.94:
            parts = ", ".join(self.expr(nets, depth - 1)
                              for _ in range(rng.randrange(2, 4)))
            return f"{{{parts}}}"
        return f"{{{rng.randrange(1, 4)}{{{self.expr(nets, 0)}}}}}"


def generate_program(seed: int) -> str:
    rng = random.Random(seed)
    g = ProgramGen(rng)
    lines: list[str] = []

    # Hierarchy: a child module combining its inputs combinationally.
    use_child = rng.random() < 0.6
    child_w = rng.choice((2, 4, 8))
    if use_child:
        body = g.expr([("a", child_w), ("b", child_w)], 2)
        lines += [
            f"module child(input [{child_w - 1}:0] a,"
            f" input [{child_w - 1}:0] b,"
            f" output [{child_w - 1}:0] y);",
            f"    assign y = {body};",
            "endmodule",
            "",
        ]

    lines.append("module tb;")
    lines.append("    reg clk;")
    lines.append("    integer i;")

    regs: list[tuple[str, int]] = []
    for index in range(rng.randrange(2, 5)):
        width = rng.choice(g.WIDTHS)
        signed = "signed " if rng.random() < 0.25 else ""
        name = f"r{index}"
        lines.append(f"    reg {signed}[{width - 1}:0] {name};")
        regs.append((name, width))

    readable = list(regs)
    for index in range(rng.randrange(1, 4)):
        width = rng.choice(g.WIDTHS)
        name = f"w{index}"
        lines.append(f"    wire [{width - 1}:0] {name} ="
                     f" {g.expr(readable, 2)};")
        readable.append((name, width))

    if use_child:
        lines.append(f"    wire [{child_w - 1}:0] cy;")
        if rng.random() < 0.5 and len(regs) >= 2:
            # Net-aliased ports: plain identifiers of matching width
            # when available, otherwise expressions.
            a_expr = g.expr(readable, 1)
            b_expr = g.expr(readable, 1)
        else:
            a_expr = g.expr(readable, 1)
            b_expr = g.literal(child_w)
        lines.append(f"    child c0(.a({a_expr}), .b({b_expr}), .y(cy));")
        readable.append(("cy", child_w))

    # Clocked state register.
    q_w = rng.choice((2, 4, 8))
    lines.append(f"    reg [{q_w - 1}:0] q;")
    edge = rng.choice(("posedge", "negedge"))
    if rng.random() < 0.5:
        lines.append(f"    always @({edge} clk) q <= {g.expr(readable, 2)};")
    else:
        lines.append(f"    always @({edge} clk) begin")
        lines.append(f"        if ({g.expr(readable, 1)})"
                     f" q <= {g.expr(readable, 2)};")
        lines.append(f"        else q <= {g.expr(readable, 1)};")
        lines.append("    end")
    sampled = readable + [("q", q_w)]

    # Combinational case block.
    m_w = rng.choice((2, 4, 8))
    lines.append(f"    reg [{m_w - 1}:0] m;")
    subj_name, subj_w = rng.choice(regs)
    case_kind = rng.choice(("case", "casez", "casex"))
    lines.append("    always @(*) begin")
    lines.append(f"        {case_kind} ({subj_name})")
    for _ in range(rng.randrange(1, 4)):
        lines.append(f"            {g.literal(subj_w)}:"
                     f" m = {g.expr(sampled, 1)};")
    lines.append(f"            default: m = {g.expr(sampled, 1)};")
    lines.append("        endcase")
    lines.append("    end")
    observable = sampled + [("m", m_w)]

    # Optional memory exercised from the driver.
    use_mem = rng.random() < 0.4
    if use_mem:
        mem_w = rng.choice((4, 8))
        lines.append(f"    reg [{mem_w - 1}:0] mem [0:7];")

    # Clock generator.
    half = rng.randrange(1, 6)
    lines.append("    initial begin clk = 0;"
                 f" forever #{half} clk = ~clk; end")

    # Driver.
    fmt = " ".join(f"{name}=%b" for name, _ in observable)
    args = ", ".join(name for name, _ in observable)
    lines.append("    initial begin")
    for name, width in regs:
        lines.append(f"        {name} = {g.literal(width)};")
    if use_mem:
        lines.append("        for (i = 0; i < 8; i = i + 1)"
                     f" mem[i] = {g.expr(sampled, 1)};")
    for step in range(rng.randrange(2, 6)):
        if rng.random() < 0.55:
            lines.append(f"        #{rng.randrange(1, 15)};")
        else:
            lines.append(
                f"        @({rng.choice(('posedge', 'negedge'))} clk);")
        name, _ = rng.choice(regs)
        lines.append(f"        {name} = {g.expr(sampled, 2)};")
        if rng.random() < 0.4:
            other, other_w = rng.choice(regs)
            lines.append(f"        {other} = {g.literal(other_w)};")
        lines.append(f'        $display("s{step}: {fmt}", {args});')
    loop_roll = rng.random()
    target, target_w = rng.choice(regs)
    if loop_roll < 0.33:
        lines.append(f"        for (i = 0; i < {rng.randrange(2, 7)};"
                     " i = i + 1)")
        lines.append(f"            {target} = {target} + i[{target_w - 1}:0];")
    elif loop_roll < 0.66:
        lines.append(f"        repeat ({rng.randrange(2, 6)})"
                     f" {target} = {g.expr(sampled, 1)};")
    if use_mem:
        lines.append('        $display("mem %b %b", mem[2], mem[5]);')
    lines.append(f'        #1 $display("end: {fmt} t=%0t", {args}, $time);')
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Execution + comparison
# ----------------------------------------------------------------------
def snapshot(result) -> dict:
    design = result.design
    return {
        "finished": result.finished,
        "sim_time": result.sim_time,
        "stdout": list(result.stdout),
        "files": {name: list(lines) for name, lines in result.files.items()},
        "signals": {name: sig.value.bits()
                    for name, sig in design.signals.items()},
        "memories": {name: [word.bits() for word in mem.words]
                     for name, mem in design.memories.items()},
    }


def run_engine(src: str, engine: str):
    try:
        return snapshot(simulate(src, "tb", max_time=MAX_TIME,
                                 max_stmts=MAX_STMTS, engine=engine))
    except HdlError as exc:
        return ("error", type(exc).__name__)


def seed_for(index: int) -> int:
    return (BASE_SEED << 20) + index


@pytest.mark.parametrize("index", range(N_PROGRAMS))
def test_differential_fuzz(index):
    src = generate_program(seed_for(index))

    interp = run_engine(src, "interpret")

    clear_program_cache()
    fresh = run_engine(src, "compiled")

    before = program_cache_stats()
    rebound = run_engine(src, "compiled")
    after = program_cache_stats()

    assert fresh == rebound, "fresh-compile vs shared-rebind divergence"
    assert interp == fresh, "interpreter vs compiled divergence"
    ok = not (isinstance(interp, tuple) and interp[0] == "error")
    if ok:
        assert after["programs_shared"] > before["programs_shared"], \
            "second compiled run did not reuse shared programs"
    _corpus_outcomes[index] = (ok, ok and bool(interp["stdout"]))


def test_generator_is_deterministic():
    seed = seed_for(0)
    assert generate_program(seed) == generate_program(seed)
    assert generate_program(seed) != generate_program(seed + 1)


def test_corpus_not_vacuous():
    """Meta-check: the corpus genuinely exercises the simulator.

    Runs after the parametrized cases; skipped when they were filtered
    out (e.g. ``-k``).
    """
    if len(_corpus_outcomes) < N_PROGRAMS:
        pytest.skip("fuzz corpus did not run in full")
    finished = sum(1 for ok, _ in _corpus_outcomes.values() if ok)
    printed = sum(1 for _, out in _corpus_outcomes.values() if out)
    assert finished >= 0.9 * N_PROGRAMS, \
        f"only {finished}/{N_PROGRAMS} fuzz programs ran cleanly"
    assert printed >= 0.9 * N_PROGRAMS


# ----------------------------------------------------------------------
# Lockstep-vs-per-mutant sweep battery
# ----------------------------------------------------------------------
# The lockstep union engine must be observationally identical to N
# separate per-mutant runs: per-lane statuses, dump records and retire
# rounds.  A seeded generator produces codegen-style drivers (dump
# ``$fdisplay`` check-points) paired with small DUTs; mutants come from
# the real mutation operators, so every sweep compares the engines on
# the shapes production sweeps actually take.  The budget scales with
# REPRO_FUZZ_PROGRAMS (each sweep simulates ~7 lanes twice).
_N_SWEEPS = max(8, N_PROGRAMS // 10)
_SWEEP_SEED_SPACE = 1 << 16
_N_MUTANTS = 5

_sweep_engines: dict[int, str] = {}


def generate_sweep_case(seed: int) -> tuple[str, str]:
    """A (driver, DUT) pair in the codegen dump style."""
    rng = random.Random(seed)
    g = ProgramGen(rng)
    width = rng.choice((2, 4, 8))
    sequential = rng.random() < 0.5
    two_outputs = rng.random() < 0.4

    # DUT: comb function of (a, b), optionally registered on clk.
    nets = [("a", width), ("b", width)]
    body = []
    if sequential:
        nets.append(("acc", width))
        body += [
            f"    reg [{width - 1}:0] acc;",
            "    always @(posedge clk)"
            f" acc <= {g.expr(nets, 2)};",
            "    assign y = acc;",
        ]
    else:
        body.append(f"    assign y = {g.expr(nets, 2)};")
    out_decls = f"output [{width - 1}:0] y"
    if two_outputs:
        out_decls += ", output z"
        body.append(f"    assign z = {g.expr(nets, 1)};")
    dut = "\n".join([
        f"module top_module(input clk, input [{width - 1}:0] a,"
        f" input [{width - 1}:0] b, {out_decls});",
        *body,
        "endmodule",
    ])

    # Driver: codegen-style stimulus + dump $fdisplay check-points.
    spec = rng.choice(("%d", "%d", "%d", "%b", "%h"))
    fields = [("a", "%d"), ("b", "%d"), ("y", spec)]
    conns = [".clk(clk)", ".a(a)", ".b(b)", ".y(y)"]
    extra_decl = ""
    if two_outputs:
        fields.append(("z", "%d"))
        conns.append(".z(z)")
        extra_decl = "    wire z;\n"
    fmt = "scenario: %d, " + ", ".join(
        f"{name} = {fs}" for name, fs in fields)
    args = ", ".join(name for name, _ in fields)
    lines = [
        "module tb();",
        "    reg clk;",
        f"    reg [{width - 1}:0] a;",
        f"    reg [{width - 1}:0] b;",
        f"    wire [{width - 1}:0] y;",
        extra_decl + "    integer file;",
        "    integer scenario;",
        f"    top_module dut({', '.join(conns)});",
        "    always #5 clk = ~clk;",
        "    initial begin",
        '        file = $fopen("results.txt");',
        "        clk = 0;",
        "        scenario = 0;",
    ]
    for _ in range(rng.randrange(3, 7)):
        lines.append(f"        a = {g.literal(width)};"
                     f" b = {g.literal(width)};")
        lines.append("        @(posedge clk); #1;")
        lines.append("        scenario = scenario + 1;")
        lines.append(f'        $fdisplay(file, "{fmt}",'
                     f" scenario, {args});")
    lines += ["        $finish;", "    end", "endmodule"]
    return "\n".join(lines), dut


def sweep_seed_for(index: int) -> int:
    return (BASE_SEED << 20) + _SWEEP_SEED_SPACE + index


@pytest.mark.parametrize("index", range(_N_SWEEPS))
def test_lockstep_sweep_matches_per_mutant(index):
    from repro.core.simulation import run_mutant_sweep
    from repro.mutation import generate_mutants

    seed = sweep_seed_for(index)
    driver, dut = generate_sweep_case(seed)
    mutants = [mutant.source
               for mutant in generate_mutants(dut, _N_MUTANTS, seed)]

    lockstep = run_mutant_sweep(driver, mutants, golden_src=dut,
                                mutant_engine="lockstep")
    per_mutant = run_mutant_sweep(driver, mutants, golden_src=dut,
                                  mutant_engine="per-mutant")

    assert per_mutant.engine == "per-mutant"
    for k, (ls_run, pm_run) in enumerate(zip(lockstep.runs,
                                             per_mutant.runs)):
        assert ls_run.status == pm_run.status, f"lane {k} status"
        assert ls_run.records == pm_run.records, f"lane {k} records"
    if per_mutant.golden.ok:
        assert lockstep.golden.records == per_mutant.golden.records
    else:
        assert lockstep.golden.status == per_mutant.golden.status
    assert lockstep.retire_rounds == per_mutant.retire_rounds
    _sweep_engines[index] = lockstep.engine


def test_sweep_generator_is_deterministic():
    seed = sweep_seed_for(0)
    assert generate_sweep_case(seed) == generate_sweep_case(seed)
    assert generate_sweep_case(seed) != generate_sweep_case(seed + 1)


def test_sweep_corpus_not_vacuous():
    """Most sweeps must genuinely exercise the lockstep engine — a
    battery that always falls back to per-mutant proves nothing."""
    if len(_sweep_engines) < _N_SWEEPS:
        pytest.skip("sweep corpus did not run in full")
    locksteps = sum(1 for engine in _sweep_engines.values()
                    if engine == "lockstep")
    assert locksteps >= 0.7 * _N_SWEEPS, \
        f"only {locksteps}/{_N_SWEEPS} sweeps ran lockstep"
