"""Unparser round-trip: parse -> unparse -> parse is a fixed point."""

import pytest

from repro.hdl import parse_source, unparse_module
from repro.problems import load_dataset


def _roundtrip(source: str) -> None:
    first = parse_source(source)
    text = "\n".join(unparse_module(m) for m in first.modules)
    second = parse_source(text)
    assert first.modules == second.modules, text


@pytest.mark.parametrize("task", load_dataset(),
                         ids=lambda t: t.task_id)
def test_golden_rtl_roundtrips(task):
    _roundtrip(task.golden_rtl())


def test_behavioural_constructs_roundtrip():
    _roundtrip("""
module top_module (input clk, input [3:0] d, output reg [3:0] q);
reg [3:0] mem [7:0];
integer i;
localparam INIT = 4'd3;
always @(posedge clk or negedge d) begin
    if (d[0]) q <= d;
    else begin
        case (d)
            4'd0, 4'd1: q <= INIT;
            default: q <= ~q;
        endcase
    end
end
always @(*) begin
    for (i = 0; i < 8; i = i + 1) begin
        mem[i] = {2'b01, d[1:0]};
    end
end
endmodule
""")


def test_expressions_roundtrip():
    _roundtrip("""
module top_module (input [7:0] a, input [7:0] b, output [7:0] o);
assign o = ((a + b) * 8'd2) ^ {4{a[0]}} | (a < b ? a >> 1 : b <<< 2)
           & ~(a % (b + 8'd1)) ^ (^a ? 8'd255 : -b);
endmodule
""")


def test_testbench_constructs_roundtrip():
    _roundtrip("""
module tb;
    reg clk;
    integer f;
    always #5 clk = ~clk;
    initial begin
        f = $fopen("x.txt");
        clk = 0;
        repeat (3) @(posedge clk);
        #1;
        $fdisplay(f, "v=%d t=%d", clk, $time);
        while (clk !== 1'b1) #1;
        forever begin
            $finish;
        end
    end
endmodule
""")
