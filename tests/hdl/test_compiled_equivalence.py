"""Golden equivalence: the compiled engine must match the interpreter.

Every fixture (a corpus covering the supported statement/expression
surface) plus every benchmark problem's golden RTL + rendered driver is
run through both execution engines; the observable outcome — stdout,
emitted files, final simulation time, finish flag and the final value of
every signal and memory word — must be identical.
"""

import pytest

from repro.codegen import render_driver
from repro.hdl import simulate
from repro.hdl.compile import clear_program_cache, program_cache_stats
from repro.problems import load_dataset

MAX_TIME = 2_000_000
MAX_STMTS = 4_000_000


def snapshot(result):
    design = result.design
    return {
        "finished": result.finished,
        "sim_time": result.sim_time,
        "stdout": list(result.stdout),
        "files": {name: list(lines) for name, lines in result.files.items()},
        "signals": {name: sig.value.bits()
                    for name, sig in design.signals.items()},
        "memories": {name: [word.bits() for word in mem.words]
                     for name, mem in design.memories.items()},
    }


def engine_snapshots(src, top="tb", seed=0):
    """The interpreter, fresh-compiled, and shared-program-rebound runs.

    The second compiled run elaborates the same (parse-cached) AST
    afresh, so its processes hit the shared slot-program cache and only
    *rebind* — the path every production re-pairing of a driver with a
    new DUT takes — and must behave identically to the first compile.
    """
    interp = snapshot(simulate(src, top, max_time=MAX_TIME,
                               max_stmts=MAX_STMTS, seed=seed,
                               engine="interpret"))
    clear_program_cache()
    compiled = snapshot(simulate(src, top, max_time=MAX_TIME,
                                 max_stmts=MAX_STMTS, seed=seed,
                                 engine="compiled"))
    before = program_cache_stats()
    rebound = snapshot(simulate(src, top, max_time=MAX_TIME,
                                max_stmts=MAX_STMTS, seed=seed,
                                engine="compiled"))
    after = program_cache_stats()
    assert after["programs_shared"] > before["programs_shared"], \
        "rebound run did not exercise the shared-program cache"
    return interp, compiled, rebound


def both_engines(src, top="tb", seed=0):
    interp, compiled, rebound = engine_snapshots(src, top, seed)
    assert compiled == rebound, "fresh-compile vs shared-rebind divergence"
    return interp, compiled


# ----------------------------------------------------------------------
# Feature corpus
# ----------------------------------------------------------------------
CORPUS = {
    "blocking_and_ops": """
module tb;
    reg [7:0] a, b, c;
    reg signed [7:0] s;
    initial begin
        a = 8'd200; b = 8'd100;
        c = a + b;           $display("add=%d", c);
        c = a - b;           $display("sub=%d", c);
        c = a * b;           $display("mul=%d", c);
        c = a / 8'd7;        $display("div=%d", c);
        c = a % 8'd7;        $display("mod=%d", c);
        c = a & b;           $display("and=%b", c);
        c = a | b;           $display("or=%b", c);
        c = a ^ b;           $display("xor=%b", c);
        c = ~a;              $display("not=%b", c);
        s = -8'sd5;          $display("neg=%d", s);
        s = s >>> 1;         $display("ashr=%d", s);
        c = a << 2;          $display("shl=%b", c);
        c = a >> 2;          $display("shr=%b", c);
        $display("eq=%b ne=%b lt=%b le=%b gt=%b ge=%b",
                 a == b, a != b, a < b, a <= b, a > b, a >= b);
        $display("land=%b lor=%b lnot=%b", a && 0, a || 0, !a);
        $display("red=%b%b%b%b%b%b", &a, ~&a, |a, ~|a, ^a, ~^a);
        $display("tern=%d", (a > b) ? a : b);
        $display("pow=%d", 2 ** 6);
        $finish;
    end
endmodule
""",
    "nonblocking_and_events": """
module tb;
    reg clk;
    reg [3:0] q, r;
    always #5 clk = ~clk;
    always @(posedge clk) begin
        q <= q + 4'd1;
        r <= q;
    end
    initial begin
        clk = 0; q = 0; r = 0;
        repeat (6) @(posedge clk);
        #1 $display("q=%d r=%d", q, r);
        @(negedge clk);
        $display("neg t=%0d", $time);
        $finish;
    end
endmodule
""",
    "case_variants": """
module tb;
    reg [2:0] sel;
    reg [7:0] out;
    integer i;
    always @(*) begin
        case (sel)
            3'd0: out = 8'hAA;
            3'd1, 3'd2: out = 8'hBB;
            default: out = 8'hCC;
        endcase
    end
    initial begin
        for (i = 0; i < 5; i = i + 1) begin
            sel = i[2:0];
            #1 $display("sel=%d out=%h", sel, out);
        end
        casez (8'b1010_0011)
            8'b1010_???1: $display("casez hit");
            default: $display("casez miss");
        endcase
        casex (8'b10x0_0011)
            8'b10x0_xx11: $display("casex hit");
            default: $display("casex miss");
        endcase
        $finish;
    end
endmodule
""",
    "loops": """
module tb;
    integer i, total;
    reg [7:0] count;
    initial begin
        total = 0;
        for (i = 0; i < 10; i = i + 1) total = total + i;
        $display("for=%d", total);
        count = 0;
        while (count < 8'd20) count = count + 8'd3;
        $display("while=%d", count);
        total = 0;
        repeat (7) total = total + 2;
        $display("repeat=%d", total);
        $finish;
    end
endmodule
""",
    "forever_clock_gen": """
module tb;
    reg clk;
    integer edges;
    initial begin
        clk = 0;
        forever #7 clk = ~clk;
    end
    always @(posedge clk) edges = edges + 1;
    initial begin
        edges = 0;
        #100 $display("edges=%0d t=%0t", edges, $time);
        $finish;
    end
endmodule
""",
    "concat_replicate_parts": """
module tb;
    reg [7:0] a;
    reg [15:0] w;
    reg [3:0] hi, lo;
    reg [1:0] x2;
    initial begin
        a = 8'b1100_0101;
        w = {a, ~a};                 $display("cat=%b", w);
        w = {4{4'b10_01}};           $display("rep=%b", w);
        {hi, lo} = a;                $display("hi=%b lo=%b", hi, lo);
        x2 = a[4:3];                 $display("part=%b", x2);
        a[0] = 1'b0; a[7] = 1'b0;    $display("bits=%b", a);
        w[11:4] = 8'hFF;             $display("wpart=%b", w);
        $display("bit3=%b", a[3]);
        $finish;
    end
endmodule
""",
    "memories": """
module tb;
    reg [7:0] mem [0:15];
    reg [3:0] addr;
    integer i;
    initial begin
        for (i = 0; i < 16; i = i + 1) mem[i] = i * 3;
        addr = 4'd5;
        $display("m5=%d mA=%d", mem[addr], mem[10]);
        mem[addr] = 8'hEE;
        $display("m5=%h", mem[5]);
        $finish;
    end
endmodule
""",
    "hierarchy_aliased": """
module child (input [3:0] a, input [3:0] b, output [4:0] s);
    assign s = a + b;
endmodule
module tb;
    reg [3:0] a, b;
    wire [4:0] s;
    child dut(.a(a), .b(b), .s(s));
    initial begin
        a = 4'd9; b = 4'd8;
        #1 $display("s=%d", s);
        a = 4'd15; b = 4'd15;
        #1 $display("s=%d", s);
        $finish;
    end
endmodule
""",
    "hierarchy_expression_bound": """
module inv (input [3:0] d, output reg [3:0] q);
    always @(*) q = ~d;
endmodule
module tb;
    reg [3:0] x;
    wire [3:0] y;
    inv dut(.d(x ^ 4'b0101), .q(y));
    initial begin
        x = 4'b0000;
        #1 $display("y=%b", y);
        x = 4'b1111;
        #1 $display("y=%b", y);
        $finish;
    end
endmodule
""",
    "parameters_and_clog2": """
module buf_p (d, q);
    parameter WIDTH = 4;
    parameter DEPTH = 10;
    localparam ABITS = $clog2(DEPTH);
    input [WIDTH-1:0] d;
    output [WIDTH-1:0] q;
    assign q = d;
endmodule
module tb;
    reg [7:0] d;
    wire [7:0] q;
    buf_p #(.WIDTH(8), .DEPTH(100)) dut(.d(d), .q(q));
    initial begin
        d = 8'h5A;
        #1 $display("q=%h clog2=%0d", q, $clog2(100));
        $finish;
    end
endmodule
""",
    "x_propagation": """
module tb;
    reg [3:0] u;  // never assigned: stays x
    reg [3:0] v;
    initial begin
        v = u + 4'd1;
        $display("add=%b", v);
        v = u & 4'b0000;
        $display("and0=%b", v);
        v = u | 4'b1111;
        $display("or1=%b", v);
        $display("eq=%b caseeq=%b", u == u, u === u);
        if (u) $display("taken"); else $display("else");
        $display("tern=%b", u[0] ? 4'b1100 : 4'b1010);
        $finish;
    end
endmodule
""",
    "system_tasks_and_files": """
module tb;
    integer fd;
    reg [31:0] r1, r2;
    initial begin
        fd = $fopen("out.txt");
        $fdisplay(fd, "line one %0d", 42);
        $fwrite(fd, "partial ");
        $fdisplay(fd, "done");
        r1 = $random;
        r2 = $random;
        $display("rands differ=%b", r1 != r2);
        $display("time=%0t", $time);
        #13 $display("time=%0t", $time);
        $display("pct=%d%%", 7);
        $display("char=%c", 8'h41);
        $display("str=%s", "hello");
        $fclose(fd);
        $finish;
    end
endmodule
""",
    "signed_semantics": """
module tb;
    reg signed [7:0] a, b;
    reg signed [15:0] wide;
    initial begin
        a = -8'sd100; b = 8'sd3;
        $display("div=%d mod=%d", a / b, a % b);
        $display("cmp=%b", a < b);
        wide = a;  // sign extension
        $display("ext=%d", wide);
        $display("us=%d", $unsigned(a));
        $display("s=%d", $signed(8'hFF));
        $finish;
    end
endmodule
""",
    "zero_delay_and_races": """
module tb;
    reg a, b;
    initial begin
        a = 0;
        #0 a = 1;
        b = a;
        $display("b=%b", b);
        $finish;
    end
endmodule
""",
    "finish_in_comb": """
module tb;
    reg go;
    always @(*) if (go) $finish;
    initial begin
        go = 0;
        #5 go = 1;
        #10 $display("unreachable");
    end
endmodule
""",
    "wire_init_continuous": """
module tb;
    reg [3:0] a;
    wire [3:0] doubled = a + a;
    initial begin
        a = 4'd3;
        #1 $display("d=%d", doubled);
        a = 4'd7;
        #1 $display("d=%d", doubled);
        $finish;
    end
endmodule
""",
    "always_sensitivity_list": """
module tb;
    reg [3:0] a, b;
    reg [4:0] s;
    always @(a or b) s = a + b;
    initial begin
        a = 1; b = 2;
        #1 $display("s=%d", s);
        b = 9;
        #1 $display("s=%d", s);
        $finish;
    end
endmodule
""",
    # Lazily-evaluated error paths: the bad case label sits after the
    # matching one and the bad ternary branch is never selected, so the
    # interpreter never evaluates them — the compiled engine must not
    # fail at compile time either.  (A loop forces eager compilation of
    # the initial body.)
    "lazy_error_paths": """
module tb;
    reg [3:0] y;
    integer i;
    initial begin
        for (i = 0; i < 2; i = i + 1) begin
            case (1'b1)
                1'b1: y = 4'd1;
                {0{1'b0}}: y = 4'd2;
            endcase
            y = (1'b1) ? y + 4'd1 : {0{1'b0}};
        end
        $display("y=%d", y);
        $finish;
    end
endmodule
""",
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_fixture_equivalence(name):
    interp, compiled = both_engines(CORPUS[name])
    assert interp == compiled


def test_fixture_corpus_produces_output():
    # Meta-check: the corpus fixtures genuinely exercise the simulator
    # (a silently-empty fixture would make equivalence vacuous).
    for name, src in CORPUS.items():
        interp, _ = both_engines(src)
        assert interp["finished"], name
        if name != "finish_in_comb":
            assert interp["stdout"], name


def test_seed_threading_matches():
    src = CORPUS["system_tasks_and_files"]
    interp, compiled = both_engines(src, seed=1234)
    assert interp == compiled


# ----------------------------------------------------------------------
# Every benchmark problem's golden RTL through both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "task_id", [task.task_id for task in load_dataset()])
def test_problem_golden_equivalence(task_id):
    from repro.problems import get_task

    task = get_task(task_id)
    driver = render_driver(task, task.canonical_scenarios())
    merged = task.golden_rtl() + "\n" + driver
    interp, compiled = both_engines(merged)
    assert interp == compiled
    assert interp["finished"]
