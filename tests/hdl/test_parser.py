"""Unit tests for the Verilog parser and un-parser."""

import pytest

from repro.hdl import ast
from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.parser import parse_module, parse_source
from repro.hdl.unparse import unparse_module


class TestModuleHeaders:
    def test_ansi_ports(self):
        m = parse_module(
            "module m(input [3:0] a, output reg b, input wire c);\nendmodule")
        assert [p.name for p in m.ports] == ["a", "b", "c"]
        assert m.ports[0].direction == "input"
        assert m.ports[1].is_reg
        assert m.ports[2].direction == "input"

    def test_ansi_direction_carries_over(self):
        m = parse_module("module m(input a, b, output c);\nendmodule")
        assert [p.direction for p in m.ports] == ["input", "input", "output"]

    def test_non_ansi_ports(self):
        m = parse_module("""
            module m(a, b, y);
                input [1:0] a;
                input b;
                output reg y;
            endmodule""")
        assert [p.name for p in m.ports] == ["a", "b", "y"]
        assert m.ports[2].is_reg

    def test_non_ansi_missing_direction_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_module("module m(a);\nendmodule")

    def test_portless_module(self):
        m = parse_module("module tb;\nendmodule")
        assert m.ports == ()

    def test_signed_port(self):
        m = parse_module("module m(input signed [7:0] a);\nendmodule")
        assert m.ports[0].signed

    def test_two_modules(self):
        sf = parse_source("module a;\nendmodule\nmodule b;\nendmodule")
        assert [m.name for m in sf.modules] == ["a", "b"]
        assert sf.module("b").name == "b"

    def test_missing_endmodule(self):
        with pytest.raises(VerilogSyntaxError):
            parse_module("module m(input a);")


class TestDeclarations:
    def test_wire_decl(self):
        m = parse_module("module m;\nwire [7:0] a, b;\nendmodule")
        decl = m.items[0]
        assert isinstance(decl, ast.NetDecl)
        assert decl.names == ("a", "b")

    def test_reg_with_init(self):
        m = parse_module("module m;\nreg clk = 0;\nendmodule")
        decl = m.items[0]
        assert decl.inits[0] is not None

    def test_integer(self):
        m = parse_module("module m;\ninteger i;\nendmodule")
        assert m.items[0].kind == "integer"

    def test_memory_decl(self):
        m = parse_module("module m;\nreg [7:0] mem [0:15];\nendmodule")
        assert m.items[0].array is not None

    def test_memory_multiple_names_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_module("module m;\nreg [7:0] a [0:3], b;\nendmodule")

    def test_parameters(self):
        m = parse_module(
            "module m;\nparameter W = 8;\nlocalparam A = 1, B = 2;\nendmodule")
        params = [i for i in m.items if isinstance(i, ast.ParamDecl)]
        assert [p.name for p in params] == ["W", "A", "B"]
        assert not params[0].local
        assert params[1].local


class TestExpressions:
    def parse_expr(self, text):
        m = parse_module(f"module m;\nassign x = {text};\nendmodule")
        return m.items[0].value

    def test_precedence_mul_over_add(self):
        e = self.parse_expr("a + b * c")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_precedence_and_over_or(self):
        e = self.parse_expr("a | b & c")
        assert e.op == "|"
        assert e.right.op == "&"

    def test_ternary_right_assoc(self):
        e = self.parse_expr("a ? b : c ? d : f")
        assert isinstance(e, ast.Ternary)
        assert isinstance(e.other, ast.Ternary)

    def test_unary_reduction(self):
        e = self.parse_expr("&a")
        assert isinstance(e, ast.Unary) and e.op == "&"

    def test_concat(self):
        e = self.parse_expr("{a, b, 2'b01}")
        assert isinstance(e, ast.Concat)
        assert len(e.parts) == 3

    def test_replication(self):
        e = self.parse_expr("{4{a}}")
        assert isinstance(e, ast.Replicate)

    def test_bit_select(self):
        e = self.parse_expr("a[3]")
        assert isinstance(e, ast.Index)

    def test_part_select(self):
        e = self.parse_expr("a[7:4]")
        assert isinstance(e, ast.PartSelect)

    def test_nested_parens(self):
        e = self.parse_expr("((a))")
        assert isinstance(e, ast.Identifier)

    def test_system_function(self):
        e = self.parse_expr("$signed(a)")
        assert isinstance(e, ast.SystemCall)
        assert e.name == "$signed"

    def test_comparison_chain(self):
        e = self.parse_expr("a == b")
        assert e.op == "=="

    def test_shift_ops(self):
        assert self.parse_expr("a >>> 2").op == ">>>"
        assert self.parse_expr("a << 2").op == "<<"


class TestStatements:
    def parse_stmt(self, text):
        m = parse_module(
            f"module m;\nalways @(posedge clk) {text}\nendmodule")
        return m.items[0].body

    def test_nonblocking(self):
        s = self.parse_stmt("q <= d;")
        assert isinstance(s, ast.NonblockingAssign)

    def test_blocking(self):
        s = self.parse_stmt("q = d;")
        assert isinstance(s, ast.BlockingAssign)

    def test_if_else_chain(self):
        s = self.parse_stmt(
            "begin if (a) q <= 0; else if (b) q <= 1; else q <= 2; end")
        inner = s.stmts[0]
        assert isinstance(inner, ast.If)
        assert isinstance(inner.other, ast.If)

    def test_case_with_default(self):
        s = self.parse_stmt("""
            case (sel)
                2'd0: q <= a;
                2'd1, 2'd2: q <= b;
                default: q <= 0;
            endcase""")
        assert isinstance(s, ast.Case)
        assert len(s.items) == 3
        assert len(s.items[1].labels) == 2
        assert s.items[2].labels == ()

    def test_casez(self):
        s = self.parse_stmt("casez (a) 4'b1???: q <= 1; endcase")
        assert s.kind == "casez"

    def test_unterminated_case(self):
        with pytest.raises(VerilogSyntaxError):
            self.parse_stmt("case (a) 1'b0: q <= 0;")

    def test_for_loop(self):
        s = self.parse_stmt("for (i = 0; i < 8; i = i + 1) q <= i;")
        assert isinstance(s, ast.For)

    def test_repeat_and_forever(self):
        assert isinstance(self.parse_stmt("repeat (3) q <= 0;"), ast.Repeat)
        assert isinstance(self.parse_stmt("forever #5 q = ~q;"), ast.Forever)

    def test_delay_statement(self):
        s = self.parse_stmt("#10 q <= 1;")
        assert isinstance(s, ast.DelayStmt)
        assert isinstance(s.stmt, ast.NonblockingAssign)

    def test_bare_delay(self):
        s = self.parse_stmt("#10;")
        assert isinstance(s, ast.DelayStmt)
        assert s.stmt is None

    def test_event_control_stmt(self):
        s = self.parse_stmt("begin @(negedge clk); q <= 1; end")
        assert isinstance(s.stmts[0], ast.EventControl)

    def test_system_task(self):
        s = self.parse_stmt('$display("x=%d", x);')
        assert isinstance(s, ast.SysTaskCall)
        assert s.name == "$display"

    def test_finish_without_parens(self):
        s = self.parse_stmt("$finish;")
        assert s.name == "$finish"

    def test_concat_lvalue(self):
        s = self.parse_stmt("{c, s} = a + b;")
        assert isinstance(s.target, ast.LvConcat)

    def test_part_select_lvalue(self):
        s = self.parse_stmt("q[3:0] <= d;")
        assert isinstance(s.target, ast.LvPart)

    def test_named_block(self):
        s = self.parse_stmt("begin : blk q <= 0; end")
        assert s.name == "blk"


class TestAlwaysVariants:
    def test_always_star(self):
        m = parse_module("module m;\nalways @(*) y = a;\nendmodule")
        assert m.items[0].events is None

    def test_always_star_no_parens(self):
        m = parse_module("module m;\nalways @* y = a;\nendmodule")
        assert m.items[0].events is None

    def test_sensitivity_list_or(self):
        m = parse_module(
            "module m;\nalways @(posedge clk or negedge rst) q <= 0;\nendmodule")
        events = m.items[0].events
        assert [e.edge for e in events] == ["pos", "neg"]

    def test_sensitivity_list_comma(self):
        m = parse_module(
            "module m;\nalways @(posedge clk, posedge rst) q <= 0;\nendmodule")
        assert len(m.items[0].events) == 2

    def test_free_running_always(self):
        m = parse_module("module m;\nalways #5 clk = ~clk;\nendmodule")
        assert m.items[0].events == ()


class TestInstances:
    def test_named_connections(self):
        m = parse_module(
            "module m;\ndut u0 (.a(x), .b(y[3:0]), .c());\nendmodule")
        inst = m.items[0]
        assert isinstance(inst, ast.Instance)
        assert inst.module == "dut"
        assert inst.connections[0][0] == "a"
        assert inst.connections[2][1] is None

    def test_positional_connections(self):
        m = parse_module("module m;\ndut u0 (x, y);\nendmodule")
        assert m.items[0].connections[0][0] is None

    def test_parameter_override(self):
        m = parse_module("module m;\ndut #(.W(8)) u0 (.a(x));\nendmodule")
        assert m.items[0].parameters[0][0] == "W"


class TestUnparseRoundTrip:
    SOURCES = [
        """module m(input [3:0] a, input [3:0] b, output [4:0] s);
            assign s = a + b;
        endmodule""",
        """module m(input clk, input rst, output reg [7:0] q);
            always @(posedge clk or posedge rst)
                if (rst) q <= 8'd0;
                else q <= q + 8'd1;
        endmodule""",
        """module m(input [2:0] sel, input [7:0] a, output reg [7:0] y);
            always @(*)
                case (sel)
                    3'd0: y = a;
                    3'd1: y = ~a;
                    default: y = 8'd0;
                endcase
        endmodule""",
        """module m(input [7:0] din, output reg [3:0] cnt);
            integer i;
            always @(*) begin
                cnt = 4'd0;
                for (i = 0; i < 8; i = i + 1)
                    cnt = cnt + din[i];
            end
        endmodule""",
        """module tb;
            reg clk = 0;
            wire [3:0] q;
            integer fd;
            dut u0 (.clk(clk), .q(q));
            always #5 clk = ~clk;
            initial begin
                fd = $fopen("x.txt");
                #10 $fdisplay(fd, "q=%d", q);
                $finish;
            end
        endmodule""",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_roundtrip_is_stable(self, source):
        first = unparse_module(parse_module(source))
        second = unparse_module(parse_module(first))
        assert first == second
