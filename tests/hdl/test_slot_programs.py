"""Scope-polymorphic shared programs: compile-once, bind-many semantics.

The acceptance bar for the slot-indexed compile layer: pairing one
driver with N distinct DUT designs performs **zero recompilations**
after the first — asserted here via the compile counters exposed by
:func:`repro.hdl.compile.program_cache_stats`.
"""

from repro.hdl import ast as hdl_ast
from repro.hdl.compile import (clear_program_cache, compile_spec,
                               program_cache_stats)
from repro.hdl.elaborate import elaborate
from repro.hdl.parser import parse_source_cached
from repro.hdl.simulator import Simulator

DRIVER = """
module tb;
    reg clk, reset;
    wire [7:0] q;
    integer i;
    top_module dut(.clk(clk), .reset(reset), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        reset = 1;
        @(posedge clk); #1;
        reset = 0;
        for (i = 0; i < 6; i = i + 1) begin
            @(posedge clk); #1;
            $display("i=%0d q=%d", i, q);
        end
        $finish;
    end
endmodule
"""

DUT_COUNT_UP = """
module top_module (input clk, input reset, output reg [7:0] q);
always @(posedge clk) begin
    if (reset) q <= 8'd0;
    else q <= q + 8'd1;
end
endmodule
"""

DUT_COUNT_BY_TWO = """
module top_module (input clk, input reset, output reg [7:0] q);
always @(posedge clk) begin
    if (reset) q <= 8'd0;
    else q <= q + 8'd2;
end
endmodule
"""

DUT_COUNT_DOWN = """
module top_module (input clk, input reset, output reg [7:0] q);
always @(posedge clk) begin
    if (reset) q <= 8'd200;
    else q <= q - 8'd1;
end
endmodule
"""


def _compiles_during(fn):
    before = program_cache_stats()["programs_compiled"]
    result = fn()
    return program_cache_stats()["programs_compiled"] - before, result


def _elaborate_pair(dut_src: str, driver_src: str):
    """Merge separately parse-cached ASTs, like core's ``_pair_template``
    does: the driver's module (and thus its statement objects) is the
    same across every DUT it is paired with."""
    dut_ast = parse_source_cached(dut_src)
    driver_ast = parse_source_cached(driver_src)
    merged = hdl_ast.SourceFile(tuple(dut_ast.modules)
                                + tuple(driver_ast.modules))
    return elaborate(merged, "tb")


def _compile_all(design) -> None:
    for spec in design.processes:
        compile_spec(spec)


class TestSameDesignReElaboration:
    def test_zero_recompiles_on_fresh_elaboration(self):
        clear_program_cache()
        design1 = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        first, _ = _compiles_during(lambda: _compile_all(design1))
        assert first > 0

        design2 = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        second, _ = _compiles_during(lambda: _compile_all(design2))
        assert second == 0, \
            f"re-elaboration recompiled {second} programs"

        # Binding is counted separately and must have happened.
        assert program_cache_stats()["specs_bound"] > 0

    def test_rebound_design_simulates_identically(self):
        clear_program_cache()
        design1 = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        design2 = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        result1 = Simulator(design1, engine="compiled").run()
        result2 = Simulator(design2, engine="compiled").run()
        assert result1.stdout == result2.stdout
        assert result1.stdout[-1] == "i=5 q=6"
        assert result1.sim_time == result2.sim_time


class TestCrossDesignDriverReuse:
    def test_driver_compiles_once_across_n_duts(self):
        """Pairing the driver with a new DUT compiles only DUT-module
        programs — never the driver's — and a DUT whose programs are
        already cached (from any elaboration) adds zero compiles."""
        clear_program_cache()
        # First pairing compiles driver + DUT A.
        design_a = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        first, _ = _compiles_during(lambda: _compile_all(design_a))
        assert first > 0

        for dut in (DUT_COUNT_BY_TWO, DUT_COUNT_DOWN):
            # Warm the new DUT's own programs via a standalone
            # elaboration of just its module...
            standalone = elaborate(parse_source_cached(dut), "top_module")
            _compile_all(standalone)
            # ...then pairing it with the driver must recompile nothing:
            # the driver's programs transfer by signature, the DUT's by
            # the standalone warm-up.
            paired = _elaborate_pair(dut, DRIVER)
            added, _ = _compiles_during(lambda: _compile_all(paired))
            assert added == 0, \
                f"pairing with a warm DUT recompiled {added} programs"

    def test_new_dut_only_costs_its_own_module(self):
        clear_program_cache()
        design_a = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        _compile_all(design_a)

        # A cold, distinct DUT: the pairing may compile that module's
        # processes (here: one always block) but nothing of the driver.
        dut_process_count = len(
            elaborate(parse_source_cached(DUT_COUNT_DOWN),
                      "top_module").processes)
        paired = _elaborate_pair(DUT_COUNT_DOWN, DRIVER)
        added, _ = _compiles_during(lambda: _compile_all(paired))
        assert added <= dut_process_count

    def test_shared_driver_behaves_per_dut(self):
        clear_program_cache()
        outputs = {}
        for label, dut in (("up", DUT_COUNT_UP),
                           ("two", DUT_COUNT_BY_TWO),
                           ("down", DUT_COUNT_DOWN)):
            design = _elaborate_pair(dut, DRIVER)
            outputs[label] = Simulator(design, engine="compiled").run().stdout[-1]
        assert outputs["up"] == "i=5 q=6"
        assert outputs["two"] == "i=5 q=12"
        assert outputs["down"] == "i=5 q=194"


class TestSignatureGuards:
    def test_width_change_blocks_sharing(self):
        """A DUT port-width change alters the structural signature, so
        the driver's programs must NOT transfer (they baked widths)."""
        wide_driver = DRIVER.replace("wire [7:0] q", "wire [15:0] q")
        clear_program_cache()
        design_narrow = _elaborate_pair(DUT_COUNT_UP, DRIVER)
        _compile_all(design_narrow)
        wide_dut = DUT_COUNT_UP.replace("[7:0]", "[15:0]")
        design_wide = _elaborate_pair(wide_dut, wide_driver)
        added, _ = _compiles_during(lambda: _compile_all(design_wide))
        assert added > 0

        # Both still simulate correctly despite sharing a module name.
        narrow = Simulator(_elaborate_pair(DUT_COUNT_UP, DRIVER),
                           engine="compiled").run()
        wide = Simulator(_elaborate_pair(wide_dut, wide_driver),
                         engine="compiled").run()
        assert narrow.stdout[-1] == "i=5 q=6"
        assert wide.stdout[-1] == "i=5 q=6"

    def test_parameter_override_blocks_sharing(self):
        """Same module AST, different parameter override: the constant
        facts differ, so each parameterisation compiles once."""
        src = """
module adder (input [3:0] a, output [3:0] y);
    parameter STEP = 1;
    assign y = a + STEP;
endmodule
module tb;
    reg [3:0] a;
    wire [3:0] y1, y2;
    adder #(.STEP(1)) u1(.a(a), .y(y1));
    adder #(.STEP(3)) u2(.a(a), .y(y2));
    initial begin
        a = 4'd5;
        #1 $display("y1=%d y2=%d", y1, y2);
        $finish;
    end
endmodule
"""
        clear_program_cache()
        design = elaborate(parse_source_cached(src), "tb")
        _compile_all(design)
        result = Simulator(design, engine="compiled").run()
        assert result.stdout == ["y1=6 y2=8"]
        # Re-elaboration still shares both parameterisations.
        added, _ = _compiles_during(lambda: _compile_all(
            elaborate(parse_source_cached(src), "tb")))
        assert added == 0
