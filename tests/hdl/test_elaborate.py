"""Elaboration: parameters, hierarchy, port binding, error reporting."""

import pytest

from repro.hdl import compile_design
from repro.hdl.errors import ElaborationError


def test_parameterised_width():
    design = compile_design(
        "module top_module #() (input [7:0] a, output [7:0] o);\n"
        "parameter W = 8;\n"
        "wire [W-1:0] mid;\n"
        "assign mid = a;\n"
        "assign o = mid;\n"
        "endmodule".replace("#() ", ""), "top_module")
    assert design.signal("mid").width == 8


def test_instance_hierarchy_names():
    src = """
module child (input a, output o);
assign o = ~a;
endmodule

module top_module (input a, output o);
child u1(.a(a), .o(o));
endmodule
"""
    design = compile_design(src, "top_module")
    assert "u1.a" in design.signals
    assert "u1.o" in design.signals


def test_positional_connections():
    src = """
module child (input a, output o);
assign o = a;
endmodule

module top_module (input x, output y);
child u1(x, y);
endmodule
"""
    compile_design(src, "top_module")


def test_mixed_connection_styles_rejected():
    src = """
module child (input a, output o);
assign o = a;
endmodule

module top_module (input x, output y);
child u1(x, .o(y));
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_unknown_port_rejected():
    src = """
module child (input a, output o);
assign o = a;
endmodule

module top_module (input x, output y);
child u1(.nope(x), .o(y));
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_duplicate_port_connection_rejected():
    src = """
module child (input a, output o);
assign o = a;
endmodule

module top_module (input x, output y);
child u1(.a(x), .a(x), .o(y));
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_recursive_instantiation_rejected():
    src = """
module top_module (input a, output o);
top_module u1(.a(a), .o(o));
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_port_width_redeclaration_must_match():
    src = """
module top_module (input a, output [3:0] q);
reg [7:0] q;
assign q = 4'd0;
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_duplicate_signal_rejected():
    src = """
module top_module (input a, output o);
wire w;
wire w;
assign o = a;
endmodule
"""
    with pytest.raises(ElaborationError):
        compile_design(src, "top_module")


def test_memory_declaration():
    src = """
module top_module (input a, output o);
reg [7:0] mem [15:0];
assign o = a;
endmodule
"""
    design = compile_design(src, "top_module")
    assert "mem" in design.memories
    assert design.memories["mem"].width == 8
    assert len(design.memories["mem"].words) == 16


def test_localparam_usable_in_ranges():
    src = """
module top_module (input a, output o);
localparam W = 4;
wire [W-1:0] bus;
assign o = a;
endmodule
"""
    design = compile_design(src, "top_module")
    assert design.signal("bus").width == 4
