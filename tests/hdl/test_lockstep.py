"""Lockstep mutant-schemata unions: build, demux, sweep, fallback.

Unit coverage for :mod:`repro.hdl.lockstep` and the
:func:`repro.core.simulation.run_mutant_sweep` facade: the union of a
driver and N DUT variants simulates once and demultiplexes into
per-lane results byte-identical to N separate runs; every
driver/DUT shape the union cannot express raises
:exc:`LockstepUnsupported` and falls back to the per-mutant path with a
recorded reason.  The randomized end of the same contract lives in the
differential fuzz battery (``test_diff_fuzz.py``).
"""

import pytest

from repro.codegen.driver import DUMP_FILE
from repro.core.caches import caches
from repro.core.simulation import (MUTANT_LOCKSTEP, MUTANT_PER_MUTANT,
                                   run_driver, run_mutant_sweep)
from repro.hdl import simulate, use_context
from repro.hdl.lockstep import (GROUP_DELIM, LANE_DELIM,
                                LockstepUnsupported, build_union,
                                demux_lines, lane_suffix)

DRIVER = """
module tb();
    reg clk;
    reg [3:0] a;
    reg [3:0] b;
    wire [3:0] y;
    integer file;
    integer scenario;
    top_module dut(.clk(clk), .a(a), .b(b), .y(y));
    always #5 clk = ~clk;
    initial begin
        file = $fopen("results.txt");
        clk = 0;
        scenario = 0;
        a = 1; b = 2;
        @(posedge clk); #1;
        scenario = scenario + 1;
        $fdisplay(file, "scenario: %d, a = %d, b = %d, y = %d",
                  scenario, a, b, y);
        a = 3; b = 7;
        @(posedge clk); #1;
        scenario = scenario + 1;
        $fdisplay(file, "scenario: %d, a = %d, b = %d, y = %d",
                  scenario, a, b, y);
        $finish;
    end
endmodule
"""

GOLDEN = """
module top_module(input clk, input [3:0] a, input [3:0] b,
                  output [3:0] y);
    assign y = a + b;
endmodule
"""

# 1^2 == 1+2 but 3^7 != 3+7: diverges at record index 1.
MUT_XOR = GOLDEN.replace("a + b", "a ^ b")
# 1&2 != 1+2: diverges at record index 0.
MUT_AND = GOLDEN.replace("a + b", "a & b")
# Behaviourally identical: never diverges.
MUT_SAME = GOLDEN.replace("a + b", "b + a")


def _dut(body: str) -> str:
    return GOLDEN.replace("assign y = a + b;", body)


# ----------------------------------------------------------------------
# Union build + demux
# ----------------------------------------------------------------------
class TestBuildUnion:
    def test_union_matches_separate_runs(self):
        lanes = [GOLDEN, MUT_XOR, MUT_AND]
        union = build_union(DRIVER, lanes)
        result = simulate_union(union)
        per_lane = demux_lines(result.files[DUMP_FILE], len(lanes))
        for src, lines in zip(lanes, per_lane):
            reference = run_driver(DRIVER, src)
            assert reference.ok
            # Byte-identical dump lines, hence identical records.
            assert lines == reference_dump_lines(DRIVER, src)

    def test_lane_modules_renamed(self):
        union = build_union(DRIVER, [GOLDEN, MUT_XOR])
        names = {module.name for module in union.modules}
        assert "top_module" + lane_suffix(0) in names
        assert "top_module" + lane_suffix(1) in names
        assert "tb" in names
        assert "top_module" not in names

    @pytest.mark.parametrize("driver, reason", [
        (DRIVER.replace("$finish;",
                        '$display("y=%d", y); $finish;'),
         "$display"),
        (DRIVER.replace("$finish;", "if (y > 2) a = 0; $finish;"),
         "if condition"),
        (DRIVER.replace("$finish;", "a = y; $finish;"),
         "assignment"),
        (DRIVER.replace("$finish;", "@(posedge y[0]); $finish;"),
         "event control"),
        (DRIVER.replace("wire [3:0] y;",
                        "wire [3:0] y;\n    wire z;\n"
                        "    assign z = y[0];"),
         "continuous assign"),
        (DRIVER.replace("wire [3:0] y;",
                        "wire [3:0] y;\n    wire z = y[0];"),
         "net initializer"),
        (DRIVER.replace('"scenario: %d, a = %d, b = %d, y = %d"',
                        '"scenario: %d, a = %d, b = %d, y = %c"'),
         "%c"),
        (DRIVER.replace(".clk(clk), .a(a), .b(b), .y(y)",
                        "clk, a, b, y"),
         "positional"),
        (DRIVER.replace("top_module dut(.clk(clk), .a(a), .b(b), .y(y));",
                        "top_module dut(.clk(clk), .a(a), .b(b), .y(y));\n"
                        "    wire [3:0] y2;\n"
                        "    top_module dut2(.clk(clk), .a(a), .b(b),"
                        " .y(y2));"),
         "2 times"),
    ])
    def test_unsupported_driver_shapes(self, driver, reason):
        with pytest.raises(LockstepUnsupported, match=None) as excinfo:
            build_union(driver, [GOLDEN, MUT_XOR])
        assert reason.lower() in str(excinfo.value).lower()

    def test_random_in_lane_rejected(self):
        lane = _dut("reg [3:0] r;\n"
                    "    always @(posedge clk) r <= $random;\n"
                    "    assign y = r;")
        with pytest.raises(LockstepUnsupported, match="random"):
            build_union(DRIVER, [GOLDEN, lane])

    def test_interface_mismatch_rejected(self):
        lane = GOLDEN.replace("input [3:0] b,", "input [3:0] c,")
        with pytest.raises(LockstepUnsupported, match="interface"):
            build_union(DRIVER, [GOLDEN, lane])

    def test_missing_dut_module_rejected(self):
        lane = GOLDEN.replace("top_module", "other_module")
        with pytest.raises(LockstepUnsupported, match="no module"):
            build_union(DRIVER, [GOLDEN, lane])

    def test_no_lanes_rejected(self):
        with pytest.raises(LockstepUnsupported, match="no lanes"):
            build_union(DRIVER, [])


class TestDemuxLines:
    def test_groups_split_per_lane(self):
        line = (f"scenario: 1, y = {GROUP_DELIM} 3{LANE_DELIM} 9"
                f"{GROUP_DELIM}, tail")
        lanes = demux_lines([line], 2)
        assert lanes == [["scenario: 1, y =  3, tail"],
                         ["scenario: 1, y =  9, tail"]]

    def test_group_free_lines_replicate(self):
        lanes = demux_lines(["shared banner"], 3)
        assert lanes == [["shared banner"]] * 3


# ----------------------------------------------------------------------
# run_mutant_sweep
# ----------------------------------------------------------------------
class TestRunMutantSweep:
    def test_engines_agree(self):
        mutants = [MUT_XOR, MUT_AND, MUT_SAME]
        lockstep = run_mutant_sweep(DRIVER, mutants, golden_src=GOLDEN,
                                    mutant_engine=MUTANT_LOCKSTEP)
        per_mutant = run_mutant_sweep(DRIVER, mutants, golden_src=GOLDEN,
                                      mutant_engine=MUTANT_PER_MUTANT)
        assert lockstep.engine == MUTANT_LOCKSTEP
        assert not lockstep.fallback_reason
        assert per_mutant.engine == MUTANT_PER_MUTANT
        for ls_run, pm_run in zip(lockstep.runs, per_mutant.runs):
            assert ls_run.status == pm_run.status
            assert ls_run.records == pm_run.records
        assert lockstep.golden.records == per_mutant.golden.records
        assert lockstep.retire_rounds == per_mutant.retire_rounds

    def test_retire_rounds(self):
        sweep = run_mutant_sweep(DRIVER, [MUT_XOR, MUT_AND, MUT_SAME],
                                 golden_src=GOLDEN)
        assert sweep.retire_rounds == [1, 0, None]

    def test_duplicate_lanes_share_one_simulation(self):
        sweep = run_mutant_sweep(DRIVER, [MUT_XOR, MUT_XOR, GOLDEN],
                                 golden_src=GOLDEN,
                                 mutant_engine=MUTANT_LOCKSTEP)
        assert sweep.engine == MUTANT_LOCKSTEP
        assert sweep.runs[0].records == sweep.runs[1].records
        assert sweep.runs[2].records == sweep.golden.records
        assert sweep.retire_rounds == [1, 1, None]

    def test_fallback_on_unsupported_driver(self):
        driver = DRIVER.replace("$finish;",
                                '$display("done"); $finish;')
        sweep = run_mutant_sweep(driver, [MUT_XOR], golden_src=GOLDEN,
                                 mutant_engine=MUTANT_LOCKSTEP)
        assert sweep.engine == MUTANT_PER_MUTANT
        assert "LockstepUnsupported" in sweep.fallback_reason
        assert "$display" in sweep.fallback_reason
        assert sweep.runs[0].ok
        assert sweep.retire_rounds == [1]

    def test_fallback_reason_empty_when_requested(self):
        sweep = run_mutant_sweep(DRIVER, [MUT_XOR],
                                 mutant_engine=MUTANT_PER_MUTANT)
        assert sweep.engine == MUTANT_PER_MUTANT
        assert not sweep.fallback_reason

    def test_context_knob_steers_engine(self):
        with use_context(mutant_engine=MUTANT_PER_MUTANT):
            sweep = run_mutant_sweep(DRIVER, [MUT_XOR])
        assert sweep.engine == MUTANT_PER_MUTANT
        # The explicit argument beats the active context.
        with use_context(mutant_engine=MUTANT_PER_MUTANT):
            sweep = run_mutant_sweep(DRIVER, [MUT_XOR],
                                     mutant_engine=MUTANT_LOCKSTEP)
        assert sweep.engine == MUTANT_LOCKSTEP

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="mutant_engine"):
            run_mutant_sweep(DRIVER, [MUT_XOR], mutant_engine="schemata")

    def test_monolithic_always_per_mutant(self):
        tb = """
module tb();
    reg [3:0] a;
    reg [3:0] b;
    wire [3:0] y;
    top_module dut(.clk(1'b0), .a(a), .b(b), .y(y));
    initial begin
        a = 3; b = 7; #1;
        if (y == 10) $display("ALL_TESTS_PASSED");
        else $display("TESTS_FAILED");
        $finish;
    end
endmodule
"""
        sweep = run_mutant_sweep(tb, [GOLDEN, MUT_XOR],
                                 kind="monolithic",
                                 mutant_engine=MUTANT_LOCKSTEP)
        assert sweep.engine == MUTANT_PER_MUTANT
        assert "stdout" in sweep.fallback_reason
        assert [run.verdict for run in sweep.runs] == [True, False]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            run_mutant_sweep(DRIVER, [MUT_XOR], kind="cosim")

    def test_empty_sweep(self):
        sweep = run_mutant_sweep(DRIVER, [], golden_src=GOLDEN)
        assert sweep.runs == []
        assert sweep.retire_rounds == []
        assert sweep.golden.ok

    def test_union_template_cached(self):
        mutants = [MUT_XOR, MUT_AND]
        run_mutant_sweep(DRIVER, mutants, golden_src=GOLDEN,
                         mutant_engine=MUTANT_LOCKSTEP)
        before = caches.stats()["union"]
        run_mutant_sweep(DRIVER, mutants, golden_src=GOLDEN,
                         mutant_engine=MUTANT_LOCKSTEP)
        after = caches.stats()["union"]
        assert after["hits"] > before["hits"]

    def test_syntax_broken_mutant_falls_back(self):
        broken = GOLDEN.replace("endmodule", "")
        sweep = run_mutant_sweep(DRIVER, [MUT_XOR, broken],
                                 golden_src=GOLDEN,
                                 mutant_engine=MUTANT_LOCKSTEP)
        assert sweep.engine == MUTANT_PER_MUTANT
        assert sweep.fallback_reason
        assert sweep.runs[0].ok
        assert not sweep.runs[1].ok
        assert sweep.retire_rounds == [1, None]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def simulate_union(union):
    from repro.hdl.elaborate import elaborate
    from repro.hdl.simulator import Simulator
    result = Simulator(elaborate(union, "tb"), max_stmts=4_000_000).run()
    assert result.finished
    return result


def reference_dump_lines(driver_src, dut_src):
    from repro.hdl import ast as hdl_ast
    from repro.hdl.elaborate import elaborate
    from repro.hdl.parser import parse_source_cached
    from repro.hdl.simulator import Simulator
    driver = parse_source_cached(driver_src)
    dut = parse_source_cached(dut_src)
    source = hdl_ast.SourceFile(tuple(dut.modules) + tuple(driver.modules))
    result = Simulator(elaborate(source, "tb"), max_stmts=1_000_000).run()
    assert result.finished
    return result.files[DUMP_FILE]
