"""Property-based tests: Logic arithmetic vs Python integer semantics.

For fully-defined vectors, every Logic operator must agree with the
corresponding modular integer computation; with any x input, the
x-propagating operators must return fully-unknown results.
"""

from hypothesis import given, strategies as st

from repro.hdl import Logic

WIDTHS = st.integers(min_value=1, max_value=64)


@st.composite
def vec_pair(draw):
    width = draw(WIDTHS)
    a = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return width, a, b


class TestArithmeticAgreesWithInts:
    @given(vec_pair())
    def test_add(self, pair):
        width, a, b = pair
        result = Logic.from_int(a, width).add(Logic.from_int(b, width))
        assert result.to_uint() == (a + b) % (1 << width)

    @given(vec_pair())
    def test_sub(self, pair):
        width, a, b = pair
        result = Logic.from_int(a, width).sub(Logic.from_int(b, width))
        assert result.to_uint() == (a - b) % (1 << width)

    @given(vec_pair())
    def test_mul(self, pair):
        width, a, b = pair
        result = Logic.from_int(a, width).mul(Logic.from_int(b, width))
        assert result.to_uint() == (a * b) % (1 << width)

    @given(vec_pair())
    def test_bitwise(self, pair):
        width, a, b = pair
        va, vb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert va.band(vb).to_uint() == a & b
        assert va.bor(vb).to_uint() == a | b
        assert va.bxor(vb).to_uint() == a ^ b

    @given(vec_pair())
    def test_comparisons(self, pair):
        width, a, b = pair
        va, vb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert va.lt(vb).to_uint() == int(a < b)
        assert va.le(vb).to_uint() == int(a <= b)
        assert va.eq(vb).to_uint() == int(a == b)

    @given(vec_pair(), st.integers(min_value=0, max_value=70))
    def test_shifts(self, pair, amount):
        width, a, _ = pair
        value = Logic.from_int(a, width)
        amt = Logic.from_int(amount, 8)
        assert value.shl(amt).to_uint() == (a << amount) % (1 << width)
        assert value.shr(amt).to_uint() == a >> amount

    @given(vec_pair())
    def test_division_nonzero(self, pair):
        width, a, b = pair
        if b == 0:
            return
        va, vb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert va.div(vb).to_uint() == a // b
        assert va.mod(vb).to_uint() == a % b


class TestStructure:
    @given(vec_pair())
    def test_concat_width_and_value(self, pair):
        width, a, b = pair
        joined = Logic.concat([Logic.from_int(a, width),
                               Logic.from_int(b, width)])
        assert joined.width == 2 * width
        assert joined.to_uint() == (a << width) | b

    @given(WIDTHS, st.integers(min_value=1, max_value=6))
    def test_replicate(self, width, count):
        ones = Logic.ones(width)
        assert ones.replicate(count).to_uint() == (1 << (width * count)) - 1

    @given(vec_pair())
    def test_part_select_recombines(self, pair):
        width, a, _ = pair
        if width < 2:
            return
        value = Logic.from_int(a, width)
        mid = width // 2
        hi = value.part(width - 1, mid)
        lo = value.part(mid - 1, 0)
        assert Logic.concat([hi, lo]).to_uint() == a

    @given(vec_pair())
    def test_resize_roundtrip(self, pair):
        width, a, _ = pair
        value = Logic.from_int(a, width)
        widened = value.resize(width + 8)
        assert widened.to_uint() == a
        assert widened.resize(width).to_uint() == a

    @given(vec_pair())
    def test_signed_resize_preserves_value(self, pair):
        width, a, _ = pair
        value = Logic.from_int(a, width)
        signed_val = value.to_int(signed=True)
        assert value.resize(width + 8, signed=True).to_int(
            signed=True) == signed_val


class TestXPropagation:
    @given(WIDTHS)
    def test_arith_with_x_is_fully_unknown(self, width):
        unknown = Logic.unknown(width)
        defined = Logic.from_int(1, width)
        assert unknown.add(defined).to_uint() is None
        assert unknown.sub(defined).to_uint() is None
        assert defined.mul(unknown).to_uint() is None

    @given(WIDTHS)
    def test_and_with_zero_is_zero_despite_x(self, width):
        # 0 & x == 0 — the per-bit rule, not pessimistic.
        result = Logic.zeros(width).band(Logic.unknown(width))
        assert result.to_uint() == 0

    @given(WIDTHS)
    def test_or_with_ones_is_ones_despite_x(self, width):
        result = Logic.ones(width).bor(Logic.unknown(width))
        assert result.to_uint() == (1 << width) - 1

    @given(vec_pair())
    def test_case_equality_defined_on_x(self, pair):
        width, a, _ = pair
        unknown = Logic.unknown(width)
        assert unknown.case_eq(unknown).to_uint() == 1
        value = Logic.from_int(a, width)
        assert value.case_eq(value).to_uint() == 1

    @given(WIDTHS)
    def test_bits_roundtrip(self, width):
        unknown = Logic.unknown(width)
        assert Logic.from_bits(unknown.bits()) == unknown
