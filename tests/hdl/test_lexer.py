"""Unit tests for the Verilog lexer."""

import pytest

from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.lexer import tokenize
from repro.hdl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        tok = tokenize("my_signal_1")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "my_signal_1"

    def test_identifier_with_dollar(self):
        assert tokenize("abc$q")[0].text == "abc$q"

    def test_keywords(self):
        assert tokenize("module")[0].kind is TokenKind.KEYWORD
        assert tokenize("endmodule")[0].kind is TokenKind.KEYWORD
        assert tokenize("posedge")[0].kind is TokenKind.KEYWORD

    def test_system_ident(self):
        tok = tokenize("$fdisplay")[0]
        assert tok.kind is TokenKind.SYSTEM_IDENT
        assert tok.text == "$fdisplay"

    def test_system_ident_without_name_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("$ 1")

    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].column == 3


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("a /* never ends")

    def test_directive_skipped(self):
        assert texts("`timescale 1ns/1ps\na") == ["a"]


class TestNumbers:
    def value(self, source):
        return tokenize(source)[0].value

    def test_unsized_decimal(self):
        width, val, xmask, signed = self.value("42")
        assert (width, val, xmask, signed) == (None, 42, 0, True)

    def test_sized_binary(self):
        assert self.value("4'b1010") == (4, 0b1010, 0, False)

    def test_sized_hex(self):
        assert self.value("8'hFF") == (8, 0xFF, 0, False)

    def test_sized_decimal(self):
        assert self.value("10'd512") == (10, 512, 0, False)

    def test_octal(self):
        assert self.value("6'o17") == (6, 0o17, 0, False)

    def test_signed_literal(self):
        assert self.value("4'sb1000") == (4, 0b1000, 0, True)

    def test_x_digits(self):
        width, val, xmask, signed = self.value("4'b1x0z")
        assert width == 4
        assert val == 0b1000
        assert xmask == 0b0101

    def test_hex_x_digit(self):
        width, val, xmask, signed = self.value("8'hAx")
        assert val == 0xA0
        assert xmask == 0x0F

    def test_question_mark_digit(self):
        width, val, xmask, signed = self.value("2'b1?")
        assert xmask == 0b01

    def test_underscores(self):
        assert self.value("8'b1010_0101") == (8, 0xA5, 0, False)

    def test_unbased_width_defaults_32(self):
        width, val, _, _ = self.value("'h10")
        assert width == 32
        assert val == 16

    def test_bad_base_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("4'q1010")

    def test_empty_digits_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("4'b;")

    def test_zero_width_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("0'b0")


class TestStrings:
    def test_simple_string(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\"d"')[0].value == 'a\nb\tc"d'

    def test_unterminated(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize('"never ends')

    def test_newline_in_string_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize('"line\nbreak"')


class TestPunctuation:
    def test_multi_char_greedy(self):
        assert texts("a <<< b") == ["a", "<<<", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a === b") == ["a", "===", "b"]

    def test_nonblocking_vs_relational_same_token(self):
        # The parser disambiguates; the lexer emits '<=' for both.
        assert texts("q <= d")[1] == "<="

    def test_unexpected_character(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize("a \\ b")

    def test_full_statement(self):
        src = "assign out = (a & b) | ~c;"
        assert texts(src) == ["assign", "out", "=", "(", "a", "&", "b", ")",
                              "|", "~", "c", ";"]
