"""Unit tests for the Verilog lexer.

Every test runs against both implementations (the master-regex
tokenizer and the character-at-a-time reference) via the ``tokenize``
fixture; cross-implementation equivalence at scale lives in
``test_lexer_diff_fuzz.py``.
"""

import pytest

from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.lexer import LEXERS
from repro.hdl.lexer import tokenize as lexer_tokenize
from repro.hdl.tokens import TokenKind


@pytest.fixture(params=LEXERS)
def tokenize(request):
    def run(source):
        return lexer_tokenize(source, request.param)
    return run


@pytest.fixture
def kinds(tokenize):
    def run(source):
        return [t.kind for t in tokenize(source)[:-1]]
    return run


@pytest.fixture
def texts(tokenize):
    def run(source):
        return [t.text for t in tokenize(source)[:-1]]
    return run


class TestBasics:
    def test_empty_source_yields_eof(self, tokenize):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self, tokenize):
        tok = tokenize("my_signal_1")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "my_signal_1"

    def test_identifier_with_dollar(self, tokenize):
        assert tokenize("abc$q")[0].text == "abc$q"

    def test_keywords(self, tokenize):
        assert tokenize("module")[0].kind is TokenKind.KEYWORD
        assert tokenize("endmodule")[0].kind is TokenKind.KEYWORD
        assert tokenize("posedge")[0].kind is TokenKind.KEYWORD

    def test_system_ident(self, tokenize):
        tok = tokenize("$fdisplay")[0]
        assert tok.kind is TokenKind.SYSTEM_IDENT
        assert tok.text == "$fdisplay"

    def test_system_ident_without_name_rejected(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("$ 1")

    def test_line_tracking(self, tokenize):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].column == 3


class TestComments:
    def test_line_comment(self, texts):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self, texts):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("a /* never ends")

    def test_directive_skipped(self, texts):
        assert texts("`timescale 1ns/1ps\na") == ["a"]


class TestNumbers:
    def value(self, tokenize, source):
        return tokenize(source)[0].value

    def test_unsized_decimal(self, tokenize):
        width, val, xmask, signed = self.value(tokenize, "42")
        assert (width, val, xmask, signed) == (None, 42, 0, True)

    def test_sized_binary(self, tokenize):
        assert self.value(tokenize, "4'b1010") == (4, 0b1010, 0, False)

    def test_sized_hex(self, tokenize):
        assert self.value(tokenize, "8'hFF") == (8, 0xFF, 0, False)

    def test_sized_decimal(self, tokenize):
        assert self.value(tokenize, "10'd512") == (10, 512, 0, False)

    def test_octal(self, tokenize):
        assert self.value(tokenize, "6'o17") == (6, 0o17, 0, False)

    def test_signed_literal(self, tokenize):
        assert self.value(tokenize, "4'sb1000") == (4, 0b1000, 0, True)

    def test_x_digits(self, tokenize):
        width, val, xmask, signed = self.value(tokenize, "4'b1x0z")
        assert width == 4
        assert val == 0b1000
        assert xmask == 0b0101

    def test_hex_x_digit(self, tokenize):
        width, val, xmask, signed = self.value(tokenize, "8'hAx")
        assert val == 0xA0
        assert xmask == 0x0F

    def test_question_mark_digit(self, tokenize):
        width, val, xmask, signed = self.value(tokenize, "2'b1?")
        assert xmask == 0b01

    def test_underscores(self, tokenize):
        assert self.value(tokenize, "8'b1010_0101") == (8, 0xA5, 0, False)

    def test_unbased_width_defaults_32(self, tokenize):
        width, val, _, _ = self.value(tokenize, "'h10")
        assert width == 32
        assert val == 16

    def test_bad_base_rejected(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("4'q1010")

    def test_empty_digits_rejected(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("4'b;")

    def test_zero_width_rejected(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("0'b0")


class TestStrings:
    def test_simple_string(self, tokenize):
        tok = tokenize('"hello"')[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_escapes(self, tokenize):
        assert tokenize(r'"a\nb\tc\"d"')[0].value == 'a\nb\tc"d'

    def test_unterminated(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize('"never ends')

    def test_newline_in_string_rejected(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize('"line\nbreak"')


class TestPunctuation:
    def test_multi_char_greedy(self, texts):
        assert texts("a <<< b") == ["a", "<<<", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a === b") == ["a", "===", "b"]

    def test_nonblocking_vs_relational_same_token(self, texts):
        # The parser disambiguates; the lexer emits '<=' for both.
        assert texts("q <= d")[1] == "<="

    def test_unexpected_character(self, tokenize):
        with pytest.raises(VerilogSyntaxError):
            tokenize("a \\ b")

    def test_full_statement(self, texts):
        src = "assign out = (a & b) | ~c;"
        assert texts(src) == ["assign", "out", "=", "(", "a", "&", "b", ")",
                              "|", "~", "c", ";"]
