"""Unit tests for the 4-state logic value model."""

import pytest

from repro.hdl.logic import Logic, LogicError, logic_equal_defined


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Logic.from_int(0x1F, 4).val == 0xF

    def test_from_int_is_defined(self):
        assert Logic.from_int(5, 4).is_defined

    def test_unknown_has_all_x(self):
        v = Logic.unknown(4)
        assert v.xmask == 0xF
        assert v.to_uint() is None

    def test_zero_width_rejected(self):
        with pytest.raises(LogicError):
            Logic(0)

    def test_canonical_val_under_xmask(self):
        v = Logic(4, 0b1111, 0b0011)
        assert v.val == 0b1100

    def test_from_bits_roundtrip(self):
        assert Logic.from_bits("10x1").bits() == "10x1"

    def test_from_bits_z_folds_to_x(self):
        assert Logic.from_bits("1z0").bits() == "1x0"

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(LogicError):
            Logic.from_bits("10q")

    def test_from_bits_rejects_empty(self):
        with pytest.raises(LogicError):
            Logic.from_bits("")


class TestIntConversion:
    def test_to_int_unsigned(self):
        assert Logic.from_int(0xFE, 8).to_int() == 254

    def test_to_int_signed(self):
        assert Logic.from_int(0xFE, 8).to_int(signed=True) == -2

    def test_to_int_with_x_is_none(self):
        assert Logic.from_bits("1x").to_int() is None

    def test_bit_select(self):
        v = Logic.from_bits("10x1")
        assert v.bit(0) == Logic.from_int(1, 1)
        assert v.bit(1).has_unknown
        assert v.bit(3) == Logic.from_int(1, 1)

    def test_bit_out_of_range_is_x(self):
        assert Logic.from_int(1, 2).bit(5).has_unknown


class TestResize:
    def test_zero_extend(self):
        assert Logic.from_int(0b101, 3).resize(6).val == 0b101

    def test_sign_extend_negative(self):
        assert Logic.from_int(0b100, 3).resize(6, signed=True).val == 0b111100

    def test_sign_extend_positive(self):
        assert Logic.from_int(0b011, 3).resize(6, signed=True).val == 0b011

    def test_sign_extend_x_msb(self):
        v = Logic.from_bits("x01").resize(5, signed=True)
        assert v.bits() == "xxx01"

    def test_truncate(self):
        assert Logic.from_int(0b11011, 5).resize(3).val == 0b011

    def test_same_width_identity(self):
        v = Logic.from_int(3, 4)
        assert v.resize(4) is v


class TestBitwise:
    def test_and_zero_dominates_x(self):
        a = Logic.from_bits("0x1x")
        b = Logic.from_bits("0011")
        assert a.band(b).bits() == "001x"

    def test_and_truth_table(self):
        a = Logic.from_bits("01x01x01x")
        b = Logic.from_bits("000111xxx")
        assert a.band(b).bits() == "00001x0xx"

    def test_or_one_dominates_x(self):
        a = Logic.from_bits("01x01x01x")
        b = Logic.from_bits("000111xxx")
        assert a.bor(b).bits() == "01x111x1x"

    def test_xor_x_propagates(self):
        a = Logic.from_bits("01x")
        b = Logic.from_bits("111")
        assert a.bxor(b).bits() == "10x"

    def test_not(self):
        assert Logic.from_bits("10x").bnot().bits() == "01x"

    def test_xnor(self):
        a = Logic.from_bits("0101")
        b = Logic.from_bits("0011")
        assert a.bxnor(b).bits() == "1001"

    def test_width_extension_in_binary_ops(self):
        a = Logic.from_int(1, 1)
        b = Logic.from_int(0b1000, 4)
        assert a.bor(b).val == 0b1001


class TestReductions:
    def test_reduce_and_all_ones(self):
        assert Logic.from_int(0xF, 4).reduce_and().val == 1

    def test_reduce_and_with_zero_bit(self):
        assert Logic.from_bits("x0x").reduce_and().val == 0
        assert Logic.from_bits("x0x").reduce_and().is_defined

    def test_reduce_and_x_without_zero(self):
        assert Logic.from_bits("1x1").reduce_and().has_unknown

    def test_reduce_or_with_one(self):
        assert Logic.from_bits("x1x").reduce_or() == Logic.from_int(1, 1)

    def test_reduce_or_all_zero(self):
        assert Logic.from_int(0, 4).reduce_or().val == 0

    def test_reduce_xor_parity(self):
        assert Logic.from_int(0b1011, 4).reduce_xor().val == 1
        assert Logic.from_int(0b1001, 4).reduce_xor().val == 0

    def test_reduce_xor_x(self):
        assert Logic.from_bits("1x").reduce_xor().has_unknown

    def test_reduce_nor(self):
        assert Logic.from_int(0, 3).reduce_nor().val == 1


class TestLogicalOps:
    def test_truth_values(self):
        assert Logic.from_int(2, 4).truth() is True
        assert Logic.from_int(0, 4).truth() is False
        assert Logic.from_bits("0x").truth() is None
        assert Logic.from_bits("1x").truth() is True

    def test_lnot(self):
        assert Logic.from_int(0, 4).lnot().val == 1
        assert Logic.from_int(3, 4).lnot().val == 0
        assert Logic.unknown(2).lnot().has_unknown

    def test_land_short_circuit_on_false(self):
        assert Logic.from_int(0, 1).land(Logic.unknown(1)).val == 0
        assert Logic.from_int(0, 1).land(Logic.unknown(1)).is_defined

    def test_lor_short_circuit_on_true(self):
        assert Logic.from_int(1, 1).lor(Logic.unknown(1)).val == 1

    def test_land_x(self):
        assert Logic.from_int(1, 1).land(Logic.unknown(1)).has_unknown


class TestEqualityRelational:
    def test_eq(self):
        a, b = Logic.from_int(5, 4), Logic.from_int(5, 4)
        assert a.eq(b).val == 1

    def test_eq_with_x_is_x(self):
        assert Logic.from_bits("1x").eq(Logic.from_int(2, 2)).has_unknown

    def test_case_eq_matches_x_literally(self):
        a = Logic.from_bits("1x")
        assert a.case_eq(Logic.from_bits("1x")).val == 1
        assert a.case_eq(Logic.from_bits("10")).val == 0

    def test_lt_unsigned(self):
        assert Logic.from_int(3, 4).lt(Logic.from_int(9, 4)).val == 1

    def test_lt_signed(self):
        a = Logic.from_int(0xF, 4)   # -1 signed
        b = Logic.from_int(1, 4)
        assert a.lt(b, signed=True).val == 1
        assert a.lt(b, signed=False).val == 0

    def test_relational_x(self):
        assert Logic.unknown(4).lt(Logic.from_int(2, 4)).has_unknown

    def test_ge_le(self):
        a, b = Logic.from_int(7, 4), Logic.from_int(7, 4)
        assert a.ge(b).val == 1
        assert a.le(b).val == 1


class TestArithmetic:
    def test_add_wraps(self):
        assert Logic.from_int(15, 4).add(Logic.from_int(1, 4)).val == 0

    def test_add_carry_with_wider_context(self):
        s = Logic.from_int(15, 4).add(Logic.from_int(1, 4), width=5)
        assert s.val == 16

    def test_sub_wraps(self):
        assert Logic.from_int(0, 4).sub(Logic.from_int(1, 4)).val == 0xF

    def test_mul(self):
        assert Logic.from_int(7, 8).mul(Logic.from_int(6, 8)).val == 42

    def test_div(self):
        assert Logic.from_int(42, 8).div(Logic.from_int(5, 8)).val == 8

    def test_div_signed_truncates_toward_zero(self):
        a = Logic.from_int(0xF9, 8)  # -7
        b = Logic.from_int(2, 8)
        assert a.div(b, signed=True).to_int(signed=True) == -3

    def test_div_by_zero_is_x(self):
        assert Logic.from_int(1, 4).div(Logic.zeros(4)).has_unknown

    def test_mod(self):
        assert Logic.from_int(42, 8).mod(Logic.from_int(5, 8)).val == 2

    def test_mod_sign_follows_dividend(self):
        a = Logic.from_int(0xF9, 8)  # -7
        b = Logic.from_int(2, 8)
        assert a.mod(b, signed=True).to_int(signed=True) == -1

    def test_x_poisons_arithmetic(self):
        assert Logic.unknown(4).add(Logic.from_int(1, 4)).xmask == 0xF

    def test_neg(self):
        assert Logic.from_int(1, 4).neg().val == 0xF

    def test_pow(self):
        assert Logic.from_int(3, 8).pow(Logic.from_int(4, 8)).val == 81


class TestShifts:
    def test_shl(self):
        assert Logic.from_int(0b0011, 4).shl(Logic.from_int(2, 3)).val == 0b1100

    def test_shl_saturates_to_zero(self):
        assert Logic.from_int(0xF, 4).shl(Logic.from_int(9, 8)).val == 0

    def test_shr(self):
        assert Logic.from_int(0b1100, 4).shr(Logic.from_int(2, 3)).val == 0b0011

    def test_ashr_fills_sign(self):
        v = Logic.from_int(0b1000, 4).ashr(Logic.from_int(2, 3))
        assert v.val == 0b1110

    def test_ashr_positive(self):
        v = Logic.from_int(0b0100, 4).ashr(Logic.from_int(2, 3))
        assert v.val == 0b0001

    def test_ashr_x_msb_fills_x(self):
        v = Logic.from_bits("x100").ashr(Logic.from_int(1, 2))
        assert v.bits() == "xx10"

    def test_shift_by_x_is_all_x(self):
        assert Logic.from_int(3, 4).shl(Logic.unknown(2)).xmask == 0xF

    def test_shift_moves_xmask(self):
        assert Logic.from_bits("1x00").shr(Logic.from_int(2, 2)).bits() == "001x"


class TestStructure:
    def test_concat_order(self):
        v = Logic.concat([Logic.from_int(0b10, 2), Logic.from_int(0b01, 2)])
        assert v.width == 4
        assert v.val == 0b1001

    def test_concat_empty_rejected(self):
        with pytest.raises(LogicError):
            Logic.concat([])

    def test_replicate(self):
        v = Logic.from_int(0b10, 2).replicate(3)
        assert v.val == 0b101010

    def test_replicate_zero_rejected(self):
        with pytest.raises(LogicError):
            Logic.from_int(1, 1).replicate(0)

    def test_part_select(self):
        v = Logic.from_int(0b110101, 6)
        assert v.part(4, 2).val == 0b101

    def test_part_out_of_range_reads_x(self):
        v = Logic.from_int(0b11, 2)
        assert v.part(4, 1).bits() == "xxx1"

    def test_set_part(self):
        v = Logic.from_int(0, 8).set_part(5, 2, Logic.from_int(0b1111, 4))
        assert v.val == 0b00111100

    def test_set_part_preserves_other_bits(self):
        v = Logic.from_int(0xFF, 8).set_part(3, 0, Logic.from_int(0, 4))
        assert v.val == 0xF0

    def test_reversed_part_rejected(self):
        with pytest.raises(LogicError):
            Logic.from_int(0, 4).part(1, 3)


class TestFormatting:
    def test_decimal(self):
        assert Logic.from_int(42, 8).format_decimal() == "42"

    def test_decimal_signed(self):
        assert Logic.from_int(0xFE, 8).format_decimal(signed=True) == "-2"

    def test_decimal_with_x(self):
        assert Logic.from_bits("1x").format_decimal() == "x"

    def test_binary(self):
        assert Logic.from_bits("10x1").format_binary() == "10x1"

    def test_hex(self):
        assert Logic.from_int(0xAB, 8).format_hex() == "ab"

    def test_hex_x_nibble(self):
        assert Logic.from_bits("x0001111").format_hex() == "xf" \
            or Logic.from_bits("x0001111").format_hex() == "Xf"


class TestHelpers:
    def test_logic_equal_defined(self):
        assert logic_equal_defined(Logic.from_int(3, 4), Logic.from_int(3, 8))
        assert not logic_equal_defined(Logic.unknown(4), Logic.unknown(4))
        assert not logic_equal_defined(Logic.from_int(3, 4),
                                       Logic.from_int(4, 4))

    def test_hash_and_eq(self):
        assert Logic.from_int(3, 4) == Logic.from_int(3, 4)
        assert hash(Logic.from_int(3, 4)) == hash(Logic.from_int(3, 4))
        assert Logic.from_int(3, 4) != Logic.from_int(3, 5)
