"""Differential fuzzing for the lexer pair: master regex vs reference.

The master-regex tokenizer (the production default) and the
character-at-a-time reference lexer must be observationally identical:
same token streams (kind, text, line, column, decoded number payloads)
and, for malformed input, the same ``VerilogSyntaxError`` line, column
and message.  Three corpora drive the comparison:

1. **token soups** — seeded random concatenations of valid token
   fragments, trivia and deliberately-broken fragments (bad bases,
   zero widths, unterminated strings/comments, stray characters),
   joined by unpredictable separators so adjacent fragments fuse into
   new forms;
2. **the golden corpus** — every benchmark problem's golden RTL and its
   rendered hybrid-testbench driver (the exact texts the evaluation
   pipelines lex thousands of times);
3. **pinned regressions** — exact line/column/message expectations for
   the number-literal error paths both lexers must agree on.

Budget knobs follow the simulator fuzz suite: ``REPRO_FUZZ_PROGRAMS``
sizes the soup corpus (default 200; the nightly long-fuzz job raises
it), ``REPRO_FUZZ_SEED`` fixes the base seed so failures reproduce.
"""

import random

import pytest

from repro.hdl.context import current_context, use_context
from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.lexer import (LEXER_MASTER, LEXER_REFERENCE, LEXERS,
                             clear_tokenize_cache, get_default_lexer,
                             set_default_lexer, tokenize, tokenize_cache_stats,
                             tokenize_cached)
from repro.hdl.tokens import KEYWORDS, PUNCTUATIONS, TokenKind
from repro.problems import load_dataset

# Budget knobs ride on the root SimContext (seeded from
# REPRO_FUZZ_PROGRAMS / REPRO_FUZZ_SEED at import).
N_SOUPS = current_context().fuzz_programs
BASE_SEED = current_context().fuzz_seed


def lex_outcome(source: str, lexer: str):
    """Full observable behaviour of one lexer run, comparable with ==."""
    try:
        stream = tokenize(source, lexer)
    except VerilogSyntaxError as exc:
        return ("error", exc.bare_message, exc.line, exc.column)
    return ("ok", tuple((t.kind, t.text, t.line, t.column, t.value)
                        for t in stream))


def assert_lexers_agree(source: str):
    master = lex_outcome(source, LEXER_MASTER)
    reference = lex_outcome(source, LEXER_REFERENCE)
    assert master == reference, (
        f"lexer divergence on {source!r}:\n"
        f"  master:    {master[:2]}\n  reference: {reference[:2]}")
    return master


# ----------------------------------------------------------------------
# Token-soup generator
# ----------------------------------------------------------------------
_IDENT_ALPHA = "abcdefgXYZ_"
_IDENT_CONT = _IDENT_ALPHA + "0123456789$"

_BROKEN_FRAGMENTS = (
    "'", "'s", "'q", "'sq", "'s q", "4'q1", "0'b0", "00'h2", "4'",
    "4 '", "4'd_", "4'b_", "4'b", "'d", "'o_", "12'hGG", "'dz", "4'b2",
    "4'd9a", "$", "$ ", '"no end', '"new\nline"', "/* no end", "\\",
    "@ #", "4'b1x2", "8'h xyq", "5 'sd", "'SB", "'Sq", "0'", "0 'b1",
)

_TRIVIA_FRAGMENTS = (
    " ", "  ", "\t", "\n", "\r\n", "\n\n", " \t ", "// line comment\n",
    "/* block */", "/* multi\nline */", "`timescale 1ns/1ps\n",
    "`define X 1\n", "//eol-comment-at-eof", "",
)


class SoupGen:
    def __init__(self, rng: random.Random):
        self.rng = rng

    def ident(self) -> str:
        rng = self.rng
        return (rng.choice(_IDENT_ALPHA)
                + "".join(rng.choice(_IDENT_CONT)
                          for _ in range(rng.randrange(0, 8))))

    def number(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            text = str(rng.randrange(0, 1 << 16))
            if rng.random() < 0.2:
                text = text[0] + "_" + text[1:] if len(text) > 1 else text
            return text
        width = rng.choice(("", str(rng.randrange(1, 65))))
        sep = rng.choice(("", " ", "\t")) if width else ""
        sign = rng.choice(("", "s", "S"))
        base = rng.choice("bodhBODH")
        gap = rng.choice(("", " ", "  "))
        alphabet = {"b": "01", "o": "01234567", "d": "0123456789",
                    "h": "0123456789abcdefABCDEF"}[base.lower()]
        if base.lower() != "d" and self.rng.random() < 0.4:
            alphabet += "xXzZ?"
        digits = "".join(rng.choice(alphabet + "_")
                         for _ in range(rng.randrange(1, 10)))
        return f"{width}{sep}'{sign}{base}{gap}{digits}"

    def string(self) -> str:
        rng = self.rng
        pieces = []
        for _ in range(rng.randrange(0, 8)):
            roll = rng.random()
            if roll < 0.2:
                pieces.append(rng.choice(
                    ('\\n', '\\t', '\\\\', '\\"', '\\q', '\\ ')))
            else:
                pieces.append(rng.choice(
                    "abc XYZ 0123 %d %b %h !?.,;:(){}"))
        return '"' + "".join(pieces) + '"'

    def fragment(self, clean: bool) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.22:
            return self.ident()
        if roll < 0.30:
            return rng.choice(sorted(KEYWORDS))
        if roll < 0.52:
            return self.number()
        if roll < 0.60:
            return self.string()
        if roll < 0.66:
            return "$" + self.ident()
        if roll < 0.88 or clean:
            return rng.choice(PUNCTUATIONS)
        return rng.choice(_BROKEN_FRAGMENTS)

    def soup(self, clean: bool) -> str:
        """``clean`` soups use only valid fragments with whitespace
        between them (mostly-lexable); dirty soups mix in broken
        fragments and omit separators so fragments fuse."""
        rng = self.rng
        parts = []
        for _ in range(rng.randrange(3, 40)):
            parts.append(self.fragment(clean))
            if clean or rng.random() < 0.75:
                parts.append(rng.choice(_TRIVIA_FRAGMENTS) or " ")
        return "".join(parts)


def soup_for(index: int) -> str:
    rng = random.Random((BASE_SEED << 21) + index)
    return SoupGen(rng).soup(clean=index % 2 == 0)


@pytest.mark.parametrize("index", range(N_SOUPS))
def test_soup_differential(index):
    assert_lexers_agree(soup_for(index))


def test_soup_generator_is_deterministic():
    assert soup_for(3) == soup_for(3)
    assert soup_for(3) != soup_for(4)


def test_soup_corpus_not_vacuous():
    """The soup corpus must exercise both clean and error paths."""
    outcomes = [lex_outcome(soup_for(i), LEXER_MASTER)[0]
                for i in range(min(N_SOUPS, 200))]
    assert outcomes.count("ok") >= 0.2 * len(outcomes)
    assert outcomes.count("error") >= 0.2 * len(outcomes)


# ----------------------------------------------------------------------
# Golden corpus: every problem's RTL + rendered driver
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "task_id", [task.task_id for task in load_dataset()])
def test_golden_corpus_differential(task_id):
    from repro.codegen import render_driver
    from repro.problems import get_task

    task = get_task(task_id)
    rtl = task.golden_rtl()
    driver = render_driver(task, task.canonical_scenarios())
    for source in (rtl, driver, rtl + "\n" + driver):
        outcome = assert_lexers_agree(source)
        assert outcome[0] == "ok"
        # The corpus is non-vacuous: real tokens, not an empty stream.
        assert len(outcome[1]) > 10


# ----------------------------------------------------------------------
# Pinned error-position regressions
# ----------------------------------------------------------------------
# One entry per number-literal error path: (source, message, line, col).
# The column convention: point at the offending character (the invalid
# base char, the position where digits were expected) except for the
# width check, which reports the start of the malformed literal.
_PINNED_ERRORS = (
    ("x = 4'q1;", "invalid number base 'q'", 1, 7),
    ("a 'sq1", "invalid number base 'q'", 1, 5),
    ("x = 4'Q1;", "invalid number base 'q'", 1, 7),
    ("a 4 ' b1", "invalid number base ' '", 1, 6),
    ("a 's q", "invalid number base ' '", 1, 5),
    ("a 's", "invalid number base ''", 1, 5),
    ("a 4'", "invalid number base ''", 1, 5),
    ("x = 0'b0;", "literal width must be >= 1", 1, 5),
    ("\n  00'h2", "literal width must be >= 1", 2, 3),
    ("x = 4'b;", "missing digits in based literal", 1, 8),
    ("x = 4'b_;", "missing digits in based literal", 1, 9),
    ("x = 12'hGG;", "missing digits in based literal", 1, 9),
    ("x = 4'd_;", "missing digits in decimal literal", 1, 9),
    ("x = 'dz;", "missing digits in decimal literal", 1, 7),
    ("a 'sb", "missing digits in based literal", 1, 6),
    ("\nw = \n 8'o 9;", "missing digits in based literal", 3, 6),
    ("$ 1", "expected system task name after '$'", 1, 2),
    ("ab /* nope", "unterminated block comment", 1, 0),
    ('x = "abc', "unterminated string", 1, 5),
    ('x = "ab\ncd"', "newline in string", 1, 5),
    ("a \\ b", "unexpected character '\\\\'", 1, 3),
)


@pytest.mark.parametrize("lexer", LEXERS)
@pytest.mark.parametrize("source,message,line,column", _PINNED_ERRORS)
def test_pinned_error_positions(lexer, source, message, line, column):
    with pytest.raises(VerilogSyntaxError) as info:
        tokenize(source, lexer)
    exc = info.value
    assert (exc.bare_message, exc.line, exc.column) == (message, line, column)


@pytest.mark.parametrize("lexer", LEXERS)
def test_signed_unsized_literal_accepted(lexer):
    """``'sd12`` — no width, signed — is a legal unsized literal."""
    tok = tokenize("'sd12", lexer)[0]
    assert tok.kind is TokenKind.NUMBER
    assert tok.value == (32, 12, 0, True)


@pytest.mark.parametrize("lexer", LEXERS)
def test_unsized_decimal_text_excludes_probe_spaces(lexer):
    """``#5 clk``: the spaces probed for a ``'`` are not literal text."""
    toks = tokenize("#5 clk", lexer)
    assert [t.text for t in toks[:-1]] == ["#", "5", "clk"]
    toks = tokenize("4  x", lexer)
    assert toks[0].text == "4"
    assert (toks[1].text, toks[1].column) == ("x", 4)


@pytest.mark.parametrize("lexer", LEXERS)
def test_based_literal_giveback(lexer):
    """Digits invalid for the base are returned to the stream."""
    toks = tokenize("4'b12", lexer)
    assert [(t.text, t.value) for t in toks[:-1]] == [
        ("4'b1", (4, 1, 0, False)), ("2", (None, 2, 0, True))]
    toks = tokenize("8'hxy_q", lexer)
    assert toks[0].value == (8, 0, 15, False)
    assert toks[1].text == "y_q"


# ----------------------------------------------------------------------
# Knob + cache behaviour
# ----------------------------------------------------------------------
def test_default_lexer_knob_roundtrip():
    # Legacy shim: the setter warns and steers the root context; the
    # getter resolves through the active context.
    previous = get_default_lexer()
    try:
        with pytest.deprecated_call():
            set_default_lexer(LEXER_REFERENCE)
        assert get_default_lexer() == LEXER_REFERENCE
        assert tokenize("a b")[0].text == "a"
        with pytest.deprecated_call():
            set_default_lexer(LEXER_MASTER)
        assert get_default_lexer() == LEXER_MASTER
    finally:
        with pytest.deprecated_call():
            set_default_lexer(previous)


def test_use_context_selects_lexer():
    # The context-native path: no global mutation, no warning.
    assert get_default_lexer() == current_context().lexer
    with use_context(lexer=LEXER_REFERENCE):
        assert get_default_lexer() == LEXER_REFERENCE
        assert tokenize("a b")[0].text == "a"
    assert get_default_lexer() == current_context().lexer


def test_set_default_lexer_rejects_unknown():
    with pytest.raises(ValueError):
        set_default_lexer("treebank")


def test_tokenize_rejects_unknown_explicit_lexer():
    """A mistyped explicit lexer must not silently become master."""
    with pytest.raises(ValueError):
        tokenize("a", "refrence")


def test_tokenize_cache_shares_streams_per_lexer():
    clear_tokenize_cache()
    try:
        with use_context(lexer=LEXER_MASTER):
            first = tokenize_cached("assign y = a + b;")
            again = tokenize_cached("assign y = a + b;")
            assert first is again  # same stream object on a hit
            stats = tokenize_cache_stats()
            assert stats["hits"] >= 1 and stats["misses"] >= 1

        # Flipping the lexer must not serve the other lexer's stream.
        with use_context(lexer=LEXER_REFERENCE):
            reference = tokenize_cached("assign y = a + b;")
        assert reference is not first
        assert [(t.kind, t.text) for t in reference] == \
            [(t.kind, t.text) for t in first]
    finally:
        clear_tokenize_cache()


def test_tokenize_cache_does_not_cache_errors():
    clear_tokenize_cache()
    for _ in range(2):
        with pytest.raises(VerilogSyntaxError):
            tokenize_cached("x = 4'q1;")
    stats = tokenize_cache_stats()
    assert stats["hits"] == 0
