"""Shared pytest configuration.

Hypothesis's default per-example deadline (200 ms) is a flake source on
loaded machines — campaign workers and property tests share cores here —
so the suite runs with the deadline disabled and a bounded example count.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")
