"""Shared utilities: stable hashing, RNG derivation, code-block parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (ExtractionError, LruCache, clamp, derive_rng,
                        extract_code_block_checked, extract_code_blocks,
                        extract_first_code_block, format_ratio, mean,
                        stable_hash)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    @given(st.lists(st.text(), min_size=1, max_size=4))
    def test_in_64_bit_range(self, parts):
        value = stable_hash(*parts)
        assert 0 <= value < 2 ** 64


class TestDeriveRng:
    def test_same_parts_same_stream(self):
        a = derive_rng("x", 1)
        b = derive_rng("x", 1)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        assert derive_rng("x").random() != derive_rng("y").random()


class TestCodeBlocks:
    def test_extract_by_language(self):
        text = ("prose\n```verilog\nmodule m; endmodule\n```\n"
                "```python\nx = 1\n```\n")
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]
        assert extract_code_blocks(text, "python") == ["x = 1\n"]
        assert len(extract_code_blocks(text)) == 2

    def test_first_block_fallback_to_raw(self):
        assert extract_first_code_block("bare code") == "bare code"

    def test_language_filter_case_insensitive(self):
        text = "```Verilog\nm\n```"
        assert extract_code_blocks(text, "verilog") == ["m\n"]

    @given(st.text(alphabet=st.characters(blacklist_characters="`"),
                   min_size=0, max_size=200))
    def test_roundtrip_through_fence(self, body):
        text = f"```python\n{body}\n```"
        blocks = extract_code_blocks(text, "python")
        assert blocks == [body + "\n"]


class TestHardenedExtraction:
    """Malformed-model-output cases the corrector must survive."""

    def test_unclosed_fence_recovers_to_end(self):
        text = "Sure, here it is:\n```python\nx = 1\ny = 2\n"
        assert extract_code_blocks(text, "python") == ["x = 1\ny = 2\n"]

    def test_nested_reopened_fence_splits_blocks(self):
        text = "```python\na = 1\n```python\nb = 2\n```\n"
        assert extract_code_blocks(text, "python") == ["a = 1\n", "b = 2\n"]

    @pytest.mark.parametrize("tag", ["py", "python3", "Python"])
    def test_python_language_tag_variants(self, tag):
        assert extract_code_blocks(f"```{tag}\nx = 1\n```",
                                   "python") == ["x = 1\n"]

    @pytest.mark.parametrize("tag", ["v", "sv", "systemverilog", "Verilog"])
    def test_verilog_language_tag_variants(self, tag):
        text = f"```{tag}\nmodule m; endmodule\n```"
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]

    def test_glued_closing_fence(self):
        assert extract_code_blocks("```python\nx = 1```",
                                   "python") == ["x = 1\n"]

    def test_leading_prose_with_indented_fence(self):
        text = "I would suggest:\n  ```python\n  x = 1\n```\n"
        assert extract_code_blocks(text, "python") == ["  x = 1\n"]

    def test_empty_block(self):
        assert extract_code_blocks("```python\n```", "python") == [""]

    def test_prose_before_fence_on_the_same_line(self):
        text = "Here is the fixed module: ```verilog\n" \
               "module m; endmodule\n```\n"
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]

    def test_prose_mentioning_backticks_does_not_open_a_block(self):
        text = "Wrap your code in ``` fences please.\nNo code here.\n"
        assert extract_code_blocks(text) == []

    def test_closing_fence_with_trailing_commentary(self):
        text = "```verilog\nmodule m; endmodule\n" \
               "``` Hope this helps!\nLet me know.\n"
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]

    def test_single_tag_after_fence_still_reopens(self):
        # One tag-shaped token is a new fence, not commentary.
        text = "```python\na = 1\n```sv\nmodule m; endmodule\n```\n"
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]

    @pytest.mark.parametrize("tag", ["vlog", "sverilog", "verilog2001",
                                     "SVerilog"])
    def test_extra_verilog_aliases(self, tag):
        text = f"```{tag}\nmodule m; endmodule\n```"
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]

    def test_py3_alias(self):
        assert extract_code_blocks("```py3\nx = 1\n```",
                                   "python") == ["x = 1\n"]


class TestCheckedExtraction:
    def test_returns_matching_block(self):
        text = "prose\n```python\nx = 1\n```"
        assert extract_code_block_checked(text, "python") == "x = 1\n"

    def test_bare_code_fallback(self):
        assert extract_code_block_checked("x = 1") == "x = 1"

    def test_prose_with_wrong_language_raises(self):
        text = "Use this:\n```verilog\nmodule m; endmodule\n```"
        with pytest.raises(ExtractionError):
            extract_code_block_checked(text, "python")

    def test_empty_block_raises(self):
        with pytest.raises(ExtractionError):
            extract_code_block_checked("```python\n```", "python")

    def test_blank_reply_raises(self):
        with pytest.raises(ExtractionError):
            extract_code_block_checked("   \n", "python")

    def test_error_carries_reply_text(self):
        with pytest.raises(ExtractionError) as excinfo:
            extract_code_block_checked("", "python")
        assert excinfo.value.text == ""

    def test_is_a_value_error(self):
        assert issubclass(ExtractionError, ValueError)


class TestSmallHelpers:
    def test_clamp(self):
        assert clamp(-1) == 0.0
        assert clamp(2) == 1.0
        assert clamp(0.5) == 0.5
        assert clamp(5, 0, 10) == 5

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0

    def test_format_ratio(self):
        assert format_ratio(0.7013) == "70.13%"


class TestLruCacheGet:
    """The probe-without-compute accessor the response cache's
    probe-then-insert pattern rests on."""

    def test_miss_returns_default_and_counts(self):
        cache = LruCache(capacity=2)
        assert cache.get("absent") is None
        assert cache.get("absent", "fallback") == "fallback"
        assert cache.stats()["misses"] == 2
        assert len(cache) == 0  # a probe never populates

    def test_hit_counts_and_refreshes_recency(self):
        cache = LruCache(capacity=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert cache.get("a") == 1  # "a" is now most recent
        cache.insert("c", 3)        # evicts "b", the LRU entry
        assert sorted(cache.export()) == ["a", "c"]
        assert cache.stats()["hits"] == 1
