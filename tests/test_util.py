"""Shared utilities: stable hashing, RNG derivation, code-block parsing."""

from hypothesis import given, strategies as st

from repro.util import (clamp, derive_rng, extract_code_blocks,
                        extract_first_code_block, format_ratio, mean,
                        stable_hash)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    @given(st.lists(st.text(), min_size=1, max_size=4))
    def test_in_64_bit_range(self, parts):
        value = stable_hash(*parts)
        assert 0 <= value < 2 ** 64


class TestDeriveRng:
    def test_same_parts_same_stream(self):
        a = derive_rng("x", 1)
        b = derive_rng("x", 1)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        assert derive_rng("x").random() != derive_rng("y").random()


class TestCodeBlocks:
    def test_extract_by_language(self):
        text = ("prose\n```verilog\nmodule m; endmodule\n```\n"
                "```python\nx = 1\n```\n")
        assert extract_code_blocks(text, "verilog") == [
            "module m; endmodule\n"]
        assert extract_code_blocks(text, "python") == ["x = 1\n"]
        assert len(extract_code_blocks(text)) == 2

    def test_first_block_fallback_to_raw(self):
        assert extract_first_code_block("bare code") == "bare code"

    def test_language_filter_case_insensitive(self):
        text = "```Verilog\nm\n```"
        assert extract_code_blocks(text, "verilog") == ["m\n"]

    @given(st.text(alphabet=st.characters(blacklist_characters="`"),
                   min_size=0, max_size=200))
    def test_roundtrip_through_fence(self, body):
        text = f"```python\n{body}\n```"
        blocks = extract_code_blocks(text, "python")
        assert blocks == [body + "\n"]


class TestSmallHelpers:
    def test_clamp(self):
        assert clamp(-1) == 0.0
        assert clamp(2) == 1.0
        assert clamp(0.5) == 0.5
        assert clamp(5, 0, 10) == 5

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0

    def test_format_ratio(self):
        assert format_ratio(0.7013) == "70.13%"
