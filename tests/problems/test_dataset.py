"""Dataset population invariants."""

from repro.problems import (CMB, SEQ, dataset_slice, get_task,
                            load_dataset, tasks_of_kind)


def test_population_matches_paper():
    tasks = load_dataset()
    assert len(tasks) == 156
    assert sum(1 for t in tasks if t.kind == CMB) == 81
    assert sum(1 for t in tasks if t.kind == SEQ) == 75


def test_task_ids_unique():
    ids = [t.task_id for t in load_dataset()]
    assert len(ids) == len(set(ids))


def test_every_task_has_variants():
    for task in load_dataset():
        assert len(task.variants) >= 1
        vids = [v.vid for v in task.variants]
        assert len(vids) == len(set(vids))


def test_spec_text_mentions_interface():
    for task in load_dataset():
        spec = task.spec_text
        assert "top_module" in spec
        for port in task.ports:
            assert port.name in spec


def test_seq_tasks_have_clock_and_cmb_do_not():
    for task in load_dataset():
        if task.kind == SEQ:
            assert task.clock_port is not None
        else:
            assert task.clock_port is None


def test_difficulties_in_range():
    for task in load_dataset():
        assert 0.0 <= task.difficulty <= 1.0


def test_seq_harder_on_average():
    cmb = [t.difficulty for t in tasks_of_kind(CMB)]
    seq = [t.difficulty for t in tasks_of_kind(SEQ)]
    assert sum(seq) / len(seq) > sum(cmb) / len(cmb)


def test_get_task_roundtrip():
    first = load_dataset()[0]
    assert get_task(first.task_id) is first


def test_get_task_unknown():
    import pytest
    with pytest.raises(KeyError):
        get_task("no_such_task")


def test_dataset_slice_balanced():
    subset = dataset_slice(6, 4)
    assert sum(1 for t in subset if t.kind == CMB) == 6
    assert sum(1 for t in subset if t.kind == SEQ) == 4


def test_family_diversity():
    families = {t.family for t in load_dataset()}
    assert len(families) >= 25
