"""Task data-model validation."""

import pytest

from repro.problems.model import (CMB, CheckerModelError, Port, Scenario,
                                  SEQ, TaskSpec, load_ref_model,
                                  run_model_on_plan)


class TestPort:
    def test_mask(self):
        assert Port("a", "input", 4).mask == 0xF

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            Port("a", "sideways", 1)

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            Port("a", "input", 1, role="power")

    def test_zero_width(self):
        with pytest.raises(ValueError):
            Port("a", "input", 0)


class TestScenario:
    def test_one_based_index(self):
        with pytest.raises(ValueError):
            Scenario(0, "s", "d", ({"a": 1},))

    def test_empty_vectors(self):
        with pytest.raises(ValueError):
            Scenario(1, "s", "d", ())


def _tiny_task(**overrides):
    ports = overrides.pop("ports", (
        Port("a", "input", 4), Port("out", "output", 4)))
    kwargs = dict(
        task_id="t", family="f", kind=CMB, title="tiny",
        difficulty=0.1, ports=ports, params={},
        spec_renderer=lambda p: "spec",
        rtl_renderer=lambda p: "module top_module(); endmodule",
        model_renderer=lambda p: (
            "class RefModel:\n"
            "    def step(self, inputs):\n"
            "        return {'out': inputs['a']}\n"),
        scenario_builder=lambda p, rng: (
            Scenario(1, "s", "d", ({"a": 3},)),),
        variants=(),
    )
    kwargs.update(overrides)
    return TaskSpec(**kwargs)


class TestTaskSpec:
    def test_minimal_valid(self):
        task = _tiny_task()
        assert task.driven_ports[0].name == "a"
        assert task.output_ports[0].name == "out"

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            _tiny_task(ports=(Port("a", "input", 1),
                              Port("a", "output", 1)))

    def test_seq_needs_clock(self):
        with pytest.raises(ValueError):
            _tiny_task(kind=SEQ)

    def test_cmb_must_not_have_clock(self):
        with pytest.raises(ValueError):
            _tiny_task(ports=(Port("clk", "input", 1, "clock"),
                              Port("out", "output", 1)))

    def test_needs_output(self):
        with pytest.raises(ValueError):
            _tiny_task(ports=(Port("a", "input", 1),))

    def test_plan_vector_keys_validated(self):
        task = _tiny_task(scenario_builder=lambda p, rng: (
            Scenario(1, "s", "d", ({"wrong_name": 1},)),))
        with pytest.raises(ValueError):
            task.canonical_scenarios()

    def test_plan_index_order_validated(self):
        task = _tiny_task(scenario_builder=lambda p, rng: (
            Scenario(2, "s", "d", ({"a": 1},)),))
        with pytest.raises(ValueError):
            task.canonical_scenarios()

    def test_canonical_plan_is_stable(self):
        task = _tiny_task(scenario_builder=lambda p, rng: (
            Scenario(1, "s", "d", ({"a": rng.randrange(16)},)),))
        assert (task.canonical_scenarios()
                == task.canonical_scenarios())

    def test_variant_params_merge(self):
        from repro.problems.model import Variant
        task = _tiny_task(params={"x": 1, "y": 2})
        merged = task.variant_params(Variant("v", "d", {"y": 9}))
        assert merged == {"x": 1, "y": 9}


class TestRefModelLoading:
    def test_load_and_step(self):
        model = load_ref_model(
            "class RefModel:\n"
            "    def step(self, inputs):\n"
            "        return {'out': inputs['a'] + 1}\n")
        assert model.step({"a": 1}) == {"out": 2}

    def test_missing_class(self):
        with pytest.raises(CheckerModelError):
            load_ref_model("x = 1\n")

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            load_ref_model("class RefModel\n    pass\n")

    def test_run_model_on_plan_masks_outputs(self):
        source = (
            "class RefModel:\n"
            "    def step(self, inputs):\n"
            "        return {'out': 0x1FF}\n")
        plan = (Scenario(1, "s", "d", ({"a": 0},)),)
        outputs = run_model_on_plan(source, plan,
                                    (Port("out", "output", 8),))
        assert outputs[1][0]["out"] == 0xFF

    def test_run_model_state_carries_across_scenarios(self):
        source = (
            "class RefModel:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def step(self, inputs):\n"
            "        self.n += 1\n"
            "        return {'out': self.n}\n")
        plan = (Scenario(1, "a", "d", ({"a": 0}, {"a": 0})),
                Scenario(2, "b", "d", ({"a": 0},)))
        outputs = run_model_on_plan(source, plan,
                                    (Port("out", "output", 8),))
        assert outputs[2][0]["out"] == 3
