"""THE dataset gate: golden RTL and golden checker must agree everywhere.

For every one of the 156 tasks: simulate the golden driver against the
golden RTL and check the dump with the golden checker — every scenario
must pass.  Then every behavioural variant must (a) compile as RTL and
(b) be *visible*: its model output differs from the golden model on the
canonical plan (otherwise the misconception machinery would be a no-op).
"""

import pytest

from repro.codegen import render_checker_core, render_driver
from repro.core.checker_runtime import run_checker
from repro.core.simulation import dut_compiles, run_driver
from repro.problems import load_dataset
from repro.problems.model import run_model_on_plan


@pytest.mark.parametrize("task", load_dataset(), ids=lambda t: t.task_id)
def test_golden_rtl_matches_golden_checker(task):
    plan = task.canonical_scenarios()
    run = run_driver(render_driver(task, plan), task.golden_rtl())
    assert run.ok, f"{run.status}: {run.detail}"
    report = run_checker(render_checker_core(task), task.ports,
                         run.records)
    assert report.ok, report.detail
    assert report.all_passed, {
        s: v.mismatches[:3] for s, v in report.verdicts.items()
        if not v.passed}


@pytest.mark.parametrize("task", load_dataset(), ids=lambda t: t.task_id)
def test_variants_visible_and_compiling(task):
    plan = task.canonical_scenarios()
    golden = run_model_on_plan(task.golden_model_source(), plan,
                               task.output_ports)
    for variant in task.variants:
        v_model = task.variant_model_source(variant)
        v_out = run_model_on_plan(v_model, plan, task.output_ports)
        assert v_out != golden, (
            f"variant {variant.vid} is behaviourally invisible")
        ok, error = dut_compiles(task.variant_rtl(variant))
        assert ok, f"variant {variant.vid} RTL: {error}"


@pytest.mark.parametrize("task", load_dataset()[::13],
                         ids=lambda t: t.task_id)
def test_variant_rtl_behaves_like_variant_model(task):
    """Spot check: variant RTL and variant checker share the *same* wrong
    behaviour (this correlation is what fools the validator on traps)."""
    plan = task.canonical_scenarios()
    variant = task.variants[0]
    run = run_driver(render_driver(task, plan), task.variant_rtl(variant))
    assert run.ok, run.detail
    report = run_checker(
        render_checker_core(task, task.variant_params(variant)),
        task.ports, run.records)
    assert report.ok, report.detail
    assert report.all_passed, (
        "variant RTL and variant checker disagree — param correspondence "
        "broken")
