"""End-to-end integration: full CorrectBench runs, cross-method ordering,
determinism, and the CLI."""

import pytest

from repro import quick_run
from repro.cli import main as cli_main
from repro.eval import EvalLevel
from repro.eval.campaign import (METHOD_AUTOBENCH, METHOD_BASELINE,
                                 METHOD_CORRECTBENCH, default_config,
                                 run_campaign)
from repro.eval.metrics import level_stat


class TestQuickRun:
    def test_easy_task_passes(self):
        result, level = quick_run("cmb_mux2to1_1b", seed=0)
        assert level == EvalLevel.EVAL2
        assert result.final_tb.task_id == "cmb_mux2to1_1b"

    def test_deterministic_end_to_end(self):
        a_result, a_level = quick_run("seq_serial_parity", seed=2)
        b_result, b_level = quick_run("seq_serial_parity", seed=2)
        assert a_level == b_level
        assert a_result.final_tb.checker_src == b_result.final_tb.checker_src
        assert a_result.history == b_result.history


class TestMethodOrdering:
    @pytest.fixture(scope="class")
    def slice_result(self):
        from repro.problems import dataset_slice
        tasks = [t.task_id for t in dataset_slice(8, 8, stride=5)]
        return run_campaign(default_config(task_ids=tasks, seeds=(0, 1),
                                           n_jobs=4))

    def test_correctbench_beats_autobench_beats_baseline(
            self, slice_result):
        scores = {
            method: level_stat(slice_result, method, "Total",
                               EvalLevel.EVAL2).ratio
            for method in (METHOD_CORRECTBENCH, METHOD_AUTOBENCH,
                           METHOD_BASELINE)}
        assert scores[METHOD_CORRECTBENCH] >= scores[METHOD_AUTOBENCH]
        assert scores[METHOD_AUTOBENCH] >= scores[METHOD_BASELINE]

    def test_seq_harder_than_cmb_for_baseline(self, slice_result):
        cmb = level_stat(slice_result, METHOD_BASELINE, "CMB",
                         EvalLevel.EVAL2).ratio
        seq = level_stat(slice_result, METHOD_BASELINE, "SEQ",
                         EvalLevel.EVAL2).ratio
        assert cmb >= seq

    def test_correctbench_eval0_near_perfect(self, slice_result):
        eval0 = level_stat(slice_result, METHOD_CORRECTBENCH, "Total",
                           EvalLevel.EVAL0).ratio
        assert eval0 >= 0.9


class TestCli:
    def test_dataset_listing(self, capsys):
        assert cli_main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "156 tasks" in out

    def test_dataset_show_task(self, capsys):
        assert cli_main(["dataset", "--task", "cmb_eq4",
                         "--show-rtl"]) == 0
        out = capsys.readouterr().out
        assert "top_module" in out

    def test_run_autobench(self, capsys):
        assert cli_main(["run", "cmb_and2", "--method", "autobench"]) == 0
        out = capsys.readouterr().out
        assert "AutoEval:" in out
        assert "tokens:" in out

    def test_validate_prints_matrix(self, capsys):
        assert cli_main(["validate", "cmb_and2"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "RTL\\Scn" in out

    def test_campaign_small(self, capsys):
        assert cli_main(["campaign", "--tasks", "cmb_and2,seq_dff",
                         "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE III" in out
