"""Codegen renderers: driver, checker, scenario listing, baseline TB."""

import pytest

from repro.codegen import (BaselineFaults, DriverFaults,
                           parse_driver_scenarios, parse_scenario_listing,
                           render_baseline_tb, render_checker_core,
                           render_driver, render_scenario_listing)
from repro.codegen.baseline import baseline_verdict
from repro.core.simulation import run_monolithic, syntax_ok
from repro.problems import get_task, load_dataset


@pytest.fixture()
def cmb_task():
    return get_task("cmb_alu4")


@pytest.fixture()
def seq_task():
    return get_task("seq_count8_en")


class TestDriver:
    @pytest.mark.parametrize("task", load_dataset()[::11],
                             ids=lambda t: t.task_id)
    def test_golden_driver_parses(self, task):
        driver = render_driver(task, task.canonical_scenarios())
        assert syntax_ok(driver)

    def test_scenario_comments_roundtrip(self, cmb_task):
        plan = cmb_task.canonical_scenarios()
        driver = render_driver(cmb_task, plan)
        parsed = parse_driver_scenarios(driver)
        assert [index for index, _ in parsed] == [s.index for s in plan]
        assert parsed[0][1] == plan[0].description

    def test_drop_fault_removes_scenarios(self, cmb_task):
        plan = cmb_task.canonical_scenarios()
        driver = render_driver(cmb_task, plan,
                               DriverFaults(drop_last_scenario=True))
        parsed = parse_driver_scenarios(driver)
        assert len(parsed) < len(plan)

    def test_late_sample_fault_removes_settle_delay(self, seq_task):
        plan = seq_task.canonical_scenarios()
        clean = render_driver(seq_task, plan)
        racy = render_driver(seq_task, plan,
                             DriverFaults(late_sample=True))
        assert clean.count("#1;") > racy.count("#1;")

    def test_missing_clock_init(self, seq_task):
        plan = seq_task.canonical_scenarios()
        broken = render_driver(seq_task, plan,
                               DriverFaults(missing_clock_init=True))
        assert "clk = 1'b0;" not in broken

    def test_stuck_input_assigned_once(self, seq_task):
        plan = seq_task.canonical_scenarios()
        driver = render_driver(seq_task, plan,
                               DriverFaults(stuck_input="en"))
        lines = [line for line in driver.splitlines()
                 if line.strip().startswith("en = ")]
        assert len(lines) == 1

    def test_style_seed_changes_header_only(self, cmb_task):
        def body(src):
            lines = src.splitlines()
            while lines and (lines[0].startswith("//")
                             or lines[0].startswith("/*")):
                lines.pop(0)
            return lines

        plan = cmb_task.canonical_scenarios()
        a = render_driver(cmb_task, plan, style_seed=0)
        b = render_driver(cmb_task, plan, style_seed=1)
        assert a != b
        assert body(a) == body(b)


class TestChecker:
    def test_golden_core_compiles(self, cmb_task):
        source = render_checker_core(cmb_task)
        compile(source, "<t>", "exec")
        assert "class RefModel" in source

    def test_variant_core_differs(self, cmb_task):
        golden = render_checker_core(cmb_task)
        variant = render_checker_core(
            cmb_task, cmb_task.variant_params(cmb_task.variants[0]))
        assert golden != variant


class TestScenarioListing:
    def test_roundtrip(self, cmb_task):
        plan = cmb_task.canonical_scenarios()
        listing = render_scenario_listing(plan)
        parsed = parse_scenario_listing(listing)
        assert len(parsed) == len(plan)
        assert parsed[0][0] == 1
        assert parsed[0][1] == plan[0].name

    def test_parse_ignores_prose(self):
        text = "Some chat.\n1. [alpha] does things\nMore chat."
        assert parse_scenario_listing(text) == [(1, "alpha",
                                                 "does things")]


class TestBaseline:
    def test_golden_baseline_passes_golden_rtl(self, cmb_task):
        tb = render_baseline_tb(cmb_task, cmb_task.canonical_scenarios(),
                                render_checker_core(cmb_task))
        run = run_monolithic(tb, cmb_task.golden_rtl())
        assert run.status == "ok"
        assert run.verdict is True

    def test_wrong_belief_fails_golden_rtl(self, cmb_task):
        wrong_model = render_checker_core(
            cmb_task, cmb_task.variant_params(cmb_task.variants[0]))
        tb = render_baseline_tb(cmb_task, cmb_task.canonical_scenarios(),
                                wrong_model)
        run = run_monolithic(tb, cmb_task.golden_rtl())
        assert run.status == "ok"
        assert run.verdict is False

    def test_sequential_baseline(self, seq_task):
        tb = render_baseline_tb(seq_task, seq_task.canonical_scenarios(),
                                render_checker_core(seq_task))
        run = run_monolithic(tb, seq_task.golden_rtl())
        assert run.verdict is True

    def test_thin_faults_reduce_checks(self, cmb_task):
        plan = cmb_task.canonical_scenarios()
        model = render_checker_core(cmb_task)
        full = render_baseline_tb(cmb_task, plan, model)
        thin = render_baseline_tb(cmb_task, plan, model,
                                  BaselineFaults(thin=True))
        assert thin.count("// Check") < full.count("// Check")

    def test_verdict_parser(self):
        assert baseline_verdict(["ALL_TESTS_PASSED"]) is True
        assert baseline_verdict(["TESTS_FAILED: 3"]) is False
        assert baseline_verdict(["noise"]) is None
