"""Crash-fault battery: SIGKILL a campaign mid-flight, resume it, and
require the resumed report to be byte-identical to an uninterrupted
run with zero resimulated items.

The campaign runs as a real CLI subprocess (the unit a crash actually
kills); the parent polls the store's entry files and sends SIGKILL at
a randomized completion point.  Because every completed item is
persisted atomically as it finishes, the kill loses at most the item
in flight — the resume answers everything on disk from the store and
computes only the rest.
"""

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.eval import (CampaignStore, default_config, run_campaign,
                        render_table1, render_table3)

REPO_ROOT = Path(__file__).resolve().parents[2]
TASKS = ("cmb_and2", "cmb_eq4", "seq_dff", "seq_tff")
N_ITEMS = 3 * len(TASKS)  # three methods per task


def _campaign_argv(store: Path) -> list:
    return [sys.executable, "-m", "repro.cli", "campaign",
            "--tasks", ",".join(TASKS), "--jobs", "1",
            "--store", str(store)]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _entry_count(store: Path) -> int:
    return len(list((store / "entries").glob("*.json")))


def _kill_campaign_mid_flight(store: Path, kill_after: int,
                              timeout: float = 180.0):
    """Start a CLI campaign and SIGKILL it once ``kill_after`` entries
    hit the store.  Returns (exited_cleanly, stdout)."""
    proc = subprocess.Popen(_campaign_argv(store), env=_env(),
                            stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    deadline = time.monotonic() + timeout
    try:
        while proc.poll() is None and time.monotonic() < deadline:
            if _entry_count(store) >= kill_after:
                proc.kill()  # SIGKILL: no atexit, no cleanup
                proc.wait(timeout=30)
                return False, ""
            time.sleep(0.002)
    finally:
        if proc.poll() is None:
            proc.kill()
    stdout, _ = proc.communicate(timeout=30)
    return proc.returncode == 0, stdout


@pytest.mark.parametrize("round_index", range(2))
def test_sigkill_resume_is_byte_identical(tmp_path, round_index):
    store_root = tmp_path / "store"
    kill_after = random.randrange(1, N_ITEMS)  # chaos: any mid-point
    cleanly, _ = _kill_campaign_mid_flight(store_root, kill_after)

    entries_before = _entry_count(store_root)
    if cleanly:  # campaign outran the poller — degenerate full resume
        assert entries_before == N_ITEMS
    assert kill_after <= entries_before <= N_ITEMS

    # The killed process may have died inside a manifest or snapshot
    # write; opening the store must recover (entry files are the
    # truth), never lose completed work.
    store = CampaignStore(store_root)
    assert len(store) == entries_before

    config = default_config(task_ids=TASKS, seeds=(0,), n_jobs=1)
    resumed = run_campaign(config, store=store, resume=True)
    # Zero resimulated: everything the killed run persisted is skipped.
    assert resumed.store_hits == entries_before
    assert resumed.store_misses == N_ITEMS - entries_before

    # Byte-identical report to an uninterrupted (store-less) campaign.
    cold = run_campaign(config)
    assert render_table1(resumed) == render_table1(cold)
    assert render_table3(resumed) == render_table3(cold)
    assert resumed.runs == cold.runs


def test_sigkill_then_cli_resume_stdout_identical(tmp_path):
    """The CI acceptance path end to end through the CLI: cold stdout
    (uninterrupted subprocess) vs killed-then-resumed stdout."""
    cold_store = tmp_path / "cold"
    cleanly, cold_stdout = _kill_campaign_mid_flight(
        cold_store, kill_after=N_ITEMS + 1)  # never killed
    assert cleanly
    assert _entry_count(cold_store) == N_ITEMS

    chaos_store = tmp_path / "chaos"
    kill_after = random.randrange(1, N_ITEMS)
    cleanly, _ = _kill_campaign_mid_flight(chaos_store, kill_after)
    survivors = {path.name: path.stat().st_mtime_ns
                 for path in (chaos_store / "entries").glob("*.json")}

    proc = subprocess.run(_campaign_argv(chaos_store) + ["--resume"],
                          env=_env(), capture_output=True, text=True,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == cold_stdout
    # The store summary goes to stderr (keeping stdout diffable) and
    # reports exactly the surviving entries as skipped.
    assert (f"skipped (store hits) {len(survivors):>6}"
            in proc.stderr), proc.stderr
    # Zero resimulated: no surviving entry file was rewritten.
    for path in (chaos_store / "entries").glob("*.json"):
        if path.name in survivors:
            assert path.stat().st_mtime_ns == survivors[path.name]
    assert _entry_count(chaos_store) == N_ITEMS
