"""Campaign runner: per-method work items, determinism, reporting."""

import pytest

from repro.eval import (EvalLevel, default_config, render_table1,
                        render_table2, render_table3,
                        render_usage_summary, run_campaign, run_one)
from repro.eval.campaign import (METHOD_AUTOBENCH, METHOD_BASELINE,
                                 METHOD_CORRECTBENCH)

EASY_TASK = "cmb_and2"


class TestRunOne:
    @pytest.mark.parametrize("method", (METHOD_BASELINE, METHOD_AUTOBENCH,
                                        METHOD_CORRECTBENCH))
    def test_each_method_produces_a_run(self, method):
        run = run_one(method, EASY_TASK, seed=0)
        assert run.method == method
        assert run.task_id == EASY_TASK
        assert isinstance(run.level, EvalLevel)
        assert run.usage.total_tokens > 0

    def test_correctbench_records_workflow_fields(self):
        run = run_one(METHOD_CORRECTBENCH, EASY_TASK, seed=0)
        assert run.validated is not None
        assert run.gave_up is not None

    def test_deterministic(self):
        a = run_one(METHOD_CORRECTBENCH, "seq_tff", seed=3)
        b = run_one(METHOD_CORRECTBENCH, "seq_tff", seed=3)
        assert a == b

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_one("magic", EASY_TASK, seed=0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_result(self):
        config = default_config(
            task_ids=("cmb_and2", "cmb_eq4", "seq_dff", "seq_tff"),
            seeds=(0,), n_jobs=1)
        return run_campaign(config)

    def test_all_cells_present(self, small_result):
        assert len(small_result.runs) == 3 * 4  # methods x tasks

    def test_renderers_accept_result(self, small_result):
        table1 = render_table1(small_result)
        assert "CorrectBench" in table1
        assert "Eval2" in table1
        table3 = render_table3(small_result)
        assert "Gain" in table3
        assert "Val." in table3
        assert "TOKEN USAGE" in render_usage_summary(small_result)

    def test_table2_static(self):
        table2 = render_table2()
        assert "Eval2" in table2
        assert "golden testbench" in table2

    def test_progress_callback(self):
        seen = []
        config = default_config(task_ids=(EASY_TASK,), seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=1)
        run_campaign(config, progress=lambda i, n, run: seen.append(
            (i, n, run.task_id)))
        assert seen == [(1, 1, EASY_TASK)]
