"""Campaign runner: per-method work items, determinism, reporting,
the pluggable method registry, attempt-aware progress and store-backed
resume/shard semantics."""

from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.eval.campaign as campaign_mod
from repro.eval import (CampaignStore, EvalLevel, StoreError,
                        campaign_items, default_config, register_method,
                        registered_methods, render_store_summary,
                        render_table1, render_table2, render_table3,
                        render_usage_summary, run_campaign, run_one,
                        run_sharded_campaign, store_key,
                        unregister_method)
from repro.eval.campaign import (METHOD_AUTOBENCH, METHOD_BASELINE,
                                 METHOD_CORRECTBENCH, campaign_method)
from repro.hdl.context import current_context, use_context

EASY_TASK = "cmb_and2"


class TestRunOne:
    @pytest.mark.parametrize("method", (METHOD_BASELINE, METHOD_AUTOBENCH,
                                        METHOD_CORRECTBENCH))
    def test_each_method_produces_a_run(self, method):
        run = run_one(method, EASY_TASK, seed=0)
        assert run.method == method
        assert run.task_id == EASY_TASK
        assert isinstance(run.level, EvalLevel)
        assert run.usage.total_tokens > 0

    def test_correctbench_records_workflow_fields(self):
        run = run_one(METHOD_CORRECTBENCH, EASY_TASK, seed=0)
        assert run.validated is not None
        assert run.gave_up is not None

    def test_deterministic(self):
        a = run_one(METHOD_CORRECTBENCH, "seq_tff", seed=3)
        b = run_one(METHOD_CORRECTBENCH, "seq_tff", seed=3)
        assert a == b

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_one("magic", EASY_TASK, seed=0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_result(self):
        config = default_config(
            task_ids=("cmb_and2", "cmb_eq4", "seq_dff", "seq_tff"),
            seeds=(0,), n_jobs=1)
        return run_campaign(config)

    def test_all_cells_present(self, small_result):
        assert len(small_result.runs) == 3 * 4  # methods x tasks

    def test_renderers_accept_result(self, small_result):
        table1 = render_table1(small_result)
        assert "CorrectBench" in table1
        assert "Eval2" in table1
        table3 = render_table3(small_result)
        assert "Gain" in table3
        assert "Val." in table3
        assert "TOKEN USAGE" in render_usage_summary(small_result)

    def test_table2_static(self):
        table2 = render_table2()
        assert "Eval2" in table2
        assert "golden testbench" in table2

    def test_progress_callback(self):
        seen = []
        config = default_config(task_ids=(EASY_TASK,), seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=1)
        run_campaign(config, progress=lambda i, n, run: seen.append(
            (i, n, run.task_id)))
        assert seen == [(1, 1, EASY_TASK)]

    def test_context_travels_with_items(self):
        # The campaign's resolved context governs its items: a starved
        # time budget downgrades every produced testbench's grade path
        # without leaking into the caller's context.
        config = default_config(task_ids=(EASY_TASK,), seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=1)
        with use_context(max_time=1):
            starved = run_campaign(config).runs[0]
        healthy = run_campaign(config).runs[0]
        assert starved.level < healthy.level
        assert current_context().max_time != 1


# ----------------------------------------------------------------------
# Pluggable method registry
# ----------------------------------------------------------------------
class TestMethodRegistry:
    def test_builtins_registered(self):
        for method in (METHOD_CORRECTBENCH, METHOD_AUTOBENCH,
                       METHOD_BASELINE):
            assert method in registered_methods()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method(METHOD_BASELINE, lambda call: None)

    def test_config_validates_methods_against_registry(self):
        with pytest.raises(ValueError, match="registered"):
            default_config(task_ids=(EASY_TASK,),
                           methods=("baseline", "magic"))

    def test_out_of_tree_method_end_to_end(self):
        # The acceptance scenario: a method this repo has never heard
        # of, registered at runtime, runs through run_one, run_campaign
        # and the CLI without touching the campaign runner.
        from repro.core.baseline import DirectBaseline

        @campaign_method("second-attempt-baseline")
        def _second_attempt(call):
            testbench = DirectBaseline(call.client,
                                       call.task).generate(attempt=1)
            return call.result(call.grade(testbench))

        try:
            run = run_one("second-attempt-baseline", EASY_TASK, seed=0)
            assert run.method == "second-attempt-baseline"
            assert isinstance(run.level, EvalLevel)

            config = default_config(
                task_ids=(EASY_TASK,), seeds=(0,),
                methods=("second-attempt-baseline", METHOD_BASELINE),
                n_jobs=1)
            result = run_campaign(config)
            assert [r.method for r in result.runs] == [
                "second-attempt-baseline", METHOD_BASELINE]

            from repro.cli import main
            assert main(["run", EASY_TASK,
                         "--method", "second-attempt-baseline"]) == 0
        finally:
            unregister_method("second-attempt-baseline")
        with pytest.raises(ValueError):
            run_one("second-attempt-baseline", EASY_TASK, seed=0)


# ----------------------------------------------------------------------
# Attempt-aware progress across healed-pool retries
# ----------------------------------------------------------------------
class _FlakyPool:
    """Yields ``runs`` from map(); breaks after ``fail_after`` items on
    the first attempt only."""

    def __init__(self, runs, fail_after):
        self.runs = runs
        self.fail_after = fail_after
        self.attempts = 0

    def map(self, fn, items, chunksize=1):
        self.attempts += 1
        first = self.attempts == 1

        def generate():
            for index, run in enumerate(self.runs):
                if first and index == self.fail_after:
                    raise BrokenProcessPool("worker died")
                yield run
        return generate()


class TestRetryProgress:
    TASKS = ("cmb_and2", "cmb_eq4", "seq_dff")

    def _run_flaky(self, monkeypatch, progress):
        config = default_config(task_ids=self.TASKS, seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=2)
        runs = [run_one(METHOD_BASELINE, task_id, seed=0)
                for task_id in self.TASKS]
        pool = _FlakyPool(runs, fail_after=2)
        monkeypatch.setattr(campaign_mod, "get_sim_pool",
                            lambda jobs, **kwargs: pool)
        monkeypatch.setattr(campaign_mod, "shutdown_sim_pool",
                            lambda wait=True: None)
        result = run_campaign(config, progress=progress)
        assert [r.task_id for r in result.runs] == list(self.TASKS)
        return result

    def test_legacy_callback_stays_monotonic(self, monkeypatch):
        # The first attempt reports items 1..2 and breaks; the healed
        # retry replays all three.  A three-argument callback must see
        # each index exactly once, in order — no replay from 1.
        seen = []
        self._run_flaky(monkeypatch,
                        lambda i, n, run: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_attempt_aware_callback_sees_replay(self, monkeypatch):
        seen = []

        def progress(index, total, run, attempt):
            seen.append((attempt, index, total))

        self._run_flaky(monkeypatch, progress)
        assert seen == [(0, 1, 3), (0, 2, 3),
                        (1, 1, 3), (1, 2, 3), (1, 3, 3)]

    def test_exhausted_retries_reraise(self, monkeypatch):
        config = default_config(task_ids=(EASY_TASK,), seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=2)

        class DeadPool:
            def map(self, fn, items, chunksize=1):
                raise BrokenProcessPool("still dead")

        monkeypatch.setattr(campaign_mod, "get_sim_pool",
                            lambda jobs, **kwargs: DeadPool())
        monkeypatch.setattr(campaign_mod, "shutdown_sim_pool",
                            lambda wait=True: None)
        with pytest.raises(BrokenProcessPool):
            run_campaign(config)


# ----------------------------------------------------------------------
# Persistent store: resume, skip-aware progress, heal, shards
# ----------------------------------------------------------------------
def _never_compute(item):  # pragma: no cover - sentinel
    raise AssertionError(f"resume recomputed a stored item: {item!r}")


class TestStoreResume:
    TASKS = ("cmb_and2", "seq_dff")

    def _config(self, **overrides):
        overrides.setdefault("methods",
                             (METHOD_BASELINE, METHOD_AUTOBENCH))
        return default_config(task_ids=self.TASKS, seeds=(0,),
                              n_jobs=1, **overrides)

    def test_campaign_persists_every_item(self, tmp_path):
        store = CampaignStore(tmp_path)
        result = run_campaign(self._config(), store=store)
        assert result.store_hits == 0
        assert result.store_misses == 4
        assert len(store) == 4
        for item, run in zip(campaign_items(self._config()), result.runs):
            assert store.get(store_key(*item)) == run

    def test_resume_answers_from_store_without_recompute(
            self, tmp_path, monkeypatch):
        store = CampaignStore(tmp_path)
        cold = run_campaign(self._config(), store=store)
        monkeypatch.setattr(campaign_mod, "_worker", _never_compute)
        resumed = run_campaign(self._config(), store=store, resume=True)
        assert resumed.store_hits == 4
        assert resumed.store_misses == 0
        assert resumed.runs == cold.runs

    def test_partial_resume_computes_only_the_rest(self, tmp_path):
        store = CampaignStore(tmp_path)
        # Seed the store with the baseline half only.
        run_campaign(self._config(methods=(METHOD_BASELINE,)),
                     store=store)
        resumed = run_campaign(self._config(), store=store, resume=True)
        assert resumed.store_hits == 2
        assert resumed.store_misses == 2
        assert resumed.runs == run_campaign(self._config()).runs
        assert store.stats()["entries"] == 4

    def test_without_resume_store_is_write_only(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(self._config(), store=store)
        again = run_campaign(self._config(), store=store)
        assert again.store_hits == 0
        assert again.store_misses == 4

    def test_context_fingerprint_separates_entries(self, tmp_path):
        store = CampaignStore(tmp_path)
        config = self._config(methods=(METHOD_BASELINE,))
        run_campaign(config, store=store)
        with use_context(max_time=1):
            starved = run_campaign(config, store=store, resume=True)
        assert starved.store_hits == 0  # different result coordinates
        assert len(store) == 4

    def test_skip_aware_progress_reports_hits_first(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(self._config(methods=(METHOD_BASELINE,)),
                     store=store)
        seen = []

        def progress(index, total, run, attempt, skipped=False):
            seen.append((index, total, skipped))

        run_campaign(self._config(), store=store, resume=True,
                     progress=progress)
        assert seen == [(1, 4, True), (2, 4, True),
                        (3, 4, False), (4, 4, False)]

    def test_legacy_progress_counts_hits_as_completed_work(self,
                                                           tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(self._config(methods=(METHOD_BASELINE,)),
                     store=store)
        seen = []
        run_campaign(self._config(), store=store, resume=True,
                     progress=lambda i, n, run: seen.append((i, n)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_store_summary_renders_counters(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(self._config(), store=store)
        resumed = run_campaign(self._config(), store=store, resume=True)
        summary = render_store_summary(resumed)
        assert "skipped (store hits)      4" in summary
        assert "computed this run         0" in summary
        storeless = render_store_summary(run_campaign(self._config()))
        assert "computed this run         4" in storeless

    def test_store_dir_context_knob_opens_store(self, tmp_path):
        with use_context(store_dir=str(tmp_path)):
            run_campaign(self._config())
            resumed = run_campaign(self._config(), resume=True)
        assert resumed.store_hits == 4
        assert len(CampaignStore(tmp_path)) == 4

    def test_resume_leaves_warm_boot_snapshot(self, tmp_path):
        run_campaign(self._config(), store=CampaignStore(tmp_path))
        snapshot = CampaignStore(tmp_path).load_snapshot()
        assert snapshot is not None and snapshot
        assert {"design", "pair"} <= set(snapshot.layers())


class _ItemAwareFlakyPool:
    """Like :class:`_FlakyPool`, but honours the ``items`` it is mapped
    over (the store path remaps only *outstanding* items after a heal,
    so the replayed slice is shorter than the campaign)."""

    def __init__(self, runs_by_task, fail_after):
        self.runs_by_task = runs_by_task
        self.fail_after = fail_after
        self.attempts = 0

    def map(self, fn, items, chunksize=1):
        self.attempts += 1
        first = self.attempts == 1
        items = list(items)

        def generate():
            for index, item in enumerate(items):
                if first and index == self.fail_after:
                    raise BrokenProcessPool("worker died")
                yield self.runs_by_task[item[1]]  # item[1] == task_id
        return generate()


class TestStoreHeal:
    """A healed pool with a store keeps completed items: only
    outstanding work replays, and progress stays monotonic."""

    TASKS = TestRetryProgress.TASKS

    def _run_flaky_with_store(self, monkeypatch, tmp_path, progress):
        config = default_config(task_ids=self.TASKS, seeds=(0,),
                                methods=(METHOD_BASELINE,), n_jobs=2)
        runs_by_task = {task_id: run_one(METHOD_BASELINE, task_id, seed=0)
                        for task_id in self.TASKS}
        pool = _ItemAwareFlakyPool(runs_by_task, fail_after=2)
        monkeypatch.setattr(campaign_mod, "get_sim_pool",
                            lambda jobs, **kwargs: pool)
        monkeypatch.setattr(campaign_mod, "shutdown_sim_pool",
                            lambda wait=True: None)
        store = CampaignStore(tmp_path)
        result = run_campaign(config, progress=progress, store=store)
        assert [r.task_id for r in result.runs] == list(self.TASKS)
        return result, store, pool

    def test_completed_items_survive_the_heal(self, monkeypatch,
                                              tmp_path):
        seen = []

        def progress(index, total, run, attempt):
            seen.append((attempt, index, total))

        result, store, pool = self._run_flaky_with_store(
            monkeypatch, tmp_path, progress)
        # Attempt 0 lands items 1..2 and persists them; the healed
        # retry computes only the third — completed count is monotonic
        # across the heal, unlike the store-less full replay.
        assert seen == [(0, 1, 3), (0, 2, 3), (1, 3, 3)]
        assert pool.attempts == 2
        assert len(store) == 3
        assert result.store_misses == 3


class TestShardedCampaign:
    TASKS = ("cmb_and2", "cmb_eq4", "seq_dff")

    def _config(self):
        return default_config(task_ids=self.TASKS, seeds=(0,),
                              methods=(METHOD_BASELINE, METHOD_AUTOBENCH),
                              n_jobs=1)

    def test_sharded_matches_unsharded(self, tmp_path):
        unsharded = run_campaign(self._config())
        sharded = run_sharded_campaign(self._config(), shards=2,
                                       store=CampaignStore(tmp_path))
        assert sharded.runs == unsharded.runs
        assert sharded.store_hits == 0
        assert sharded.store_misses == 6
        assert len(CampaignStore(tmp_path)) == 6

    def test_sharded_resume_skips_stored_items(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_sharded_campaign(self._config(), shards=2, store=store)
        seen = []
        again = run_sharded_campaign(
            self._config(), shards=2, store=store,
            progress=lambda i, n, run: seen.append((i, n)))
        assert again.store_hits == 6
        assert again.store_misses == 0
        assert seen == [(i, 6) for i in range(1, 7)]

    def test_store_required(self):
        with pytest.raises(StoreError, match="REPRO_STORE_DIR"):
            run_sharded_campaign(self._config(), shards=2)
        with pytest.raises(ValueError, match="shards"):
            run_sharded_campaign(self._config(), shards=0)

    def test_single_shard_degenerates_to_resume(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(self._config(), store=store)
        result = run_sharded_campaign(self._config(), shards=1,
                                      store=store)
        assert result.store_hits == 6
        assert result.runs == run_campaign(self._config()).runs
