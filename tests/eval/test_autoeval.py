"""AutoEval grading: golden artifacts, levels, agreement computation."""

import pytest

from repro.codegen import render_checker_core, render_driver
from repro.core import HybridTestbench, MonolithicTestbench
from repro.eval import (EvalLevel, N_MUTANTS, evaluate, golden_artifacts,
                        hybrid_verdict)
from repro.mutation import inject_verilog_syntax_fault
from repro.problems import get_task


def golden_tb(task):
    plan = task.canonical_scenarios()
    return HybridTestbench(
        task_id=task.task_id, driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task),
        scenarios=tuple((s.index, s.description) for s in plan))


class TestGoldenArtifacts:
    def test_cached_identity(self):
        assert (golden_artifacts("cmb_eq4")
                is golden_artifacts("cmb_eq4"))

    def test_mutants_present_and_mostly_killed(self):
        golden = golden_artifacts("cmb_alu4")
        assert len(golden.mutants) == N_MUTANTS
        # The golden TB should catch most single-site mutants.
        assert golden.killed_mutants >= N_MUTANTS // 2

    def test_golden_tb_passes_golden_rtl(self):
        task = get_task("seq_count4_up")
        golden = golden_artifacts(task.task_id)
        assert hybrid_verdict(golden.testbench, task.golden_rtl(),
                              task) is True


class TestEvalLevels:
    def test_golden_tb_reaches_eval2(self):
        for task_id in ("cmb_eq4", "cmb_kmap3_a", "seq_count4_up",
                        "seq_detect_101_ov"):
            task = get_task(task_id)
            result = evaluate(golden_tb(task))
            assert result.level == EvalLevel.EVAL2, (task_id,
                                                     result.detail)

    def test_syntax_broken_driver_is_failed(self):
        task = get_task("cmb_eq4")
        tb = golden_tb(task)
        broken = HybridTestbench(
            task_id=tb.task_id,
            driver_src=inject_verilog_syntax_fault(tb.driver_src, 0),
            checker_src=tb.checker_src, scenarios=tb.scenarios)
        assert evaluate(broken).level == EvalLevel.FAILED

    def test_syntax_broken_checker_is_failed(self):
        task = get_task("cmb_eq4")
        tb = golden_tb(task)
        broken = HybridTestbench(
            task_id=tb.task_id, driver_src=tb.driver_src,
            checker_src="class RefModel\n  oops", scenarios=tb.scenarios)
        assert evaluate(broken).level == EvalLevel.FAILED

    def test_wrong_checker_stops_at_eval0(self):
        task = get_task("cmb_dec2to4")
        tb = golden_tb(task)
        wrong = HybridTestbench(
            task_id=tb.task_id, driver_src=tb.driver_src,
            checker_src=render_checker_core(
                task, task.variant_params(task.variants[0])),
            scenarios=tb.scenarios)
        result = evaluate(wrong)
        assert result.level == EvalLevel.EVAL0

    def test_weak_tb_stops_at_eval1(self):
        # A drastically thinned driver passes the golden DUT but cannot
        # discriminate the mutants the golden TB kills.
        task = get_task("cmb_kmap4_a")
        plan = task.canonical_scenarios()[:1]
        thin_plan = tuple(
            type(plan[0])(s.index, s.name, s.description, s.vectors[:1])
            for s in plan)
        weak = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, thin_plan),
            checker_src=render_checker_core(task),
            scenarios=tuple((s.index, s.description) for s in thin_plan))
        result = evaluate(weak)
        assert result.level == EvalLevel.EVAL1, result.detail
        assert result.agreement is not None
        assert result.agreement < 0.8

    def test_eval_result_passes_api(self):
        result = evaluate(golden_tb(get_task("cmb_eq4")))
        assert result.passes(EvalLevel.EVAL0)
        assert result.passes(EvalLevel.EVAL2)

    def test_monolithic_eval(self):
        from repro.codegen import render_baseline_tb
        task = get_task("cmb_eq4")
        tb = MonolithicTestbench(
            task_id=task.task_id,
            source=render_baseline_tb(task, task.canonical_scenarios(),
                                      render_checker_core(task)))
        assert evaluate(tb).level >= EvalLevel.EVAL1

    def test_monolithic_syntax_failure(self):
        tb = MonolithicTestbench(task_id="cmb_eq4",
                                 source="module tb(; endmodule")
        assert evaluate(tb).level == EvalLevel.FAILED

    def test_unknown_artifact_type_rejected(self):
        with pytest.raises(TypeError):
            evaluate(object())
