"""AutoEval grading: golden artifacts, levels, agreement computation."""

import dataclasses
import inspect

import pytest

from repro.codegen import render_checker_core, render_driver
from repro.core import HybridTestbench, MonolithicTestbench
from repro.eval import (EvalLevel, N_MUTANTS, evaluate, golden_artifacts,
                        hybrid_verdict)
from repro.eval.autoeval import evaluate_hybrid, evaluate_monolithic
from repro.eval.golden import hybrid_verdicts_batch
from repro.hdl import (MUTANT_ENGINES, MUTANT_LOCKSTEP, MUTANT_PER_MUTANT,
                       use_context)
from repro.mutation import Mutant, inject_verilog_syntax_fault
from repro.problems import get_task


def golden_tb(task):
    plan = task.canonical_scenarios()
    return HybridTestbench(
        task_id=task.task_id, driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task),
        scenarios=tuple((s.index, s.description) for s in plan))


class TestGoldenArtifacts:
    def test_cached_identity(self):
        assert (golden_artifacts("cmb_eq4")
                is golden_artifacts("cmb_eq4"))

    def test_mutants_present_and_mostly_killed(self):
        golden = golden_artifacts("cmb_alu4")
        assert len(golden.mutants) == N_MUTANTS
        # The golden TB should catch most single-site mutants.
        assert golden.killed_mutants >= N_MUTANTS // 2

    def test_golden_tb_passes_golden_rtl(self):
        task = get_task("seq_count4_up")
        golden = golden_artifacts(task.task_id)
        assert hybrid_verdict(golden.testbench, task.golden_rtl(),
                              task) is True


class TestEvalLevels:
    def test_golden_tb_reaches_eval2(self):
        for task_id in ("cmb_eq4", "cmb_kmap3_a", "seq_count4_up",
                        "seq_detect_101_ov"):
            task = get_task(task_id)
            result = evaluate(golden_tb(task))
            assert result.level == EvalLevel.EVAL2, (task_id,
                                                     result.detail)

    def test_syntax_broken_driver_is_failed(self):
        task = get_task("cmb_eq4")
        tb = golden_tb(task)
        broken = HybridTestbench(
            task_id=tb.task_id,
            driver_src=inject_verilog_syntax_fault(tb.driver_src, 0),
            checker_src=tb.checker_src, scenarios=tb.scenarios)
        assert evaluate(broken).level == EvalLevel.FAILED

    def test_syntax_broken_checker_is_failed(self):
        task = get_task("cmb_eq4")
        tb = golden_tb(task)
        broken = HybridTestbench(
            task_id=tb.task_id, driver_src=tb.driver_src,
            checker_src="class RefModel\n  oops", scenarios=tb.scenarios)
        assert evaluate(broken).level == EvalLevel.FAILED

    def test_wrong_checker_stops_at_eval0(self):
        task = get_task("cmb_dec2to4")
        tb = golden_tb(task)
        wrong = HybridTestbench(
            task_id=tb.task_id, driver_src=tb.driver_src,
            checker_src=render_checker_core(
                task, task.variant_params(task.variants[0])),
            scenarios=tb.scenarios)
        result = evaluate(wrong)
        assert result.level == EvalLevel.EVAL0

    def test_weak_tb_stops_at_eval1(self):
        # A drastically thinned driver passes the golden DUT but cannot
        # discriminate the mutants the golden TB kills.
        task = get_task("cmb_kmap4_a")
        plan = task.canonical_scenarios()[:1]
        thin_plan = tuple(
            type(plan[0])(s.index, s.name, s.description, s.vectors[:1])
            for s in plan)
        weak = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, thin_plan),
            checker_src=render_checker_core(task),
            scenarios=tuple((s.index, s.description) for s in thin_plan))
        result = evaluate(weak)
        assert result.level == EvalLevel.EVAL1, result.detail
        assert result.agreement is not None
        assert result.agreement < 0.8

    def test_eval_result_passes_api(self):
        result = evaluate(golden_tb(get_task("cmb_eq4")))
        assert result.passes(EvalLevel.EVAL0)
        assert result.passes(EvalLevel.EVAL2)

    def test_monolithic_eval(self):
        from repro.codegen import render_baseline_tb
        task = get_task("cmb_eq4")
        tb = MonolithicTestbench(
            task_id=task.task_id,
            source=render_baseline_tb(task, task.canonical_scenarios(),
                                      render_checker_core(task)))
        assert evaluate(tb).level >= EvalLevel.EVAL1

    def test_monolithic_syntax_failure(self):
        tb = MonolithicTestbench(task_id="cmb_eq4",
                                 source="module tb(; endmodule")
        assert evaluate(tb).level == EvalLevel.FAILED

    def test_unknown_artifact_type_rejected(self):
        with pytest.raises(TypeError):
            evaluate(object())


# ----------------------------------------------------------------------
# Edge cases, pinned under both mutant-sweep engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", MUTANT_ENGINES)
class TestEvalEdgeCases:
    def test_zero_mutant_task_reaches_eval2(self, engine):
        task = get_task("cmb_eq4")
        golden = dataclasses.replace(golden_artifacts(task.task_id),
                                     mutants=(), mutant_verdicts=())
        with use_context(mutant_engine=engine):
            result = evaluate_hybrid(golden_tb(task), golden=golden)
        # No mutants to disagree with: vacuous 100% agreement.
        assert result.level == EvalLevel.EVAL2
        assert result.agreement == 1.0

    def test_crashed_mutant_counts_as_disagreement(self, engine):
        # An oscillating mutant starves the statement budget, so the
        # candidate TB's run produces a None verdict; `None` never
        # agrees with the reference, whatever it recorded.
        task = get_task("cmb_eq4")
        oscillating = task.golden_rtl().replace(
            "endmodule", "wire osc;\nassign osc = ~osc;\nendmodule")
        golden = dataclasses.replace(
            golden_artifacts(task.task_id),
            mutants=(Mutant(oscillating, "oscillator", 0),),
            mutant_verdicts=(False,))
        with use_context(mutant_engine=engine):
            result = evaluate_hybrid(golden_tb(task), golden=golden)
        assert result.level == EvalLevel.EVAL1
        assert result.agreement == 0.0

    def test_exactly_at_80_percent_boundary(self, engine):
        # Eval2 requires agreement >= 0.80: with ten mutants, eight
        # matching verdicts is Eval2 and seven is Eval1.
        task = get_task("cmb_alu4")
        golden = golden_artifacts(task.task_id)
        tb = golden_tb(task)
        candidate = hybrid_verdicts_batch(
            tb, [mutant.source for mutant in golden.mutants], task)
        assert len(candidate) == N_MUTANTS
        assert all(verdict is not None for verdict in candidate)

        def reference_with_flips(n_flips):
            flipped = list(candidate)
            for index in range(n_flips):
                flipped[index] = not flipped[index]
            return dataclasses.replace(
                golden, mutant_verdicts=tuple(flipped))

        with use_context(mutant_engine=engine):
            at_boundary = evaluate_hybrid(
                tb, golden=reference_with_flips(2))
            below = evaluate_hybrid(tb, golden=reference_with_flips(3))
        assert at_boundary.level == EvalLevel.EVAL2
        assert at_boundary.agreement == pytest.approx(0.8)
        assert below.level == EvalLevel.EVAL1
        assert below.agreement == pytest.approx(0.7)

    def test_sim_jobs_serial_vs_pool_parity(self, engine):
        task = get_task("cmb_kmap3_a")
        tb = golden_tb(task)
        with use_context(mutant_engine=engine):
            default = evaluate_hybrid(tb)
            serial = evaluate_hybrid(tb, sim_jobs=1)
            pooled = evaluate_hybrid(tb, sim_jobs=2)
        assert default == serial == pooled


def test_sim_jobs_defaults_resolve_through_context():
    # Satellite fix: `sim_jobs=1` hard-coded serial execution; None now
    # defers to SimContext.jobs resolution inside the batch APIs.
    for fn in (evaluate, evaluate_hybrid, evaluate_monolithic,
               hybrid_verdicts_batch):
        parameters = inspect.signature(fn).parameters
        name = "sim_jobs" if "sim_jobs" in parameters else "jobs"
        assert parameters[name].default is None, fn.__name__
