"""Campaign artifact store: keying, round trips, atomic durability,
manifest recovery, snapshot co-location and the integrity battery."""

import json

import pytest

from repro.core.caches import (CacheSnapshot, SnapshotIntegrityError,
                               read_snapshot_file, write_snapshot_file)
from repro.eval import (CampaignStore, EvalLevel, StoreError,
                        StoreIntegrityError, TaskRun, context_fingerprint,
                        llm_tier, store_key)
from repro.eval.store import STORE_VERSION, key_digest
from repro.hdl.context import SimContext
from repro.llm.base import Usage


def make_run(task_id="cmb_and2", method="baseline", seed=0,
             level=EvalLevel.EVAL2, **extra) -> TaskRun:
    return TaskRun(method=method, task_id=task_id, kind="CMB", seed=seed,
                   level=level, usage=Usage(120, 34), **extra)


def make_key(task_id="cmb_and2", method="baseline", seed=0,
             context=None) -> dict:
    context = context if context is not None else SimContext()
    return store_key(method, task_id, seed, "gpt-4o", "S1", 20, context)


class TestKeying:
    def test_llm_tier_defaults_to_synthetic(self):
        assert llm_tier(SimContext()) == "synthetic"
        assert llm_tier(SimContext(llm_backend="fixture")) == "fixture"

    def test_operational_knobs_do_not_change_fingerprint(self):
        base = SimContext()
        for evolved in (base.evolve(jobs=8),
                        base.evolve(start_method="spawn"),
                        base.evolve(warm_start=False),
                        base.evolve(template_cache_size=7),
                        base.evolve(trace_dir="/tmp/t"),
                        base.evolve(store_dir="/tmp/s")):
            assert context_fingerprint(evolved) == context_fingerprint(base)

    def test_result_relevant_fields_change_fingerprint(self):
        base = SimContext()
        for evolved in (base.evolve(engine="interpret"),
                        base.evolve(max_time=7),
                        base.evolve(llm_backend="fixture")):
            assert context_fingerprint(evolved) != context_fingerprint(base)

    def test_key_digest_stable_across_dict_order(self):
        key = make_key()
        shuffled = dict(reversed(list(key.items())))
        assert key_digest(shuffled) == key_digest(key)

    def test_key_coordinates_distinguish_items(self):
        digests = {key_digest(make_key(task_id=t, method=m, seed=s))
                   for t in ("cmb_and2", "cmb_eq4")
                   for m in ("baseline", "autobench")
                   for s in (0, 1)}
        assert len(digests) == 8


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        run = make_run(validated=True, corrections=2)
        key = make_key()
        store.put(key, run)
        assert store.get(key) == run
        assert store.contains(key)
        assert len(store) == 1

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.get(make_key()) is None
        assert not store.contains(make_key())
        assert store.stats()["misses"] == 1

    def test_round_trip_survives_reopen(self, tmp_path):
        run = make_run(level=EvalLevel.EVAL1, gave_up=False)
        CampaignStore(tmp_path).put(make_key(), run)
        reopened = CampaignStore(tmp_path)
        assert reopened.get(make_key()) == run
        assert not reopened.recovered_manifest

    def test_identical_payload_is_deduplicated(self, tmp_path):
        store = CampaignStore(tmp_path)
        sha_a = store.put(make_key(), make_run())
        sha_b = store.put(make_key(), make_run())
        assert sha_a == sha_b
        assert len(list((tmp_path / "blobs").glob("*.json"))) == 1

    def test_last_writer_wins_per_key(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.put(make_key(), make_run(level=EvalLevel.FAILED))
        store.put(make_key(), make_run(level=EvalLevel.EVAL2))
        assert store.get(make_key()).level == EvalLevel.EVAL2
        assert len(store) == 1

    def test_evict(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.put(make_key(), make_run())
        assert store.evict(make_key())
        assert store.get(make_key()) is None
        assert not store.evict(make_key())
        assert store.stats()["evictions"] == 1

    def test_keys_and_export_keys(self, tmp_path):
        store = CampaignStore(tmp_path)
        keys = [make_key(seed=s) for s in range(3)]
        for key in keys:
            store.put(key, make_run(seed=key["seed"]))
        assert sorted(k["seed"] for k in store.keys()) == [0, 1, 2]
        assert store.export_keys() == tuple(sorted(map(key_digest, keys)))

    def test_stats_counters(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.put(make_key(), make_run())
        store.get(make_key())
        store.get(make_key(seed=9))
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1,
                                 "evictions": 0, "entries": 1}

    def test_taskrun_payload_round_trip(self):
        run = make_run(validated=True, gave_up=False, corrections=3,
                       reboots=1, final_from_corrector=True,
                       took_any_action=True, fault_class="dead-signal",
                       recovered=True, recovery_round=2, rounds=4)
        assert TaskRun.from_payload(run.to_payload()) == run

    def test_taskrun_payload_is_strict(self):
        payload = make_run().to_payload()
        with pytest.raises(ValueError, match="bad TaskRun payload"):
            TaskRun.from_payload({**payload, "surprise": 1})
        missing = dict(payload)
        del missing["level"]
        with pytest.raises(ValueError, match="bad TaskRun payload"):
            TaskRun.from_payload(missing)
        with pytest.raises(ValueError, match="bad TaskRun payload"):
            TaskRun.from_payload({**payload, "level": 99})


class TestIntegrity:
    def _stored(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.put(make_key(), make_run())
        return store, make_key()

    def _blob_path(self, tmp_path):
        (blob,) = (tmp_path / "blobs").glob("*.json")
        return blob

    def test_tampered_blob_raises(self, tmp_path):
        store, key = self._stored(tmp_path)
        blob = self._blob_path(tmp_path)
        data = json.loads(blob.read_bytes())
        data["run"]["level"] = int(EvalLevel.FAILED)
        blob.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="content hash"):
            store.get(key)

    def test_truncated_blob_raises(self, tmp_path):
        store, key = self._stored(tmp_path)
        blob = self._blob_path(tmp_path)
        blob.write_bytes(blob.read_bytes()[:-20])
        with pytest.raises(StoreIntegrityError, match="content hash"):
            store.get(key)

    def test_missing_blob_raises(self, tmp_path):
        store, key = self._stored(tmp_path)
        self._blob_path(tmp_path).unlink()
        with pytest.raises(StoreIntegrityError, match="missing"):
            store.get(key)

    def test_blob_under_wrong_key_raises(self, tmp_path):
        # An entry whose blob was recorded under a *different* key must
        # not be served: rewrite the entry for key B to point at key A's
        # blob (the blob's own hash still verifies).
        store = CampaignStore(tmp_path)
        key_a, key_b = make_key(seed=0), make_key(seed=1)
        sha_a = store.put(key_a, make_run(seed=0))
        store.put(key_b, make_run(seed=1))
        entry_path = tmp_path / "entries" / f"{key_digest(key_b)}.json"
        entry = json.loads(entry_path.read_bytes())
        entry["blob"] = sha_a
        entry_path.write_text(json.dumps(entry))
        with pytest.raises(StoreIntegrityError, match="different.*key"):
            store.get(key_b)

    def test_corrupt_entry_raises(self, tmp_path):
        store, key = self._stored(tmp_path)
        path = tmp_path / "entries" / f"{key_digest(key)}.json"
        path.write_text("{not json")
        with pytest.raises(StoreIntegrityError, match="corrupt"):
            store.get(key)

    def test_entry_version_mismatch_raises(self, tmp_path):
        store, key = self._stored(tmp_path)
        path = tmp_path / "entries" / f"{key_digest(key)}.json"
        entry = json.loads(path.read_bytes())
        entry["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(entry))
        with pytest.raises(StoreError, match="version"):
            store.get(key)


class TestManifest:
    def test_manifest_written_and_versioned(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.put(make_key(), make_run())
        manifest = json.loads((tmp_path / "manifest.json").read_bytes())
        assert manifest["version"] == STORE_VERSION
        assert manifest["count"] == 1
        assert key_digest(make_key()) in manifest["entries"]

    def test_version_mismatch_fails_loudly(self, tmp_path):
        CampaignStore(tmp_path).put(make_key(), make_run())
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_bytes())
        manifest["version"] = STORE_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="version"):
            CampaignStore(tmp_path)

    def test_torn_manifest_recovers_from_entries(self, tmp_path, capsys):
        # The entry files are the durable truth: garbage in the
        # manifest (a torn write) costs nothing but a loud warning.
        store = CampaignStore(tmp_path)
        for seed in range(3):
            store.put(make_key(seed=seed), make_run(seed=seed))
        (tmp_path / "manifest.json").write_bytes(b'{"version": 1, "en')
        recovered = CampaignStore(tmp_path)
        assert recovered.recovered_manifest
        assert "rebuilding from entry files" in capsys.readouterr().err
        assert len(recovered.manifest()) == 3
        for seed in range(3):
            assert recovered.get(make_key(seed=seed)).seed == seed
        # Recovery rewrote a readable manifest.
        assert not CampaignStore(tmp_path).recovered_manifest

    def test_missing_manifest_rebuilds_silently(self, tmp_path, capsys):
        CampaignStore(tmp_path).put(make_key(), make_run())
        (tmp_path / "manifest.json").unlink()
        reopened = CampaignStore(tmp_path)
        assert not reopened.recovered_manifest  # absent != torn
        assert capsys.readouterr().err == ""
        assert len(reopened.manifest()) == 1

    def test_manifest_is_advisory_not_truth(self, tmp_path):
        # keys()/get() read entry files directly, so entries another
        # writer landed after our manifest flush are still visible.
        ours = CampaignStore(tmp_path)
        ours.put(make_key(seed=0), make_run(seed=0))
        theirs = CampaignStore(tmp_path)
        theirs.put(make_key(seed=1), make_run(seed=1))
        assert len(ours.manifest()) == 1  # stale in-memory index...
        assert len(ours) == 2             # ...but the disk truth is 2
        assert ours.get(make_key(seed=1)).seed == 1


class TestSnapshotColocation:
    def test_absent_snapshot_is_none(self, tmp_path):
        assert CampaignStore(tmp_path).load_snapshot() is None

    def test_snapshot_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        snapshot = CacheSnapshot(payloads={"parse": {("k",): b"v"}})
        store.save_snapshot(snapshot)
        loaded = store.load_snapshot()
        assert isinstance(loaded, CacheSnapshot)
        assert loaded.payloads == snapshot.payloads

    def test_tampered_snapshot_raises_store_error(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save_snapshot(CacheSnapshot(payloads={"parse": {}}))
        path = tmp_path / "snapshot.bin"
        path.write_bytes(path.read_bytes()[:-3] + b"zzz")
        with pytest.raises(StoreIntegrityError):
            store.load_snapshot()


class TestSnapshotFileFormat:
    """The framed snapshot file the store co-locates (magic + digest +
    pickle) — unit coverage for repro.core.caches' read/write pair."""

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "snap.bin"
        snapshot = CacheSnapshot(payloads={"design": {("a",): b"t"}})
        write_snapshot_file(snapshot, path)
        assert read_snapshot_file(path).payloads == snapshot.payloads

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot_file(tmp_path / "absent.bin")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "snap.bin"
        path.write_bytes(b"not-a-snapshot\n" + b"0" * 64 + b"\n")
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot_file(path)

    def test_truncated_payload_raises(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot_file(CacheSnapshot(payloads={"parse": {}}), path)
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot_file(path)
