"""Metric aggregation over synthetic campaign results."""

from repro.eval import (CampaignConfig, CampaignResult, EvalLevel, GROUPS,
                        TaskRun, contribution_stats, level_breakdown,
                        level_stat, mean_usage)
from repro.eval.campaign import METHOD_AUTOBENCH, METHOD_CORRECTBENCH
from repro.llm import Usage


def _run(method, task_id, kind, seed, level, **kwargs):
    return TaskRun(method, task_id, kind, seed, EvalLevel(level),
                   kwargs.pop("usage", Usage(100, 50)), **kwargs)


def _result():
    config = CampaignConfig(task_ids=("a", "b", "c", "d"),
                            seeds=(0, 1),
                            methods=(METHOD_CORRECTBENCH,
                                     METHOD_AUTOBENCH))
    result = CampaignResult(config)
    # 4 tasks: a,b CMB; c,d SEQ.  CorrectBench passes 3 (both seeds),
    # AutoBench passes 2.
    for seed in (0, 1):
        result.runs += [
            _run(METHOD_CORRECTBENCH, "a", "CMB", seed, 3,
                 took_any_action=True, final_from_corrector=True),
            _run(METHOD_CORRECTBENCH, "b", "CMB", seed, 3),
            _run(METHOD_CORRECTBENCH, "c", "SEQ", seed, 3,
                 took_any_action=True),
            _run(METHOD_CORRECTBENCH, "d", "SEQ", seed, 1),
            _run(METHOD_AUTOBENCH, "a", "CMB", seed, 3),
            _run(METHOD_AUTOBENCH, "b", "CMB", seed, 2),
            _run(METHOD_AUTOBENCH, "c", "SEQ", seed, 3),
            _run(METHOD_AUTOBENCH, "d", "SEQ", seed, 0),
        ]
    return result


class TestLevelStat:
    def test_total_ratio(self):
        stat = level_stat(_result(), METHOD_CORRECTBENCH, "Total",
                          EvalLevel.EVAL2)
        assert stat.ratio == 0.75
        assert stat.mean_count == 3.0
        assert stat.group_size == 4

    def test_group_filter(self):
        stat = level_stat(_result(), METHOD_CORRECTBENCH, "SEQ",
                          EvalLevel.EVAL2)
        assert stat.ratio == 0.5

    def test_lower_levels_are_cumulative(self):
        stat = level_stat(_result(), METHOD_AUTOBENCH, "Total",
                          EvalLevel.EVAL1)
        # Eval1-or-better: a (3), b (2), c (3) -> 3 of 4.
        assert stat.ratio == 0.75

    def test_empty_method(self):
        stat = level_stat(_result(), "baseline", "Total",
                          EvalLevel.EVAL2)
        assert stat.ratio == 0.0


class TestContributions:
    def test_gain_decomposition(self):
        stats = {s.group: s for s in contribution_stats(_result())}
        total = stats["Total"]
        assert total.correctbench == 3.0
        assert total.autobench == 2.0
        assert total.gain == 1.0
        assert total.validator == 2.0   # tasks a and c took actions
        assert total.corrector == 1.0   # task a's final TB from corrector
        assert set(stats) == set(GROUPS)

    def test_corrector_subset_of_validator(self):
        for stat in contribution_stats(_result()):
            assert stat.corrector <= stat.validator


class TestUsageAndBreakdown:
    def test_mean_usage(self):
        input_tokens, output_tokens = mean_usage(_result(),
                                                 METHOD_CORRECTBENCH)
        assert input_tokens == 100.0
        assert output_tokens == 50.0

    def test_level_breakdown_sums_to_one(self):
        bands = level_breakdown(_result(), METHOD_AUTOBENCH)
        assert abs(sum(bands.values()) - 1.0) < 1e-9
        assert bands["Eval2"] == 0.5
        assert bands["Failed"] == 0.25
