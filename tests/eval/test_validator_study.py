"""The Fig. 6a labelled-corpus study machinery."""

import pytest

from repro.eval.validator_study import (StudyResult, run_study,
                                        study_one_task)


@pytest.fixture(scope="module")
def small_study():
    return run_study(["cmb_eq4", "cmb_kmap3_a", "seq_tff"],
                     samples_per_task=3, n_jobs=1)


def test_corpus_size(small_study):
    assert len(small_study.records) == 9


def test_every_record_has_all_criteria(small_study):
    for record in small_study.records:
        assert set(record.verdicts) == {"100%-wrong", "70%-wrong",
                                        "50%-wrong"}


def test_accuracy_fields(small_study):
    accuracies = small_study.accuracies()
    for name, acc in accuracies.items():
        assert set(acc) == {"total", "correct", "wrong"}
        assert 0.0 <= acc["total"] <= 1.0


def test_accuracy_definition():
    # Hand-built records: criterion A always right, criterion B always
    # wrong.
    from repro.eval.validator_study import LabelledValidation
    records = [
        LabelledValidation("t", 0, True, {"A": True, "B": False}),
        LabelledValidation("t", 1, False, {"A": False, "B": True}),
    ]
    study = StudyResult(records)
    assert study.accuracy("A") == {"total": 1.0, "correct": 1.0,
                                   "wrong": 1.0}
    assert study.accuracy("B") == {"total": 0.0, "correct": 0.0,
                                   "wrong": 0.0}


def test_single_task_study_deterministic():
    a = study_one_task("cmb_eq4", samples_per_task=2)
    b = study_one_task("cmb_eq4", samples_per_task=2)
    assert [(r.label_correct, r.verdicts) for r in a] == [
        (r.label_correct, r.verdicts) for r in b]
