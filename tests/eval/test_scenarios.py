"""Fault-injected recovery scenario packs (repro.eval.scenarios)."""

import pytest

from repro.core.validator import ValidationReport
from repro.eval import (EvalLevel, FAULT_CLASSES, RECOVERY_METHODS,
                        misleading_report_filter, registered_methods,
                        run_one)
from repro.eval.reporting import render_recovery_report
from repro.eval.campaign import CampaignResult, default_config
from repro.eval.methods import TaskRun
from repro.eval.scenarios import (AttemptOffsetClient, CorruptingClient,
                                  FAULT_BUDGET, FAULT_CORRUPTED,
                                  FAULT_MISLEADING, _CORRUPTION_MARK)
from repro.llm.base import (ChatMessage, ChatRequest, ChatResponse,
                            GenerationIntent, Usage)

EASY_TASK = "cmb_and2"


class ScriptedClient:
    def __init__(self, text):
        self.text = text
        self.requests = []

    @property
    def name(self):
        return "scripted"

    def complete(self, request):
        self.requests.append(request)
        return ChatResponse(self.text, Usage(1, 1))


def _request(kind, payload):
    return ChatRequest(messages=(ChatMessage("user", "hi"),),
                       intent=GenerationIntent(kind, "t", payload))


# ----------------------------------------------------------------------
class TestCorruptingClient:
    REWRITE = "ok:\n```python\nclass RefModel:\n    pass\n```\n"

    def test_poisons_rewrites_inside_the_window(self):
        client = CorruptingClient(ScriptedClient(self.REWRITE))
        response = client.complete(
            _request("correct_rewrite", {"correction_round": 1}))
        assert _CORRUPTION_MARK in response.text
        # inside the python block, so extraction still "succeeds"
        assert response.text.index("```python") \
            < response.text.index(_CORRUPTION_MARK)
        assert client.corrupted == 1

    def test_leaves_rewrites_after_the_window(self):
        client = CorruptingClient(ScriptedClient(self.REWRITE))
        response = client.complete(
            _request("correct_rewrite", {"correction_round": 2}))
        assert _CORRUPTION_MARK not in response.text
        assert client.corrupted == 0

    def test_leaves_other_intents_alone(self):
        client = CorruptingClient(ScriptedClient(self.REWRITE))
        response = client.complete(
            _request("gen_checker", {"correction_round": 0}))
        assert _CORRUPTION_MARK not in response.text


class TestAttemptOffsetClient:
    def test_shifts_attempt_payloads(self):
        scripted = ScriptedClient("x")
        client = AttemptOffsetClient(scripted, 1000)
        client.complete(_request("gen_checker", {"attempt": 2}))
        assert scripted.requests[0].intent.payload["attempt"] == 1002

    def test_zero_offset_is_a_passthrough(self):
        scripted = ScriptedClient("x")
        request = _request("gen_checker", {"attempt": 2})
        AttemptOffsetClient(scripted, 0).complete(request)
        assert scripted.requests[0] is request

    def test_attemptless_intents_untouched(self):
        scripted = ScriptedClient("x")
        request = _request("correct_reason", {"correction_round": 1})
        AttemptOffsetClient(scripted, 1000).complete(request)
        assert scripted.requests[0] is request


class TestMisleadingFilter:
    def _failing(self):
        return ValidationReport(False, wrong=(2, 4), correct=(1,),
                                uncertain=(3,))

    def test_hides_bug_information_in_the_window(self):
        report = misleading_report_filter(2)(self._failing(), 1)
        assert report.verdict is False          # the agent still acts
        assert report.wrong == ()               # ...but blind
        assert report.correct == (1, 2, 4)
        assert report.uncertain == (3,)
        assert "misleading" in report.note

    def test_honest_after_the_window(self):
        report = self._failing()
        assert misleading_report_filter(2)(report, 3) is report

    def test_passing_reports_never_rewritten(self):
        report = ValidationReport(True, wrong=())
        assert misleading_report_filter(2)(report, 1) is report


# ----------------------------------------------------------------------
class TestPacks:
    def test_packs_are_registered_campaign_methods(self):
        assert set(RECOVERY_METHODS) <= set(registered_methods())
        assert set(RECOVERY_METHODS) == set(FAULT_CLASSES)

    @pytest.mark.parametrize("method", RECOVERY_METHODS)
    def test_pack_produces_a_graded_run(self, method):
        run = run_one(method, EASY_TASK, seed=0,
                      profile_name="gpt-4o-mini")
        assert run.fault_class == FAULT_CLASSES[method]
        assert run.rounds >= 1
        assert run.recovered in (True, False)
        if run.recovered:
            assert run.level >= EvalLevel.EVAL2
            assert run.validated
            assert 1 <= run.recovery_round <= run.rounds
        else:
            assert run.recovery_round is None

    @pytest.mark.parametrize("method", RECOVERY_METHODS)
    def test_packs_are_deterministic(self, method):
        a = run_one(method, EASY_TASK, seed=1, profile_name="gpt-4o-mini")
        b = run_one(method, EASY_TASK, seed=1, profile_name="gpt-4o-mini")
        assert a == b

    def test_recovery_requires_eval2_not_just_validation(self):
        # Every recovered run in a small sweep must carry an Eval2
        # grade — validator acceptance alone is not recovery.
        for method in RECOVERY_METHODS:
            for seed in (0, 1):
                run = run_one(method, "cmb_eq4", seed=seed,
                              profile_name="gpt-4o-mini")
                if run.recovered:
                    assert run.level >= EvalLevel.EVAL2


# ----------------------------------------------------------------------
class TestRecoveryReport:
    def _result(self, runs):
        return CampaignResult(default_config(task_ids=(EASY_TASK,)),
                              runs=runs)

    def _run(self, fault_class, recovered, round_=None, rounds=3):
        return TaskRun(
            "m", EASY_TASK, "CMB", 0,
            EvalLevel.EVAL2 if recovered else EvalLevel.EVAL0,
            fault_class=fault_class, recovered=recovered,
            recovery_round=round_, rounds=rounds)

    def test_no_fault_runs_degrades_gracefully(self):
        text = render_recovery_report(self._result(
            [TaskRun("baseline", EASY_TASK, "CMB", 0, EvalLevel.EVAL2)]))
        assert "no fault-injected runs" in text

    def test_rates_and_curves_per_class(self):
        text = render_recovery_report(self._result([
            self._run(FAULT_CORRUPTED, True, round_=1),
            self._run(FAULT_CORRUPTED, False),
            self._run(FAULT_MISLEADING, True, round_=3),
            self._run(FAULT_BUDGET, True, round_=2, rounds=2),
        ]))
        lines = {line.split()[0]: line for line in text.splitlines()
                 if line.startswith(("corrupted", "misleading",
                                     "budget"))}
        assert "50.00%" in lines[FAULT_CORRUPTED]
        assert "k<=1:50.00%" in lines[FAULT_CORRUPTED]
        assert "k<=2:50.00%" in lines[FAULT_CORRUPTED]
        assert "100.00%" in lines[FAULT_MISLEADING]
        assert "k<=1:0.00%" in lines[FAULT_MISLEADING]
        assert "k<=3:100.00%" in lines[FAULT_MISLEADING]
        assert "k<=2:100.00%" in lines[FAULT_BUDGET]
