"""Two processes writing one campaign store concurrently.

Entry and blob files land independently per writer (tmp + atomic
rename), so concurrent writers must never produce a torn blob; only
the advisory manifest is racy (last writer wins), and listing through
the entry files sees every writer's entries regardless of whose
manifest flush landed last.
"""

import json
import multiprocessing

from repro.eval import CampaignStore, EvalLevel, TaskRun, store_key
from repro.eval.store import key_digest
from repro.hdl.context import SimContext
from repro.llm.base import Usage

N_PER_WRITER = 25


def _writer_key(writer: str, index: int) -> dict:
    return store_key("baseline", f"{writer}_task_{index}", index,
                     "gpt-4o", "S1", 20, SimContext())


def _writer_run(writer: str, index: int) -> TaskRun:
    return TaskRun(method="baseline", task_id=f"{writer}_task_{index}",
                   kind="CMB", seed=index, level=EvalLevel.EVAL2,
                   usage=Usage(index, len(writer)))


def _hammer(root, writer, barrier):
    store = CampaignStore(root)
    barrier.wait(timeout=60)  # maximise interleaving
    for index in range(N_PER_WRITER):
        store.put(_writer_key(writer, index), _writer_run(writer, index))


def test_two_writers_share_one_store(tmp_path):
    CampaignStore(tmp_path)  # lay out the store before the race
    mp = multiprocessing.get_context("spawn")  # no inherited state
    barrier = mp.Barrier(2)
    writers = ("alpha", "beta")
    procs = [mp.Process(target=_hammer, args=(str(tmp_path), w, barrier))
             for w in writers]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    store = CampaignStore(tmp_path)
    # Both writers' entries landed — nothing overwrote anything.
    assert len(store) == 2 * N_PER_WRITER
    expected = sorted(key_digest(_writer_key(w, i))
                      for w in writers for i in range(N_PER_WRITER))
    assert list(store.export_keys()) == expected
    # No torn blobs: every entry reads back equal to what its writer
    # stored, through full content-hash verification.
    for writer in writers:
        for index in range(N_PER_WRITER):
            assert store.get(_writer_key(writer, index)) \
                == _writer_run(writer, index)
    assert store.stats()["hits"] == 2 * N_PER_WRITER

    # The manifest is last-writer-wins and may miss the other writer's
    # late entries, but it must parse, carry the right version, and
    # only reference entries that exist on disk.
    manifest = json.loads((tmp_path / "manifest.json").read_bytes())
    assert manifest["version"] == 1
    on_disk = set(store.export_keys())
    assert set(manifest["entries"]) <= on_disk
    # Dropping the advisory manifest forces a rebuild from the entry
    # files, reconciling the index with the disk truth.
    (tmp_path / "manifest.json").unlink()
    assert len(CampaignStore(tmp_path).manifest()) == 2 * N_PER_WRITER


def test_interleaved_same_key_last_writer_wins(tmp_path):
    """Both processes hammer the *same* keys: whatever wins, every
    entry must reference a complete, verifiable blob (no torn state),
    and the final value is one of the two written."""
    mp = multiprocessing.get_context("spawn")
    barrier = mp.Barrier(2)

    procs = [mp.Process(target=_contend, args=(str(tmp_path), w, barrier))
             for w in ("alpha", "beta")]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    store = CampaignStore(tmp_path)
    assert len(store) == 10
    for index in range(10):
        key = store_key("baseline", f"contended_{index}", 0, "gpt-4o",
                        "S1", 20, SimContext())
        run = store.get(key)  # verifies content hash + key binding
        assert run is not None
        assert run.usage.input_tokens in (0, 1)  # alpha's or beta's


def _contend(root, writer, barrier):
    store = CampaignStore(root)
    barrier.wait(timeout=60)
    tag = 0 if writer == "alpha" else 1
    for index in range(10):
        key = store_key("baseline", f"contended_{index}", 0, "gpt-4o",
                        "S1", 20, SimContext())
        store.put(key, TaskRun(method="baseline",
                               task_id=f"contended_{index}", kind="CMB",
                               seed=0, level=EvalLevel.EVAL1,
                               usage=Usage(tag, 0)))
