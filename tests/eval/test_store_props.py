"""Property battery for the campaign artifact store.

Hypothesis drives arbitrary put/get/evict sequences against an
in-memory model dict, then reopens the store to check durability; a
second set of properties corrupts on-disk state arbitrarily and
asserts the store either answers correctly or raises the typed
integrity error — never silently serves suspect data.
"""

import json
import shutil
import tempfile
from pathlib import Path

from hypothesis import given, strategies as st

from repro.eval import (CampaignStore, EvalLevel, StoreError,
                        StoreIntegrityError, TaskRun, store_key)
from repro.eval.store import key_digest
from repro.hdl.context import SimContext
from repro.llm.base import Usage

CONTEXT = SimContext()
TASKS = ("cmb_and2", "cmb_eq4", "seq_dff")
METHODS = ("baseline", "autobench")


def _key(task_index: int, method_index: int, seed: int) -> dict:
    return store_key(METHODS[method_index], TASKS[task_index], seed,
                     "gpt-4o", "S1", 20, CONTEXT)


def _run(task_index: int, method_index: int, seed: int,
         level_index: int) -> TaskRun:
    return TaskRun(method=METHODS[method_index],
                   task_id=TASKS[task_index], kind="CMB", seed=seed,
                   level=EvalLevel(level_index),
                   usage=Usage(level_index, seed))


# One op: ("put"|"get"|"evict", task_index, method_index, seed,
# level_index) — a small key space so sequences revisit keys.
_ops = st.lists(
    st.tuples(st.sampled_from(("put", "get", "evict")),
              st.integers(0, len(TASKS) - 1),
              st.integers(0, len(METHODS) - 1),
              st.integers(0, 2), st.integers(0, 3)),
    max_size=30)


@given(_ops)
def test_store_matches_model_and_survives_reopen(ops):
    root = Path(tempfile.mkdtemp(prefix="repro-store-prop-"))
    try:
        store = CampaignStore(root)
        model: dict[str, TaskRun] = {}
        for op, task_index, method_index, seed, level_index in ops:
            key = _key(task_index, method_index, seed)
            digest = key_digest(key)
            if op == "put":
                run = _run(task_index, method_index, seed, level_index)
                store.put(key, run)
                model[digest] = run
            elif op == "get":
                assert store.get(key) == model.get(digest)
            else:
                assert store.evict(key) == (digest in model)
                model.pop(digest, None)
        # Live handle agrees with the model...
        assert len(store) == len(model)
        assert store.export_keys() == tuple(sorted(model))
        # ...and so does a cold reopen: everything put and not evicted
        # is durable, byte-verified, and equal to what went in.
        reopened = CampaignStore(root)
        assert not reopened.recovered_manifest
        assert len(reopened) == len(model)
        for key_record in reopened.keys():
            assert reopened.get(key_record) \
                == model[key_digest(key_record)]
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(st.integers(0, 2), st.integers(1, 40),
       st.binary(min_size=0, max_size=16))
def test_corrupted_blob_never_served(seed, cut, garbage):
    """Truncate a blob by an arbitrary amount and append arbitrary
    bytes: the read must raise StoreIntegrityError, never return a
    TaskRun that differs from what was stored."""
    root = Path(tempfile.mkdtemp(prefix="repro-store-prop-"))
    try:
        store = CampaignStore(root)
        key = _key(0, 0, seed)
        store.put(key, _run(0, 0, seed, 3))
        (blob_path,) = (root / "blobs").glob("*.json")
        data = blob_path.read_bytes()
        mutated = data[:-cut] + garbage
        if mutated == data:  # hypothesis reassembled the original
            assert store.get(key) == _run(0, 0, seed, 3)
            return
        blob_path.write_bytes(mutated)
        try:
            store.get(key)
        except StoreIntegrityError:
            pass
        else:
            raise AssertionError("corrupt blob was served")
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(st.binary(max_size=64), st.integers(1, 3))
def test_torn_manifest_recovered_or_rejected_loudly(garbage, n_entries):
    """Arbitrary bytes in manifest.json: reopening either recovers the
    full index from the entry files (flagging it) or raises the typed
    StoreError (a parseable manifest with a foreign version) — it never
    opens quietly with entries missing."""
    root = Path(tempfile.mkdtemp(prefix="repro-store-prop-"))
    try:
        store = CampaignStore(root)
        for seed in range(n_entries):
            store.put(_key(0, 0, seed), _run(0, 0, seed, 2))
        (root / "manifest.json").write_bytes(garbage)
        try:
            reopened = CampaignStore(root)
        except StoreError:
            manifest = json.loads(garbage)
            assert manifest["version"] != 1  # only a version skew throws
            return
        # The durable truth is always intact regardless of what the
        # manifest said...
        for seed in range(n_entries):
            assert reopened.get(_key(0, 0, seed)) == _run(0, 0, seed, 2)
        # ...and a genuinely unparseable manifest was rebuilt in full.
        if reopened.recovered_manifest:
            assert len(reopened.manifest()) == n_entries
    finally:
        shutil.rmtree(root, ignore_errors=True)
