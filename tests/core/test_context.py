"""SimContext resolution, isolation, shims and the cache facade.

Pins the PR-4 configuration API: explicit argument > active context >
env-seeded root; nested activations restore; contexts neither leak
across threads nor into pool workers (work items carry their own);
the deprecated ``set_default_*`` shims steer the root context; and the
``CacheRegistry`` facade fronts every cache layer.
"""

import threading

import pytest

from repro.core.caches import CacheRegistry, caches
from repro.core.simulation import (RUNTIME, run_driver, run_driver_batch,
                                   simulation_cache_stats)
from repro.eval.campaign import campaign_jobs_from_env
from repro.hdl import simulate
from repro.hdl.context import (ENGINE_COMPILED, ENGINE_INTERPRET,
                               LEXER_REFERENCE, MUTANT_LOCKSTEP,
                               MUTANT_PER_MUTANT, SimContext,
                               _context_from_env, current_context,
                               root_context, set_root_context, use_context)
from repro.hdl.simulator import set_default_engine
from repro.codegen import render_driver
from repro.problems import get_task

TB = 'module tb; initial begin $display("ok"); $finish; end endmodule'

LOOPY_TB = """
module tb;
    integer i;
    initial begin
        for (i = 0; i < 100000; i = i + 1) begin end
        $display("done");
        $finish;
    end
endmodule
"""


# ----------------------------------------------------------------------
# SimContext value semantics
# ----------------------------------------------------------------------
class TestSimContext:
    def test_defaults(self):
        context = SimContext()
        assert context.engine == ENGINE_COMPILED
        assert context.lexer == "master"
        assert context.jobs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SimContext(engine="quantum")
        with pytest.raises(ValueError):
            SimContext(lexer="treebank")
        with pytest.raises(ValueError):
            SimContext(max_time=0)
        with pytest.raises(ValueError):
            SimContext(jobs=-2)
        with pytest.raises(ValueError):
            SimContext(fuzz_seed="abc")

    def test_evolve_revalidates(self):
        context = SimContext()
        assert context.evolve(engine=ENGINE_INTERPRET).engine == \
            ENGINE_INTERPRET
        with pytest.raises(ValueError):
            context.evolve(engine="quantum")
        # evolve returns a new value; the original is untouched.
        assert context.engine == ENGINE_COMPILED

    def test_value_object(self):
        assert SimContext() == SimContext()
        assert hash(SimContext()) == hash(SimContext())
        import pickle
        context = SimContext(engine=ENGINE_INTERPRET, max_stmts=7)
        assert pickle.loads(pickle.dumps(context)) == context

    def test_warm_start_knobs(self):
        context = SimContext()
        assert context.start_method == "default"
        assert context.warm_start is True
        assert context.template_cache_size == 256
        assert context.evolve(start_method="spawn").start_method == "spawn"
        with pytest.raises(ValueError):
            SimContext(start_method="teleport")
        with pytest.raises(ValueError):
            SimContext(warm_start="yes")
        with pytest.raises(ValueError):
            SimContext(template_cache_size=0)


# ----------------------------------------------------------------------
# Resolution + isolation
# ----------------------------------------------------------------------
class TestResolution:
    def test_nested_use_context_restores(self):
        base = current_context()
        with use_context(engine=ENGINE_INTERPRET) as outer:
            assert current_context() is outer
            with use_context(max_stmts=99) as inner:
                assert current_context() is inner
                assert inner.engine == ENGINE_INTERPRET  # inherited
                assert inner.max_stmts == 99
            assert current_context() is outer
        assert current_context() == base

    def test_use_context_restores_on_exception(self):
        base = current_context()
        with pytest.raises(RuntimeError):
            with use_context(engine=ENGINE_INTERPRET):
                raise RuntimeError("boom")
        assert current_context() == base

    def test_explicit_argument_beats_context(self):
        with use_context(max_stmts=50):
            # Explicit limit wins over the active context's tiny cap.
            result = simulate(LOOPY_TB, "tb", max_stmts=10_000_000)
            assert result.stdout == ["done"]

    def test_context_limits_apply(self):
        from repro.hdl.errors import SimulationLimit
        with use_context(max_stmts=50):
            with pytest.raises(SimulationLimit):
                simulate(LOOPY_TB, "tb")

    def test_threads_do_not_inherit_activation(self):
        seen = {}

        def probe():
            seen["engine"] = current_context().engine

        with use_context(engine=ENGINE_INTERPRET):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        # A fresh thread starts without an activation: it resolves to
        # the root, not to another thread's request context.
        assert seen["engine"] == root_context().engine

    def test_shims_steer_root_context(self):
        original = root_context()
        try:
            with pytest.deprecated_call():
                set_default_engine(ENGINE_INTERPRET)
            assert root_context().engine == ENGINE_INTERPRET
            assert current_context().engine == ENGINE_INTERPRET
            # An activation still beats the steered root.
            with use_context(engine=ENGINE_COMPILED):
                assert current_context().engine == ENGINE_COMPILED
        finally:
            set_root_context(original)

    def test_set_root_context_type_checked(self):
        with pytest.raises(TypeError):
            set_root_context("compiled")


# ----------------------------------------------------------------------
# Environment seeding (the root context)
# ----------------------------------------------------------------------
class TestEnvSeeding:
    def test_full_seed(self):
        context, seeded = _context_from_env({
            "REPRO_SIM_ENGINE": "interpret",
            "REPRO_LEXER": "reference",
            "REPRO_JOBS": "3",
            "REPRO_FUZZ_PROGRAMS": "17",
            "REPRO_FUZZ_SEED": "42",
        })
        assert context == SimContext(
            engine=ENGINE_INTERPRET, lexer=LEXER_REFERENCE, jobs=3,
            fuzz_programs=17, fuzz_seed=42)
        assert seeded == {"engine", "lexer", "jobs", "fuzz_programs",
                          "fuzz_seed"}

    def test_invalid_lexer_warns_and_falls_back(self, capsys):
        context, seeded = _context_from_env({"REPRO_LEXER": "treebank"})
        assert context.lexer == "master"
        assert "lexer" not in seeded
        assert "REPRO_LEXER" in capsys.readouterr().err

    def test_malformed_jobs_warns_and_falls_back(self, capsys):
        # Satellite fix: a malformed REPRO_JOBS used to raise ValueError
        # out of campaign_jobs_from_env; now it degrades like
        # REPRO_SIM_ENGINE does.
        context, seeded = _context_from_env({"REPRO_JOBS": "four"})
        assert context.jobs == 1
        assert "jobs" not in seeded
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err and "four" in err

    def test_jobs_zero_means_all_cores(self):
        import os
        context, seeded = _context_from_env({"REPRO_JOBS": "0"})
        assert context.jobs == (os.cpu_count() or 1)
        assert "jobs" in seeded

    def test_malformed_fuzz_budget_warns(self, capsys):
        context, seeded = _context_from_env(
            {"REPRO_FUZZ_PROGRAMS": "lots"})
        assert context.fuzz_programs == SimContext().fuzz_programs
        assert not seeded
        assert "REPRO_FUZZ_PROGRAMS" in capsys.readouterr().err

    def test_warm_start_knobs_seed(self):
        context, seeded = _context_from_env({
            "REPRO_START_METHOD": "spawn",
            "REPRO_WARM_START": "0",
            "REPRO_TEMPLATE_CACHE_SIZE": "64",
            "REPRO_TEMPLATE_CACHE_BUDGET": "512",
        })
        assert context.start_method == "spawn"
        assert context.warm_start is False
        assert context.template_cache_size == 64
        assert context.template_cache_budget == 512
        assert {"start_method", "warm_start", "template_cache_size",
                "template_cache_budget"} <= seeded

    def test_trace_dir_seeds(self, tmp_path):
        context, seeded = _context_from_env(
            {"REPRO_TRACE_DIR": str(tmp_path)})
        assert context.trace_dir == str(tmp_path)
        assert seeded == {"trace_dir"}
        # Unset means tracing stays off.
        assert _context_from_env({})[0].trace_dir == ""

    def test_store_dir_seeds(self, tmp_path):
        context, seeded = _context_from_env(
            {"REPRO_STORE_DIR": str(tmp_path)})
        assert context.store_dir == str(tmp_path)
        assert seeded == {"store_dir"}
        # Unset means campaigns run store-less.
        assert _context_from_env({})[0].store_dir == ""

    def test_mutant_engine_seeds(self):
        context, seeded = _context_from_env(
            {"REPRO_MUTANT_ENGINE": "per-mutant"})
        assert context.mutant_engine == MUTANT_PER_MUTANT
        assert seeded == {"mutant_engine"}
        # Unset means lockstep.
        assert _context_from_env({})[0].mutant_engine == MUTANT_LOCKSTEP

    def test_malformed_mutant_engine_warns_and_falls_back(self, capsys):
        context, seeded = _context_from_env(
            {"REPRO_MUTANT_ENGINE": "icarus"})
        assert context.mutant_engine == MUTANT_LOCKSTEP
        assert "mutant_engine" not in seeded
        err = capsys.readouterr().err
        assert "REPRO_MUTANT_ENGINE" in err and "icarus" in err

    def test_mutant_engine_validated(self):
        with pytest.raises(ValueError):
            SimContext(mutant_engine="schemata")

    def test_trace_and_budget_validated(self):
        with pytest.raises(ValueError):
            SimContext(trace_dir=123)
        with pytest.raises(ValueError):
            SimContext(store_dir=123)
        with pytest.raises(ValueError):
            SimContext(template_cache_budget=0)

    def test_llm_backend_validated(self):
        for spec in ("", "synthetic", "ollama", "openai", "hf",
                     "fixture", "fixture+synthetic", "fixture+hf"):
            assert SimContext(llm_backend=spec).llm_backend == spec
        for spec in ("bard", "fixture+fixture", "fixture+bard",
                     "ollama+fixture", 7):
            with pytest.raises(ValueError, match="llm_backend"):
                SimContext(llm_backend=spec)

    def test_llm_strings_validated(self):
        with pytest.raises(ValueError, match="llm_model"):
            SimContext(llm_model=3)
        with pytest.raises(ValueError, match="llm_base_url"):
            SimContext(llm_base_url=None)

    def test_llm_knobs_seed(self, tmp_path):
        context, seeded = _context_from_env({
            "REPRO_LLM_BACKEND": "fixture+ollama",
            "REPRO_LLM_MODEL": "qwen2.5:7b",
            "REPRO_LLM_BASE_URL": "http://gpu-box:11434",
            "REPRO_LLM_FIXTURE_DIR": str(tmp_path),
        })
        assert context.llm_backend == "fixture+ollama"
        assert context.llm_model == "qwen2.5:7b"
        assert context.llm_base_url == "http://gpu-box:11434"
        assert context.llm_fixture_dir == str(tmp_path)
        assert {"llm_backend", "llm_model", "llm_base_url",
                "llm_fixture_dir"} <= seeded
        # Unset means the synthetic tier.
        assert _context_from_env({})[0].llm_backend == ""

    def test_malformed_llm_backend_warns_and_falls_back(self, capsys):
        context, seeded = _context_from_env(
            {"REPRO_LLM_BACKEND": "bard"})
        assert context.llm_backend == ""
        assert "llm_backend" not in seeded
        err = capsys.readouterr().err
        assert "REPRO_LLM_BACKEND" in err and "bard" in err

    def test_malformed_warm_start_knobs_warn(self, capsys):
        context, seeded = _context_from_env({
            "REPRO_START_METHOD": "teleport",
            "REPRO_WARM_START": "maybe",
            "REPRO_TEMPLATE_CACHE_SIZE": "0",
            "REPRO_TEMPLATE_CACHE_BUDGET": "none",
        })
        assert context == SimContext()
        assert not seeded
        err = capsys.readouterr().err
        assert "REPRO_START_METHOD" in err
        assert "REPRO_WARM_START" in err
        assert "REPRO_TEMPLATE_CACHE_SIZE" in err
        assert "REPRO_TEMPLATE_CACHE_BUDGET" in err

    def test_campaign_jobs_prefers_active_context(self):
        with use_context(jobs=5):
            assert campaign_jobs_from_env(default=1) == 5
        # Without an activation (and REPRO_JOBS unset in the test env)
        # the caller's default applies.
        assert campaign_jobs_from_env(default=7) == 7

    def test_campaign_jobs_honours_steered_root(self):
        original = root_context()
        try:
            set_root_context(original.evolve(jobs=6))
            assert campaign_jobs_from_env(default=4) == 6
        finally:
            set_root_context(original)
        assert campaign_jobs_from_env(default=4) == 4


# ----------------------------------------------------------------------
# Contexts travel to pool workers / don't leak between items
# ----------------------------------------------------------------------
class TestWorkerIsolation:
    def _driver_and_dut(self):
        task = get_task("cmb_and2")
        return (render_driver(task, task.canonical_scenarios()),
                task.golden_rtl())

    def test_batch_ships_context_to_workers(self):
        driver, dut = self._driver_and_dut()
        # A starved time budget must reach the worker processes: if
        # they fell back to their own root context the runs would
        # succeed.  (max_time starves reliably on both engines; the
        # compiled engine only charges max_stmts at loop back-edges.)
        with use_context(max_time=1):
            runs = run_driver_batch(driver, [dut, dut + " // v2"], jobs=2)
        assert all(run.status == RUNTIME for run in runs)
        # Outside the activation the same batch is healthy again, on
        # the same (persistent) workers.
        runs = run_driver_batch(driver, [dut, dut + " // v2"], jobs=2)
        assert all(run.ok for run in runs)

    def test_serial_runs_do_not_leak_limits(self):
        driver, dut = self._driver_and_dut()
        with use_context(max_time=1):
            starved = run_driver(driver, dut)
        assert starved.status == RUNTIME
        assert run_driver(driver, dut).ok


# ----------------------------------------------------------------------
# CacheRegistry facade
# ----------------------------------------------------------------------
class TestCacheRegistry:
    def test_registered_layers(self):
        # "llm_responses" registers when repro.llm.backends loads (the
        # campaign module pulls it in), after the simulation layers.
        assert caches.names() == ("tokenize", "parse", "design", "pair",
                                  "failure", "programs", "union",
                                  "llm_responses")

    def test_stats_shape_matches_legacy_helper(self):
        assert simulation_cache_stats() == caches.stats()
        assert set(caches.stats()) == set(caches.names())

    def test_selective_clear(self):
        registry = CacheRegistry()
        calls = []
        registry.register("a", clear=lambda: calls.append("a"),
                          stats=lambda: {"n": 1})
        registry.register("b", clear=lambda: calls.append("b"))
        registry.clear("a")
        registry.clear()
        assert calls == ["a", "a", "b"]
        # Entries without a stats fn are skipped by stats().
        assert registry.stats() == {"a": {"n": 1}}

    def test_unknown_names_rejected(self):
        registry = CacheRegistry()
        registry.register("a", clear=lambda: None)
        with pytest.raises(ValueError):
            registry.register("a", clear=lambda: None)
        with pytest.raises(KeyError):
            registry.clear("zz")
        with pytest.raises(KeyError):
            registry.stats("zz")
