"""Persistent simulation worker pool: reuse, growth, clean shutdown."""

import os
import subprocess
import sys
from pathlib import Path

from repro.codegen import render_driver
from repro.core.simulation import (get_sim_pool, run_driver_batch,
                                   shutdown_sim_pool, sim_pool_info)
from repro.problems import get_task

REPO_ROOT = Path(__file__).resolve().parents[2]


def _driver_and_duts():
    task = get_task("cmb_eq4")
    driver = render_driver(task, task.canonical_scenarios())
    golden = task.golden_rtl()
    # A second, distinct-but-valid DUT variant so the batch has two
    # unique pairs (jobs only engage with > 1 unique DUT).
    variant = golden.replace("endmodule", "\n// variant\nendmodule")
    return driver, [golden, variant]


class TestPoolLifecycle:
    def test_pool_reused_across_batches(self):
        """Two consecutive batch calls must run on the same workers
        (same pool object, same worker PIDs) — the per-batch spin-up is
        gone."""
        shutdown_sim_pool()
        driver, duts = _driver_and_duts()

        runs1 = run_driver_batch(driver, duts, jobs=2)
        info1 = sim_pool_info()
        assert all(run.ok for run in runs1)
        assert info1["alive"] and info1["pids"]

        runs2 = run_driver_batch(driver, list(reversed(duts)), jobs=2)
        info2 = sim_pool_info()
        assert all(run.ok for run in runs2)
        assert info2["pids"] == info1["pids"]

    def test_pool_grows_monotonically(self):
        shutdown_sim_pool()
        pool1 = get_sim_pool(1)
        assert get_sim_pool(1) is pool1
        pool3 = get_sim_pool(3)
        assert pool3 is not pool1
        assert sim_pool_info()["workers"] == 3
        # A smaller request reuses the larger pool.
        assert get_sim_pool(2) is pool3
        shutdown_sim_pool()
        assert not sim_pool_info()["alive"]

    def test_shutdown_is_idempotent(self):
        shutdown_sim_pool()
        shutdown_sim_pool()
        assert not sim_pool_info()["alive"]
        # And the pool comes back after a shutdown.
        driver, duts = _driver_and_duts()
        runs = run_driver_batch(driver, duts, jobs=2)
        assert all(run.ok for run in runs)
        assert sim_pool_info()["alive"]

    def test_worker_pids_differ_from_parent(self):
        shutdown_sim_pool()
        pool = get_sim_pool(2)
        pids = {pool.submit(os.getpid).result() for _ in range(4)}
        assert os.getpid() not in pids
        info = sim_pool_info()
        assert pids <= set(info["pids"]) or info["pids"] == ()

    def test_batch_results_match_serial(self):
        driver, duts = _driver_and_duts()
        serial = run_driver_batch(driver, duts, jobs=1)
        pooled = run_driver_batch(driver, duts, jobs=2)
        assert [r.status for r in serial] == [r.status for r in pooled]
        assert [[rec.values for rec in r.records] for r in serial] \
            == [[rec.values for rec in r.records] for r in pooled]


def test_atexit_shutdown_is_clean():
    """A process that used the persistent pool must exit cleanly (the
    atexit hook tears the workers down; nothing hangs or leaks)."""
    code = (
        "from repro.codegen import render_driver\n"
        "from repro.core.simulation import run_driver_batch\n"
        "from repro.problems import get_task\n"
        "task = get_task('cmb_eq4')\n"
        "driver = render_driver(task, task.canonical_scenarios())\n"
        "golden = task.golden_rtl()\n"
        "variant = golden.replace('endmodule', '\\n//v\\nendmodule')\n"
        "runs = run_driver_batch(driver, [golden, variant], jobs=2)\n"
        "assert all(run.ok for run in runs)\n"
        "print('POOL_OK')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=REPO_ROOT, capture_output=True, text=True,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "POOL_OK" in proc.stdout
