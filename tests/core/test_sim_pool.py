"""Persistent simulation worker pool: reuse, growth, clean shutdown,
explicit start methods and warm-started workers."""

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.codegen import render_driver
from repro.core.simulation import (clear_simulation_caches, get_sim_pool,
                                   run_driver_batch, shutdown_sim_pool,
                                   sim_pool_info)
from repro.hdl import use_context
from repro.problems import get_task

REPO_ROOT = Path(__file__).resolve().parents[2]


def _driver_and_duts():
    task = get_task("cmb_eq4")
    driver = render_driver(task, task.canonical_scenarios())
    golden = task.golden_rtl()
    # A second, distinct-but-valid DUT variant so the batch has two
    # unique pairs (jobs only engage with > 1 unique DUT).
    variant = golden.replace("endmodule", "\n// variant\nendmodule")
    return driver, [golden, variant]


class TestPoolLifecycle:
    def test_pool_reused_across_batches(self):
        """Two consecutive batch calls must run on the same workers
        (same pool object, same worker PIDs) — the per-batch spin-up is
        gone."""
        shutdown_sim_pool()
        driver, duts = _driver_and_duts()

        runs1 = run_driver_batch(driver, duts, jobs=2)
        info1 = sim_pool_info()
        assert all(run.ok for run in runs1)
        assert info1["alive"] and info1["pids"]

        runs2 = run_driver_batch(driver, list(reversed(duts)), jobs=2)
        info2 = sim_pool_info()
        assert all(run.ok for run in runs2)
        assert info2["pids"] == info1["pids"]

    def test_pool_grows_monotonically(self):
        shutdown_sim_pool()
        pool1 = get_sim_pool(1)
        assert get_sim_pool(1) is pool1
        pool3 = get_sim_pool(3)
        assert pool3 is not pool1
        assert sim_pool_info()["workers"] == 3
        # A smaller request reuses the larger pool.
        assert get_sim_pool(2) is pool3
        shutdown_sim_pool()
        assert not sim_pool_info()["alive"]

    def test_shutdown_is_idempotent(self):
        shutdown_sim_pool()
        shutdown_sim_pool()
        assert not sim_pool_info()["alive"]
        # And the pool comes back after a shutdown.
        driver, duts = _driver_and_duts()
        runs = run_driver_batch(driver, duts, jobs=2)
        assert all(run.ok for run in runs)
        assert sim_pool_info()["alive"]

    def test_worker_pids_differ_from_parent(self):
        shutdown_sim_pool()
        pool = get_sim_pool(2)
        pids = {pool.submit(os.getpid).result() for _ in range(4)}
        assert os.getpid() not in pids
        info = sim_pool_info()
        assert pids <= set(info["pids"]) or info["pids"] == ()

    def test_batch_results_match_serial(self):
        driver, duts = _driver_and_duts()
        serial = run_driver_batch(driver, duts, jobs=1)
        pooled = run_driver_batch(driver, duts, jobs=2)
        assert [r.status for r in serial] == [r.status for r in pooled]
        assert [[rec.values for rec in r.records] for r in serial] \
            == [[rec.values for rec in r.records] for r in pooled]


class TestStartMethodAndWarmStart:
    def test_default_pool_reports_platform_method(self):
        shutdown_sim_pool()
        driver, duts = _driver_and_duts()
        run_driver_batch(driver, duts, jobs=1)  # warm the parent
        get_sim_pool(1)
        info = sim_pool_info()
        assert info["start_method"] == multiprocessing.get_start_method()
        # On fork platforms workers inherit warm caches through memory.
        if info["start_method"] == "fork":
            assert info["warm"] == "inherited"
        shutdown_sim_pool()

    def test_cold_created_pool_rewarmed_once_parent_warms(self):
        """A pool created before anything was cached must be recreated
        (warm) the first time warmth is requested on a warm parent —
        otherwise campaigns that pre-warm after an early batch would
        keep cold workers forever."""
        driver, duts = _driver_and_duts()
        clear_simulation_caches()
        shutdown_sim_pool()
        with use_context(start_method="spawn"):
            cold_pool = get_sim_pool(2)
            assert sim_pool_info()["warm"] == "cold"
            # Parent warms up after the pool exists (e.g. a serial run
            # or a campaign pre-warm)...
            run_driver_batch(driver, duts, jobs=1)
            # ...so the next warm-requesting lookup recreates the pool
            # with the snapshot on board — exactly once.
            warm_pool = get_sim_pool(2)
            assert warm_pool is not cold_pool
            info = sim_pool_info()
            assert info["warm"] == "snapshot"
            assert info["warm_layers"]["pair"] >= 2
            assert get_sim_pool(2) is warm_pool  # no churn afterwards
        shutdown_sim_pool()

    def test_unavailable_start_method_raises(self, monkeypatch):
        from repro.core.simulation import _resolve_start_method

        monkeypatch.setattr(multiprocessing, "get_all_start_methods",
                            lambda: ["fork", "spawn"])
        with pytest.raises(ValueError):
            _resolve_start_method("forkserver")

    def test_start_method_change_recreates_pool(self):
        shutdown_sim_pool()
        pool_default = get_sim_pool(2)
        with use_context(start_method="spawn", warm_start=False):
            pool_spawn = get_sim_pool(2)
            assert pool_spawn is not pool_default
            assert sim_pool_info()["start_method"] == "spawn"
        shutdown_sim_pool()

    def test_spawn_pool_matches_fork_results(self):
        """The acceptance equivalence: one batch through a spawn-started
        pool returns exactly what the (default) fork path returns."""
        driver, duts = _driver_and_duts()
        serial = run_driver_batch(driver, duts, jobs=1)
        shutdown_sim_pool()
        with use_context(start_method="spawn"):
            spawned = run_driver_batch(driver, duts, jobs=2)
            info = sim_pool_info()
        assert info["start_method"] == "spawn"
        assert [r.status for r in spawned] == [r.status for r in serial]
        assert [[rec.values for rec in r.records] for r in spawned] \
            == [[rec.values for rec in r.records] for r in serial]
        shutdown_sim_pool()

    def test_spawn_pool_ships_snapshot_when_parent_is_warm(self):
        driver, duts = _driver_and_duts()
        shutdown_sim_pool()
        # Warm the parent first so there is something to snapshot.
        run_driver_batch(driver, duts, jobs=1)
        with use_context(start_method="spawn"):
            get_sim_pool(2)
            info = sim_pool_info()
        assert info["warm"] == "snapshot"
        assert info["warm_layers"]["pair"] >= 2
        assert info["warm_layers"]["parse"] >= 3
        shutdown_sim_pool()

    def test_warm_start_off_means_cold_spawn_pool(self):
        driver, duts = _driver_and_duts()
        shutdown_sim_pool()
        run_driver_batch(driver, duts, jobs=1)
        with use_context(start_method="spawn", warm_start=False):
            runs = run_driver_batch(driver, duts, jobs=2)
            info = sim_pool_info()
        assert all(run.ok for run in runs)
        assert info["warm"] == "cold" and info["warm_layers"] == {}
        shutdown_sim_pool()

    def test_cold_parent_spawn_pool_reports_cold(self):
        clear_simulation_caches()
        shutdown_sim_pool()
        with use_context(start_method="spawn"):
            get_sim_pool(1)
            info = sim_pool_info()
        assert info["warm"] == "cold"
        shutdown_sim_pool()


def test_atexit_shutdown_is_clean():
    """A process that used the persistent pool must exit cleanly (the
    atexit hook tears the workers down; nothing hangs or leaks)."""
    code = (
        "from repro.codegen import render_driver\n"
        "from repro.core.simulation import run_driver_batch\n"
        "from repro.problems import get_task\n"
        "task = get_task('cmb_eq4')\n"
        "driver = render_driver(task, task.canonical_scenarios())\n"
        "golden = task.golden_rtl()\n"
        "variant = golden.replace('endmodule', '\\n//v\\nendmodule')\n"
        "runs = run_driver_batch(driver, [golden, variant], jobs=2)\n"
        "assert all(run.ok for run in runs)\n"
        "print('POOL_OK')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=REPO_ROOT, capture_output=True, text=True,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "POOL_OK" in proc.stdout
