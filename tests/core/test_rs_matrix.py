"""RS matrix construction and the three validation criteria."""

from repro.core import (CRITERION_100, CRITERION_50, CRITERION_70, decide)
from repro.core.rs_matrix import RSRow, build_matrix


def matrix_from_grid(grid, discarded=()):
    """Build an RSMatrix from a list of '01' strings (1 = green)."""
    n_scenarios = len(grid[0])
    scenario_indexes = tuple(range(1, n_scenarios + 1))
    rows = []
    for i, row_text in enumerate(grid):
        if i in discarded:
            rows.append(RSRow(i, None, "syntax"))
        else:
            cells = {s: row_text[s - 1] == "1" for s in scenario_indexes}
            rows.append(RSRow(i, cells))
    return build_matrix(scenario_indexes, rows)


class TestMatrixStats:
    def test_column_wrong_fraction(self):
        matrix = matrix_from_grid(["011", "001", "111", "011"])
        assert matrix.column_wrong_fraction(1) == 0.75
        assert matrix.column_wrong_fraction(2) == 0.25
        assert matrix.column_wrong_fraction(3) == 0.0

    def test_discarded_rows_excluded(self):
        matrix = matrix_from_grid(["10", "00", "11"], discarded=(1,))
        assert matrix.n_valid == 2
        assert matrix.column_wrong_fraction(2) == 0.5

    def test_fully_green_row_fraction(self):
        matrix = matrix_from_grid(["111", "110", "111", "000"])
        assert matrix.fully_green_row_fraction() == 0.5

    def test_ascii_rendering(self):
        matrix = matrix_from_grid(["10", "01"], discarded=())
        art = matrix.render_ascii()
        assert "#" in art and "X" in art

    def test_missing_column_data_is_none(self):
        rows = [RSRow(0, {1: True})]  # no data for scenario 2
        matrix = build_matrix((1, 2), rows)
        assert matrix.column_wrong_fraction(2) is None


class TestCriteria:
    def test_all_green_is_correct_everywhere(self):
        matrix = matrix_from_grid(["1111"] * 10)
        for criterion in (CRITERION_100, CRITERION_70, CRITERION_50):
            report = decide(matrix, criterion)
            assert report.verdict is True
            assert report.wrong == ()

    def test_fully_red_column_fails_all_criteria(self):
        # Column 2 fully red; no fully-green rows.
        matrix = matrix_from_grid(["101"] * 10)
        for criterion in (CRITERION_100, CRITERION_70, CRITERION_50):
            report = decide(matrix, criterion)
            assert report.verdict is False
            assert 2 in report.wrong

    def test_70_percent_column(self):
        # Column 1 wrong in 7 of 10 rows (and no fully-green rows, so the
        # row override cannot kick in) -> 70%-wrong flags it, the naive
        # 100%-wrong does not.
        grid = ["01"] * 7 + ["10"] * 3
        matrix = matrix_from_grid(grid)
        assert decide(matrix, CRITERION_100).verdict is True
        report = decide(matrix, CRITERION_70)
        assert report.verdict is False
        assert report.wrong == (1,)

    def test_50_percent_is_stricter_than_70(self):
        # Column 1 wrong in 6 of 10 rows: flagged by 50%, not by 70%.
        grid = ["01"] * 6 + ["10"] * 4
        matrix = matrix_from_grid(grid)
        assert decide(matrix, CRITERION_70).verdict is True
        assert decide(matrix, CRITERION_50).verdict is False

    def test_green_row_override(self):
        # Column 1 is 70% wrong, but 30% of rows are fully green ->
        # the 70%-wrong criterion declares the TB correct outright.
        grid = ["01"] * 7 + ["11"] * 3
        matrix = matrix_from_grid(grid)
        report = decide(matrix, CRITERION_70)
        assert report.verdict is True
        assert "green-row override" in report.note

    def test_100_percent_has_no_row_override(self):
        # A fully-red column fails 100%-wrong even with many green rows.
        grid = ["01"] * 7 + ["11"] * 0
        matrix = matrix_from_grid(["01"] * 7)
        assert decide(matrix, CRITERION_100).verdict is False

    def test_uncertain_band(self):
        # Column 1 wrong in 5 of 9 rows: below the 70% threshold, above
        # half of it -> uncertain.  Only 2 of 9 rows are fully green, so
        # the row override stays quiet.
        grid = ["01"] * 5 + ["10"] * 2 + ["11"] * 2
        matrix = matrix_from_grid(grid)
        report = decide(matrix, CRITERION_70)
        assert report.verdict is True
        assert 1 in report.uncertain
        assert 2 in report.correct

    def test_no_valid_rows_is_wrong(self):
        matrix = matrix_from_grid(["11", "11"], discarded=(0, 1))
        report = decide(matrix, CRITERION_70)
        assert report.verdict is False
        assert report.note == "no valid judge rows"
