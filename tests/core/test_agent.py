"""Algorithm 1 semantics, tested with a scripted pipeline.

The fake generator/validator/corrector let us assert the exact action
sequences of the paper's Algorithm 1 without any simulation cost:
correction budget per boot, reboot budget, counter reset on reboot, and
the give-up path.
"""

from dataclasses import dataclass, field

import pytest

import repro.core.agent as agent_mod
from repro.core.agent import CorrectBenchWorkflow
from repro.core.artifacts import HybridTestbench
from repro.core.validator import ValidationReport
from repro.problems import get_task


def _tb(attempt, correction=0, origin="autobench"):
    return HybridTestbench(
        task_id="t", driver_src=f"driver-{attempt}",
        checker_src=f"checker-{attempt}-{correction}",
        scenarios=((1, "s"),), origin=origin,
        generation_index=attempt, correction_index=correction)


@dataclass
class ScriptedPipeline:
    """verdicts[key] -> bool; key is (attempt, correction)."""

    verdicts: dict
    generated: list = field(default_factory=list)
    corrected: list = field(default_factory=list)
    validated: list = field(default_factory=list)

    # generator
    def generate(self, attempt=0):
        self.generated.append(attempt)
        return _tb(attempt)

    # validator
    def validate(self, tb):
        key = (tb.generation_index, tb.correction_index)
        self.validated.append(key)
        verdict = self.verdicts.get(key, False)
        return ValidationReport(verdict,
                                wrong=() if verdict else (1,))

    # corrector
    def correct(self, task, tb, report, correction_round):
        self.corrected.append(correction_round)
        from repro.core.corrector import CorrectionOutcome
        return CorrectionOutcome(
            _tb(tb.generation_index, correction_round, "corrector"),
            "reasoning", True)


@pytest.fixture()
def scripted(monkeypatch):
    """Patch the workflow's collaborators with the scripted pipeline."""
    def install(verdicts, **kwargs):
        pipeline = ScriptedPipeline(verdicts)
        monkeypatch.setattr(agent_mod, "AutoBenchGenerator",
                            lambda client, task: pipeline)
        monkeypatch.setattr(
            agent_mod, "ScenarioValidator",
            lambda client, task, criterion, group_size: pipeline)
        monkeypatch.setattr(agent_mod, "Corrector",
                            lambda client: pipeline)
        workflow = CorrectBenchWorkflow(client=None,
                                        task=get_task("cmb_eq4"),
                                        **kwargs)
        return pipeline, workflow
    return install


class TestAlgorithm1:
    def test_immediate_pass(self, scripted):
        pipeline, workflow = scripted({(0, 0): True})
        result = workflow.run()
        assert result.validated
        assert result.corrections == 0
        assert result.reboots == 0
        assert result.history[-1].action == "Pass"

    def test_corrections_before_reboot(self, scripted):
        # Wrong until the 2nd correction succeeds.
        pipeline, workflow = scripted({(0, 2): True})
        result = workflow.run()
        assert result.corrections == 2
        assert result.reboots == 0
        assert result.final_tb.origin == "corrector"
        assert [e.action for e in result.history] == [
            "Correcting", "Correcting", "Pass"]

    def test_reboot_after_correction_budget(self, scripted):
        # Boot 0 never validates; boot 1's raw TB does.
        pipeline, workflow = scripted({(1, 0): True})
        result = workflow.run()
        assert result.reboots == 1
        assert result.corrections == 3  # I_C^max exhausted on boot 0
        actions = [e.action for e in result.history]
        assert actions == ["Correcting", "Correcting", "Correcting",
                           "Rebooting", "Pass"]

    def test_correction_counter_resets_per_boot(self, scripted):
        # Boot 0 burns 3 corrections; boot 1 validates after 1 more —
        # only possible if I_C was reset by the reboot (Algorithm 1
        # line 13).
        pipeline, workflow = scripted({(1, 4): True})
        result = workflow.run()
        assert result.reboots == 1
        assert result.corrections == 4
        assert result.validated

    def test_gives_up_after_budgets(self, scripted):
        pipeline, workflow = scripted({})  # nothing ever validates
        result = workflow.run()
        assert result.gave_up
        assert not result.validated
        assert result.reboots == 10
        assert result.corrections == 3 * 11  # 3 per boot, 11 boots
        assert result.history[-1].action == "Pass"

    def test_custom_budgets(self, scripted):
        pipeline, workflow = scripted({}, ic_max=1, ir_max=2)
        result = workflow.run()
        assert result.reboots == 2
        assert result.corrections == 3  # 1 per boot, 3 boots

    def test_generator_called_once_per_boot(self, scripted):
        pipeline, workflow = scripted({})
        workflow.run()
        assert pipeline.generated == list(range(11))

    def test_took_any_action_flag(self, scripted):
        pipeline, workflow = scripted({(0, 0): True})
        assert workflow.run().took_any_action is False
        pipeline, workflow = scripted({(0, 1): True})
        assert workflow.run().took_any_action is True
