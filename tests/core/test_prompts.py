"""Prompt templates: every stage's prompt carries the inputs it claims."""

from repro.core import prompts


def test_scenario_prompt_embeds_spec():
    text = prompts.scenario_prompt("THE-SPEC-TEXT")
    assert "THE-SPEC-TEXT" in text
    assert "[RTL SPEC]" in text


def test_driver_prompt_states_contract():
    text = prompts.driver_prompt("spec", "1. [a] b")
    assert "results.txt" in text
    assert "scenario: %d" in text
    assert "// Scenario <n>" in text
    assert "1. [a] b" in text


def test_checker_prompt_names_interface():
    text = prompts.checker_prompt("spec", "listing")
    assert "RefModel" in text
    assert "step(self, inputs: dict)" in text


def test_syntax_fix_prompt_includes_error_and_code():
    text = prompts.syntax_fix_prompt("Verilog", "unexpected token",
                                     "module m; endmodule")
    assert "unexpected token" in text
    assert "module m; endmodule" in text


def test_scenario_fix_prompt_lists_missing():
    text = prompts.scenario_fix_prompt([3, 5], "driver code")
    assert "[3, 5]" in text


def test_rtl_prompt_numbers_attempts():
    assert "attempt 4" in prompts.rtl_prompt("spec", 3)


def test_baseline_prompt_defines_verdict_markers():
    text = prompts.baseline_prompt("spec")
    assert "ALL_TESTS_PASSED" in text
    assert "TESTS_FAILED" in text


def test_corrector_stage1_carries_bug_information():
    text = prompts.corrector_stage1_prompt(
        "spec", "1. reset", wrong=(2, 3), correct=(1,), uncertain=(4,),
        driver_src="DRV", checker_src="CHK")
    assert "wrong: [2, 3]" in text
    assert "correct: [1]" in text
    assert "uncertain: [4]" in text
    assert "DRV" in text and "CHK" in text
    # The paper's three guided questions (Fig. 5).
    assert "1." in text and "2." in text and "3." in text


def test_corrector_stage2_formatting_rules():
    text = prompts.corrector_stage2_prompt()
    assert "one python code block" in text
    assert "RefModel" in text
