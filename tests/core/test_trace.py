"""Trace recording, parsing, and replay (repro.core.trace / llm.replay).

The integration tests record a real workflow run against the synthetic
model, then re-run the *whole pipeline* from the file: a faithful build
reproduces the recorded round verdicts bit for bit, and a mid-trace
resume replays a prefix before handing the session to a live client.
"""

import json

import pytest

from repro.core.agent import CorrectBenchWorkflow
from repro.core.trace import (JsonlTraceSink, MemoryTraceSink, Trace,
                              TraceFormatError, TraceSession,
                              TRACE_VERSION, current_trace_session,
                              fault_fingerprint, load_trace, parse_trace,
                              replay_workflow, resolve_trace_sink,
                              use_trace_session)
from repro.core.validator import DEFAULT_CRITERION
from repro.hdl.context import current_context, use_context
from repro.llm import MeteredClient, UsageMeter, get_profile
from repro.llm.base import (ChatMessage, ChatRequest, ChatResponse,
                            GenerationIntent, Usage)
from repro.llm.replay import (ReplayClient, ReplayExhausted,
                              ReplayMismatch, prompt_sha)
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

#: (task, seed) pairs: one quick single-round session and one that
#: takes several correction rounds (needed for mid-trace resume).
QUICK = ("cmb_eq4", 3)
MULTI_ROUND = ("cmb_add16", 0)


def _record(task_id, seed, sink=None):
    sink = sink if sink is not None else MemoryTraceSink()
    client = MeteredClient(
        SyntheticLLM(get_profile("gpt-4o-mini"), seed=seed), UsageMeter())
    workflow = CorrectBenchWorkflow(client, get_task(task_id),
                                    DEFAULT_CRITERION, trace_sink=sink)
    result = workflow.run()
    return result, sink


def _request(kind="demo", content="hello"):
    return ChatRequest(messages=(ChatMessage("user", content),),
                       intent=GenerationIntent(kind, "t", {}))


def _exchange(kind="demo", content="hello", response="world",
              usage=(3, 5)):
    return {"kind": kind, "prompt_sha": prompt_sha(content),
            "response": response,
            "usage": {"input_tokens": usage[0], "output_tokens": usage[1]},
            "model": "recorded-model"}


# ----------------------------------------------------------------------
class TestParsing:
    def test_rejects_invalid_json(self):
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            parse_trace(["{broken"])

    def test_rejects_unknown_event_type(self):
        with pytest.raises(TraceFormatError, match="not a trace event"):
            parse_trace([json.dumps({"type": "mystery"})])

    def test_rejects_version_mismatch(self):
        line = json.dumps({"type": "session", "version": TRACE_VERSION + 1})
        with pytest.raises(TraceFormatError, match="version"):
            parse_trace([line])

    def test_rejects_headerless_stream(self):
        line = json.dumps({"type": "result", "validated": True})
        with pytest.raises(TraceFormatError, match="session header"):
            parse_trace([line])

    def test_blank_lines_skipped(self):
        line = json.dumps({"type": "session", "version": TRACE_VERSION})
        trace = parse_trace(["", line, "   "])
        assert trace.header["version"] == TRACE_VERSION

    def test_exchanges_through_round_bounds(self):
        trace = Trace((
            {"type": "session", "version": TRACE_VERSION},
            {"type": "validation", "round": 1, "exchanges_so_far": 7,
             "verdict": False, "wrong": [1], "checker_sha": "x"},
        ))
        assert trace.exchanges_through_round(1) == 7
        with pytest.raises(ValueError):
            trace.exchanges_through_round(0)
        with pytest.raises(ValueError):
            trace.exchanges_through_round(2)


class TestSinks:
    def test_jsonl_sink_is_lazy_and_flushes_lines(self, tmp_path):
        path = tmp_path / "nested" / "t.trace.jsonl"
        sink = JsonlTraceSink(str(path))
        assert not path.exists()  # no event, no file
        sink.emit({"type": "session", "version": TRACE_VERSION})
        assert path.exists()
        sink.emit({"type": "result", "validated": True, "gave_up": False,
                   "corrections": 0, "reboots": 0, "rounds": 1,
                   "usage": None})
        sink.close()
        trace = load_trace(str(path))
        assert trace.header["version"] == TRACE_VERSION
        assert trace.result()["validated"] is True

    def test_resolve_sink_off_by_default(self):
        assert current_context().trace_dir == ""
        assert resolve_trace_sink("cmb_and2") is None

    def test_resolve_sink_builds_labelled_path(self, tmp_path):
        with use_context(current_context().evolve(
                trace_dir=str(tmp_path))):
            plain = resolve_trace_sink("cmb_and2")
            labelled = resolve_trace_sink("cmb_and2", "recovery")
        assert plain.path == str(tmp_path / "cmb_and2.trace.jsonl")
        assert labelled.path == str(
            tmp_path / "cmb_and2.recovery.trace.jsonl")


class TestSession:
    def test_exchange_counter_and_round_anchor(self):
        sink = MemoryTraceSink()
        session = TraceSession(sink)
        response = ChatResponse("ok", Usage(1, 2), "m")
        session.record_exchange(_request(content="a"), response)
        session.record_exchange(_request(content="b"), response)
        events = sink.events
        assert [e["index"] for e in events] == [0, 1]
        assert events[0]["prompt_sha"] == prompt_sha("a")
        assert events[0]["usage"] == {"input_tokens": 1,
                                      "output_tokens": 2}

    def test_context_var_activation_nests(self):
        assert current_trace_session() is None
        outer = TraceSession(MemoryTraceSink())
        inner = TraceSession(MemoryTraceSink())
        with use_trace_session(outer):
            assert current_trace_session() is outer
            with use_trace_session(inner):
                assert current_trace_session() is inner
            assert current_trace_session() is outer
        assert current_trace_session() is None


class TestFaultFingerprint:
    def test_ledgerless_client_yields_empty(self):
        class Plain:
            name = "plain"
        assert fault_fingerprint(Plain(), "whatever") == ""

    def test_synthetic_artifacts_are_fingerprinted(self):
        result, sink = _record(*QUICK)
        validations = Trace(tuple(sink.events)).validations()
        assert validations
        fingerprint = validations[0]["fault_fingerprint"]
        assert fingerprint.startswith("checker:")


# ----------------------------------------------------------------------
class TestReplayClient:
    def test_answers_in_order_with_recorded_usage(self):
        client = ReplayClient([_exchange(content="hello")])
        response = client.complete(_request(content="hello"))
        assert response.text == "world"
        assert response.usage == Usage(3, 5)
        assert response.model_name == "recorded-model"
        assert client.replayed == 1 and client.exhausted

    def test_kind_mismatch_raises_even_lenient(self):
        client = ReplayClient([_exchange(kind="recorded")], strict=False)
        with pytest.raises(ReplayMismatch, match="intent"):
            client.complete(_request(kind="live"))

    def test_strict_prompt_drift_raises(self):
        client = ReplayClient([_exchange(content="hello")])
        with pytest.raises(ReplayMismatch, match="prompt diverged"):
            client.complete(_request(content="reworded"))

    def test_lenient_ignores_prompt_drift(self):
        client = ReplayClient([_exchange(content="hello")], strict=False)
        assert client.complete(_request(content="reworded")).text == "world"

    def test_exhaustion_without_handoff(self):
        client = ReplayClient([])
        with pytest.raises(ReplayExhausted):
            client.complete(_request())

    def test_limit_hands_off_to_live_client(self):
        class Live:
            name = "live"

            def complete(self, request):
                return ChatResponse("live-answer", Usage())

        client = ReplayClient(
            [_exchange(content="hello"), _exchange(content="later")],
            limit=1, handoff=Live())
        assert client.complete(_request(content="hello")).text == "world"
        assert client.exhausted
        assert client.complete(_request(content="x")).text == "live-answer"
        assert client.replayed == 1


# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.fixture(scope="class")
    def recorded(self):
        result, sink = _record(*QUICK)
        return result, Trace(tuple(sink.events))

    def test_recording_is_complete(self, recorded):
        result, trace = recorded
        header = trace.header
        assert header["task_id"] == QUICK[0]
        assert header["seed"] == QUICK[1]
        assert header["criterion"] == DEFAULT_CRITERION.name
        assert trace.exchanges()
        assert trace.validations()
        assert trace.result()["validated"] == result.validated
        usage = trace.result()["usage"]
        assert usage["requests"] == len(trace.exchanges())

    def test_strict_replay_reproduces_round_verdicts(self, recorded):
        result, trace = recorded
        outcome = replay_workflow(trace)
        assert outcome.matches
        assert outcome.diverged_round() is None
        assert outcome.result.validated == result.validated
        assert outcome.result.corrections == result.corrections

    def test_replay_reproduces_token_accounting(self, recorded):
        result, trace = recorded
        outcome = replay_workflow(trace)
        recorded_usage = trace.result()["usage"]
        replayed_usage = Trace(
            tuple(outcome.replayed.events)).result()["usage"]
        assert replayed_usage == recorded_usage

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        _record(*QUICK, sink=JsonlTraceSink(str(path)))
        outcome = replay_workflow(load_trace(str(path)))
        assert outcome.matches

    def test_tampered_response_diverges_or_mismatches(self, recorded):
        _, trace = recorded
        events = [dict(e) for e in trace.events]
        for event in events:
            if event["type"] == "exchange":
                event["prompt_sha"] = "0" * 64
                break
        with pytest.raises(ReplayMismatch):
            replay_workflow(Trace(tuple(events)))


class TestMidTraceResume:
    @pytest.fixture(scope="class")
    def recorded(self):
        result, sink = _record(*MULTI_ROUND)
        trace = Trace(tuple(sink.events))
        assert len(trace.validations()) >= 3, \
            "resume test needs a multi-round recording"
        return result, trace

    def test_prefix_replays_then_live_client_finishes(self, recorded):
        _, trace = recorded
        live = MeteredClient(
            SyntheticLLM(get_profile("gpt-4o-mini"), seed=MULTI_ROUND[1]),
            UsageMeter())
        outcome = replay_workflow(trace, rounds=2, handoff=live)
        assert outcome.handed_off_at == trace.exchanges_through_round(2)
        assert outcome.matches  # the replayed prefix agrees
        # The resumed session still runs to a decision.
        assert outcome.result.validated in (True, False)

    def test_full_replay_still_matches(self, recorded):
        _, trace = recorded
        outcome = replay_workflow(trace)
        assert outcome.matches
        assert len(outcome.replayed.validations()) == \
            len(trace.validations())
