"""DesignTemplate caching layers: failure caching, LRU behavior under
campaign-scale churn, per-task scoping, the capacity knob, and
stamped-state isolation between concurrent checkouts."""

import threading
from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.simulation as sim
from repro.core.caches import use_task_scope
from repro.core.simulation import (ELABORATION, clear_simulation_caches,
                                   design_template, run_driver,
                                   simulation_cache_stats)
from repro.codegen import render_driver
from repro.hdl import use_context
from repro.hdl.errors import ElaborationError, VerilogSyntaxError
from repro.problems import get_task

BAD_ELAB = ("module m(output o);\n"
            "assign o = ghost;\n"
            "endmodule")
BAD_SYNTAX = "module m(; endmodule"
GOOD = ("module m(output o);\n"
        "wire ghost = 1'b0;\n"
        "assign o = ghost;\n"
        "endmodule")


def _front_end_must_not_run(*args, **kwargs):
    raise AssertionError("front end re-ran for a cached failure")


class TestFailureCaching:
    def test_elaboration_failure_cached_with_fidelity(self, monkeypatch):
        clear_simulation_caches()
        with pytest.raises(ElaborationError) as first:
            design_template(BAD_ELAB, "m")
        hits_before = simulation_cache_stats()["failure"]["hits"]

        # The recorded failure must re-raise without re-elaborating.
        monkeypatch.setattr(sim, "elaborate", _front_end_must_not_run)
        with pytest.raises(ElaborationError) as second:
            design_template(BAD_ELAB, "m")
        assert type(second.value) is type(first.value)
        assert str(second.value) == str(first.value)
        assert simulation_cache_stats()["failure"]["hits"] \
            == hits_before + 1

    def test_syntax_failure_cached(self, monkeypatch):
        clear_simulation_caches()
        with pytest.raises(VerilogSyntaxError) as first:
            design_template(BAD_SYNTAX, "m")
        monkeypatch.setattr(sim, "parse_cached", _front_end_must_not_run)
        monkeypatch.setattr(sim, "elaborate", _front_end_must_not_run)
        with pytest.raises(VerilogSyntaxError) as second:
            design_template(BAD_SYNTAX, "m")
        assert str(second.value) == str(first.value)

    def test_repeated_hits_do_not_grow_traceback(self):
        """The cached exception instance is shared across hits; each
        re-raise must shed the previous traceback instead of chaining
        frames forever (a hit-proportional memory leak otherwise)."""
        clear_simulation_caches()
        depths = []
        for _ in range(5):
            try:
                design_template(BAD_ELAB, "m")
            except ElaborationError as exc:
                depth, tb = 0, exc.__traceback__
                while tb is not None:
                    depth += 1
                    tb = tb.tb_next
                depths.append(depth)
        assert len(depths) == 5
        # Every cache hit re-raises with the same, constant-depth
        # traceback — no growth across hits.
        assert len(set(depths[1:])) == 1

    def test_source_change_invalidates(self):
        """A fixed source is a new key: the failure for the broken text
        must not shadow the corrected design."""
        clear_simulation_caches()
        with pytest.raises(ElaborationError):
            design_template(BAD_ELAB, "m")
        template = design_template(GOOD, "m")
        result = template.run()
        assert result.design.signal("o").value.to_uint() == 0

    def test_clear_drops_cached_failures(self, monkeypatch):
        clear_simulation_caches()
        with pytest.raises(ElaborationError):
            design_template(BAD_ELAB, "m")
        assert simulation_cache_stats()["failure"]["size"] == 1
        clear_simulation_caches()
        assert simulation_cache_stats()["failure"]["size"] == 0
        # After clearing, the front end genuinely re-runs.
        with pytest.raises(ElaborationError):
            design_template(BAD_ELAB, "m")

    def test_pair_failures_cached_through_run_driver(self):
        """Non-elaborating mutants in a sweep hit the failure cache on
        every run after the first, with an identical detail string."""
        clear_simulation_caches()
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        bad_dut = ("module top_module(input x, output y);\n"
                   "assign y = x;\n"
                   "endmodule")
        first = run_driver(driver, bad_dut)
        assert first.status == ELABORATION
        hits_before = simulation_cache_stats()["failure"]["hits"]
        second = run_driver(driver, bad_dut)
        assert second.status == ELABORATION
        assert second.detail == first.detail
        assert simulation_cache_stats()["failure"]["hits"] > hits_before


# ----------------------------------------------------------------------
# LRU behavior under churn
# ----------------------------------------------------------------------
LRU_SIZE = 256


def _tiny_src(index: int) -> str:
    return ("module m;\n"
            f"    localparam V = {index};\n"
            "    wire [9:0] w = V;\n"
            "endmodule")


def test_eviction_order_is_lru():
    clear_simulation_caches()
    first = design_template(_tiny_src(0), "m")
    for index in range(1, LRU_SIZE + 1):
        design_template(_tiny_src(index), "m")
    # 257 distinct keys through a 256-entry LRU: the oldest fell out...
    assert design_template(_tiny_src(0), "m") is not first
    # ...and a recently-inserted key survived (identity preserved).
    recent = design_template(_tiny_src(LRU_SIZE), "m")
    assert design_template(_tiny_src(LRU_SIZE), "m") is recent


@settings(max_examples=5, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=299),
                min_size=1, max_size=320))
def test_lru_agrees_with_model(accesses):
    """Random access sequences against an explicit LRU model: a key the
    model still holds must return the identical template object; the
    model mirrors lru_cache's move-to-front-on-hit policy exactly."""
    clear_simulation_caches()
    model: OrderedDict = OrderedDict()
    for index in accesses:
        expected = model.get(index)
        template = design_template(_tiny_src(index), "m")
        if expected is not None:
            assert template is expected, \
                "cache dropped or replaced a live entry"
            model.move_to_end(index)
        else:
            model[index] = template
            if len(model) > LRU_SIZE:
                model.popitem(last=False)
    assert simulation_cache_stats()["design"]["size"] <= LRU_SIZE


# ----------------------------------------------------------------------
# Capacity knob + per-task scoping
# ----------------------------------------------------------------------
class TestCapacityKnob:
    def test_template_cache_size_applies(self):
        """``SimContext.template_cache_size`` bounds the active scope's
        bucket: a tiny capacity evicts at the knob, not at 256."""
        clear_simulation_caches()
        with use_context(template_cache_size=2):
            first = design_template(_tiny_src(0), "m")
            design_template(_tiny_src(1), "m")
            design_template(_tiny_src(2), "m")  # evicts index 0 (LRU)
            survivor = design_template(_tiny_src(2), "m")
            assert design_template(_tiny_src(2), "m") is survivor
            assert design_template(_tiny_src(0), "m") is not first

    def test_capacity_validated_on_context(self):
        with pytest.raises(ValueError):
            use_context(template_cache_size=0).__enter__()


class TestTaskScoping:
    def test_scopes_isolate_eviction(self):
        """A mutant flood in one task's scope must not evict another
        task's warm templates — the open-item scenario (156 tasks x
        mutants x judges interleaved by a campaign)."""
        clear_simulation_caches()
        with use_context(template_cache_size=2):
            with use_task_scope("task-a"):
                kept0 = design_template(_tiny_src(0), "m")
                kept1 = design_template(_tiny_src(1), "m")
            with use_task_scope("task-b"):  # churn far past capacity
                for index in range(2, 10):
                    design_template(_tiny_src(index), "m")
            with use_task_scope("task-a"):
                assert design_template(_tiny_src(0), "m") is kept0
                assert design_template(_tiny_src(1), "m") is kept1

    def test_same_key_distinct_per_scope(self):
        clear_simulation_caches()
        with use_task_scope("task-a"):
            in_a = design_template(_tiny_src(0), "m")
        with use_task_scope("task-b"):
            in_b = design_template(_tiny_src(0), "m")
        assert in_a is not in_b
        assert simulation_cache_stats()["design"]["scopes"] == 2

    def test_scope_bound_covers_full_dataset(self):
        """The outer scope LRU must hold at least the 156-task benchmark
        population, or a full-dataset campaign prewarm would evict its
        own earliest tasks before the pool ever snapshots them."""
        from repro.core.caches import DEFAULT_MAX_SCOPES
        clear_simulation_caches()
        assert DEFAULT_MAX_SCOPES >= 156
        for index in range(200):
            with use_task_scope(f"task-{index}"):
                design_template(_tiny_src(index % 4), "m")
        stats = simulation_cache_stats()["design"]
        assert stats["scopes"] == min(200, DEFAULT_MAX_SCOPES)
        # Churn past the bound retires whole scopes, oldest first.
        with use_task_scope("task-0"):
            fresh = design_template(_tiny_src(0), "m")
        with use_task_scope("task-199"):
            survivor = design_template(_tiny_src(199 % 4), "m")
            assert design_template(_tiny_src(199 % 4), "m") is survivor
        assert fresh is not None

    def test_default_scope_is_shared(self):
        clear_simulation_caches()
        template = design_template(_tiny_src(0), "m")
        with use_task_scope(None):
            assert design_template(_tiny_src(0), "m") is template


class TestGlobalBudget:
    """``SimContext.template_cache_budget`` bounds total resident
    entries across all scopes (the ROADMAP open item: per-scope LRUs
    alone admit ``capacity * max_scopes`` entries)."""

    def test_budget_sheds_cold_scopes(self):
        clear_simulation_caches()
        with use_context(template_cache_size=4,
                         template_cache_budget=5):
            with use_task_scope("cold"):
                cold = design_template(_tiny_src(0), "m")
                design_template(_tiny_src(1), "m")
            with use_task_scope("warm"):
                for index in range(2, 7):  # 4 resident + 2 cold > 5
                    design_template(_tiny_src(index), "m")
            stats = simulation_cache_stats()["design"]
            assert stats["size"] <= 5
            assert stats["shed_scopes"] >= 1
            # The cold scope paid the cost; revisiting re-elaborates.
            with use_task_scope("cold"):
                assert design_template(_tiny_src(0), "m") is not cold

    def test_inserting_scope_survives_shedding(self):
        clear_simulation_caches()
        with use_context(template_cache_size=8,
                         template_cache_budget=4):
            with use_task_scope("other"):
                design_template(_tiny_src(0), "m")
            with use_task_scope("active"):
                kept = [design_template(_tiny_src(index), "m")
                        for index in range(1, 7)]
                # Over budget with a single remaining scope: the active
                # bucket is never shed out from under its own insertion.
                for index, template in enumerate(kept, start=1):
                    assert design_template(_tiny_src(index), "m") \
                        is template
        stats = simulation_cache_stats()["design"]
        assert stats["scopes"] == 1
        assert stats["shed_scopes"] == 1

    def test_default_budget_covers_campaign_working_set(self):
        from repro.hdl.context import (DEFAULT_TEMPLATE_CACHE_BUDGET,
                                       SimContext)
        # A full-dataset prewarm (156 tasks, a handful of templates
        # each) must fit without shedding.
        assert DEFAULT_TEMPLATE_CACHE_BUDGET >= 156 * 8
        assert SimContext().template_cache_budget \
            == DEFAULT_TEMPLATE_CACHE_BUDGET

    def test_clear_resets_shed_counter(self):
        clear_simulation_caches()
        assert simulation_cache_stats()["design"]["shed_scopes"] == 0


@settings(max_examples=5, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["task-a", "task-b", None]),
                          st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=120))
def test_scoped_lru_agrees_with_model(accesses):
    """The per-task scoping extension of ``test_lru_agrees_with_model``:
    each scope behaves as its own move-to-front LRU at the context's
    capacity, and accesses in one scope never disturb another's."""
    capacity = 4
    clear_simulation_caches()
    model: dict = {}
    with use_context(template_cache_size=capacity):
        for scope, index in accesses:
            bucket = model.setdefault(scope, OrderedDict())
            expected = bucket.get(index)
            with use_task_scope(scope):
                template = design_template(_tiny_src(index), "m")
            if expected is not None:
                assert template is expected, \
                    "cache dropped or replaced a live entry"
                bucket.move_to_end(index)
            else:
                bucket[index] = template
                if len(bucket) > capacity:
                    bucket.popitem(last=False)
    stats = simulation_cache_stats()["design"]
    assert stats["size"] == sum(len(b) for b in model.values())
    assert stats["scopes"] == len(model)


# ----------------------------------------------------------------------
# Stamped-state isolation between concurrent checkouts
# ----------------------------------------------------------------------
STATEFUL_TB = """
module tb;
    reg [7:0] count;
    integer i;
    initial begin
        count = 8'd1;
        for (i = 0; i < 5; i = i + 1) count = count + count;
        #3 $display("count=%d t=%0t", count, $time);
        $finish;
    end
endmodule
"""


def test_concurrent_checkouts_are_isolated():
    """Many threads re-running the same (and a second) template must
    each observe a full, uncontaminated run: the template's stamped
    state never leaks between checkouts."""
    clear_simulation_caches()
    template_a = design_template(STATEFUL_TB, "tb")
    template_b = design_template(STATEFUL_TB.replace("5", "3"), "tb")
    ref_a = template_a.run()
    ref_b = template_b.run()
    assert ref_a.stdout != ref_b.stdout  # genuinely different designs

    outcomes: list = []
    errors: list = []

    def worker(template, reference):
        try:
            for _ in range(8):
                result = template.run()
                outcomes.append(
                    (tuple(result.stdout), result.sim_time,
                     result.finished) ==
                    (tuple(reference.stdout), reference.sim_time, True))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(template_a, ref_a))
               for _ in range(3)]
    threads += [threading.Thread(target=worker, args=(template_b, ref_b))
                for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(outcomes) == 48
    assert all(outcomes)
