"""Strict replay of the checked-in trace corpus (tests/traces/).

Each ``*.trace.jsonl`` file is a full recorded CorrectBench session
(multi-round recoveries, give-ups, a stage-2 ExtractionError retry —
see scripts/record_trace_corpus.py).  Replaying one re-runs the whole
pipeline with the model's answers coming from the file, so these tests
fail on any behavioural drift in the generator / validator / corrector
loop.  Regenerate the corpus with::

    PYTHONPATH=src python scripts/record_trace_corpus.py
"""

from pathlib import Path

import pytest

from repro.core.trace import (TRACE_VERSION, Trace, load_trace,
                              replay_workflow)

TRACES_DIR = Path(__file__).resolve().parents[1] / "traces"
TRACE_PATHS = sorted(TRACES_DIR.glob("*.trace.jsonl"))


def trace_id(path):
    return path.name.removesuffix(".trace.jsonl")


@pytest.fixture(scope="module", params=TRACE_PATHS, ids=trace_id)
def replayed(request):
    trace = load_trace(str(request.param))
    return trace, replay_workflow(trace)


class TestCorpusReplay:
    def test_corpus_present(self):
        assert len(TRACE_PATHS) >= 6, \
            "trace corpus missing — run scripts/record_trace_corpus.py"

    def test_header_is_current_version(self, replayed):
        trace, _ = replayed
        assert trace.header["version"] == TRACE_VERSION

    def test_strict_replay_matches(self, replayed):
        trace, outcome = replayed
        assert outcome.matches, (
            f"replay diverged at round {outcome.diverged_round()}")

    def test_result_fields_reproduced(self, replayed):
        trace, outcome = replayed
        recorded = trace.result()
        assert outcome.result.validated == recorded["validated"]
        assert outcome.result.gave_up == recorded["gave_up"]
        assert outcome.result.corrections == recorded["corrections"]
        assert outcome.result.reboots == recorded["reboots"]
        replayed_rounds = Trace(
            tuple(outcome.replayed.events)).result()["rounds"]
        assert replayed_rounds == recorded["rounds"]

    def test_token_accounting_reproduced(self, replayed):
        trace, outcome = replayed
        assert Trace(tuple(outcome.replayed.events)).result()["usage"] \
            == trace.result()["usage"]


class TestCorpusShape:
    """The corpus keeps covering the scenarios it was recorded for."""

    def traces(self):
        return [load_trace(str(path)) for path in TRACE_PATHS]

    def test_has_multi_round_recovery(self):
        assert any(len(t.validations()) >= 3
                   and t.result()["validated"] for t in self.traces())

    def test_has_give_up(self):
        assert any(t.result()["gave_up"] for t in self.traces())

    def test_has_extraction_retry(self):
        # A stage-2 retry shows as two consecutive correct_rewrite
        # exchanges (one correct_reason, two rewrites).
        def retried(trace):
            kinds = [e["kind"] for e in trace.exchanges()]
            return any(a == b == "correct_rewrite"
                       for a, b in zip(kinds, kinds[1:]))
        assert any(retried(t) for t in self.traces())
