"""Simulation glue: statuses, record parsing, caching, batching."""

import pytest

from repro.core.simulation import (ELABORATION, OK, RUNTIME, SYNTAX,
                                   design_template, dut_compiles,
                                   get_default_engine, parse_cached,
                                   parse_dump, run_driver,
                                   run_driver_batch, run_monolithic,
                                   run_monolithic_batch,
                                   set_default_engine,
                                   simulation_cache_stats, syntax_ok)
from repro.codegen import render_driver
from repro.problems import get_task


class TestParseDump:
    def test_basic_line(self):
        records = parse_dump(
            ["scenario:  1, a = 3, b = 12, out = 15"])
        assert records[0].scenario == 1
        assert records[0].values == {"a": "3", "b": "12", "out": "15"}

    def test_x_values_preserved(self):
        records = parse_dump(["scenario: 2, q = x"])
        assert records[0].values["q"] == "x"

    def test_noise_lines_skipped(self):
        records = parse_dump(["hello", "scenario: 1, a = 0", ""])
        assert len(records) == 1

    def test_negative_numbers(self):
        records = parse_dump(["scenario: 1, a = -5"])
        assert records[0].values["a"] == "-5"


class TestRunDriver:
    def test_ok_run(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        run = run_driver(driver, task.golden_rtl())
        assert run.status == OK
        assert run.records

    def test_driver_syntax_error(self):
        task = get_task("cmb_eq4")
        run = run_driver("module tb(; endmodule", task.golden_rtl())
        assert run.status == SYNTAX
        assert "driver" in run.detail

    def test_dut_syntax_error(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        run = run_driver(driver, "module top_module(; endmodule")
        assert run.status == SYNTAX
        assert "dut" in run.detail

    def test_elaboration_error(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        # DUT with the wrong port names fails at elaboration.
        run = run_driver(driver,
                         "module top_module(input x, output y);\n"
                         "assign y = x;\nendmodule")
        assert run.status == ELABORATION

    def test_runtime_error_no_finish(self):
        run = run_driver("module tb; initial begin end endmodule",
                         "module top_module(); endmodule")
        assert run.status == RUNTIME

    def test_no_dump_is_runtime(self):
        run = run_driver("module tb; initial $finish; endmodule",
                         "module top_module(); endmodule")
        assert run.status == RUNTIME
        assert "check-points" in run.detail


class TestCaching:
    def test_parse_cached_identity(self):
        source = get_task("cmb_eq4").golden_rtl()
        assert parse_cached(source) is parse_cached(source)

    def test_syntax_ok(self):
        assert syntax_ok("module m(); endmodule")
        assert not syntax_ok("module m(; endmodule")


class TestDutCompiles:
    def test_golden_compiles(self):
        ok, error = dut_compiles(get_task("seq_tff").golden_rtl())
        assert ok and not error

    def test_bad_reference_caught(self):
        ok, error = dut_compiles(
            "module top_module(output o);\n"
            "assign o = ghost;\nendmodule")
        assert not ok
        assert "elaboration" in error


class TestRunMonolithic:
    def test_verdictless_tb_is_runtime(self):
        run = run_monolithic(
            "module tb; initial $finish; endmodule",
            "module top_module(); endmodule")
        assert run.status == RUNTIME

    def test_recursion_error_is_runtime(self, monkeypatch):
        # run_monolithic must have the same defensive path run_driver has.
        import repro.core.simulation as sim

        class _Boom:
            def run(self, **kwargs):
                raise RecursionError

        monkeypatch.setattr(sim, "_pair_template",
                            lambda *args: _Boom())
        run = run_monolithic(
            "module tb; initial $finish; endmodule",
            "module top_module(); endmodule")
        assert run.status == RUNTIME
        assert "recursion" in run.detail


class TestDesignTemplate:
    def test_template_cached_and_state_reset(self):
        src = """
module tb;
    reg [7:0] count;
    initial begin
        count = 0;
        repeat (5) count = count + 8'd1;
        $display("count=%d", count);
        $finish;
    end
endmodule
"""
        template = design_template(src, "tb")
        assert design_template(src, "tb") is template
        first = template.run()
        assert first.stdout == ["count=  5"] or first.stdout == ["count=5"]
        # Second run starts from fresh state, not the mutated signals.
        second = template.run()
        assert second.stdout == first.stdout
        assert second.sim_time == first.sim_time

    def test_engine_default_roundtrip(self):
        # Legacy shims: the setter warns and steers the root context;
        # the getter resolves through the active context.
        original = get_default_engine()
        try:
            with pytest.deprecated_call():
                set_default_engine("interpret")
            assert get_default_engine() == "interpret"
            with pytest.raises(ValueError):
                set_default_engine("quantum")
        finally:
            with pytest.deprecated_call():
                set_default_engine(original)


class TestBatchApis:
    def _driver_and_duts(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        golden = task.golden_rtl()
        broken = "module top_module(input x, output y);\nendmodule"
        return driver, golden, broken

    def test_batch_matches_serial(self):
        driver, golden, broken = self._driver_and_duts()
        serial = [run_driver(driver, golden), run_driver(driver, broken)]
        batch = run_driver_batch(driver, [golden, broken])
        assert [r.status for r in batch] == [r.status for r in serial]
        assert batch[0].ok
        assert [rec.values for rec in batch[0].records] \
            == [rec.values for rec in serial[0].records]

    def test_batch_dedups_identical_duts(self):
        driver, golden, _ = self._driver_and_duts()
        before = simulation_cache_stats()["pair"]
        runs = run_driver_batch(driver, [golden, golden, golden])
        after = simulation_cache_stats()["pair"]
        assert len(runs) == 3
        assert all(run.ok for run in runs)
        # Only one unique (driver, dut) elaboration can have been added.
        assert after["misses"] - before["misses"] <= 1

    def test_batch_engine_override(self):
        driver, golden, _ = self._driver_and_duts()
        interp = run_driver_batch(driver, [golden], engine="interpret")
        compiled = run_driver_batch(driver, [golden], engine="compiled")
        assert interp[0].ok and compiled[0].ok
        assert [rec.values for rec in interp[0].records] \
            == [rec.values for rec in compiled[0].records]

    def test_monolithic_batch(self):
        task = get_task("cmb_eq4")
        golden = task.golden_rtl()
        tb = """
module tb;
    initial begin
        $display("ALL_TESTS_PASSED");
        $finish;
    end
endmodule
"""
        runs = run_monolithic_batch(tb, [golden, golden])
        assert [run.status for run in runs] == [OK, OK]
        assert all(run.verdict for run in runs)
