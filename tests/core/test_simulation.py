"""Simulation glue: statuses, record parsing, caching."""

from repro.core.simulation import (ELABORATION, OK, RUNTIME, SYNTAX,
                                   dut_compiles, parse_cached, parse_dump,
                                   run_driver, run_monolithic, syntax_ok)
from repro.codegen import render_driver
from repro.problems import get_task


class TestParseDump:
    def test_basic_line(self):
        records = parse_dump(
            ["scenario:  1, a = 3, b = 12, out = 15"])
        assert records[0].scenario == 1
        assert records[0].values == {"a": "3", "b": "12", "out": "15"}

    def test_x_values_preserved(self):
        records = parse_dump(["scenario: 2, q = x"])
        assert records[0].values["q"] == "x"

    def test_noise_lines_skipped(self):
        records = parse_dump(["hello", "scenario: 1, a = 0", ""])
        assert len(records) == 1

    def test_negative_numbers(self):
        records = parse_dump(["scenario: 1, a = -5"])
        assert records[0].values["a"] == "-5"


class TestRunDriver:
    def test_ok_run(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        run = run_driver(driver, task.golden_rtl())
        assert run.status == OK
        assert run.records

    def test_driver_syntax_error(self):
        task = get_task("cmb_eq4")
        run = run_driver("module tb(; endmodule", task.golden_rtl())
        assert run.status == SYNTAX
        assert "driver" in run.detail

    def test_dut_syntax_error(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        run = run_driver(driver, "module top_module(; endmodule")
        assert run.status == SYNTAX
        assert "dut" in run.detail

    def test_elaboration_error(self):
        task = get_task("cmb_eq4")
        driver = render_driver(task, task.canonical_scenarios())
        # DUT with the wrong port names fails at elaboration.
        run = run_driver(driver,
                         "module top_module(input x, output y);\n"
                         "assign y = x;\nendmodule")
        assert run.status == ELABORATION

    def test_runtime_error_no_finish(self):
        run = run_driver("module tb; initial begin end endmodule",
                         "module top_module(); endmodule")
        assert run.status == RUNTIME

    def test_no_dump_is_runtime(self):
        run = run_driver("module tb; initial $finish; endmodule",
                         "module top_module(); endmodule")
        assert run.status == RUNTIME
        assert "check-points" in run.detail


class TestCaching:
    def test_parse_cached_identity(self):
        source = get_task("cmb_eq4").golden_rtl()
        assert parse_cached(source) is parse_cached(source)

    def test_syntax_ok(self):
        assert syntax_ok("module m(); endmodule")
        assert not syntax_ok("module m(; endmodule")


class TestDutCompiles:
    def test_golden_compiles(self):
        ok, error = dut_compiles(get_task("seq_tff").golden_rtl())
        assert ok and not error

    def test_bad_reference_caught(self):
        ok, error = dut_compiles(
            "module top_module(output o);\n"
            "assign o = ghost;\nendmodule")
        assert not ok
        assert "elaboration" in error


class TestRunMonolithic:
    def test_verdictless_tb_is_runtime(self):
        run = run_monolithic(
            "module tb; initial $finish; endmodule",
            "module top_module(); endmodule")
        assert run.status == RUNTIME
