"""Warm-start cache snapshots: export/import fidelity in-process, across
a genuinely fresh (spawn) process, and through the pool initializer."""

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro.core.simulation as sim
from repro.codegen import render_driver
from repro.core.caches import CacheSnapshot, caches
from repro.core.simulation import (clear_simulation_caches, design_template,
                                   export_warm_start_snapshot, run_driver,
                                   simulation_cache_stats)
from repro.hdl.compile import program_cache_stats
from repro.hdl.errors import ElaborationError
from repro.problems import get_task

REPO_ROOT = Path(__file__).resolve().parents[2]

GOOD = ("module m(output [3:0] o);\n"
        "assign o = 4'd9;\n"
        "endmodule")
BAD_ELAB = ("module m(output o);\n"
            "assign o = ghost;\n"
            "endmodule")


def _warm_parent():
    """Build a known warm state: one design template, one driver/DUT
    pair, one cached elaboration failure."""
    clear_simulation_caches()
    task = get_task("cmb_eq4")
    driver = render_driver(task, task.canonical_scenarios())
    golden = task.golden_rtl()
    assert run_driver(driver, golden).ok
    design_template(GOOD, "m")
    with pytest.raises(ElaborationError):
        design_template(BAD_ELAB, "m")
    return driver, golden


class TestSnapshotValue:
    def test_snapshot_is_picklable_plain_data(self):
        _warm_parent()
        snapshot = export_warm_start_snapshot()
        assert snapshot  # truthy: carries entries
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.layers() == snapshot.layers()
        assert clone.counts() == snapshot.counts()
        # The program layer holds closures and must never be exported.
        assert "programs" not in snapshot.layers()

    def test_layer_counts(self):
        _warm_parent()
        counts = export_warm_start_snapshot().counts()
        assert counts["design"] == 1
        assert counts["pair"] == 1
        assert counts["failure"] == 1
        assert counts["parse"] >= 2  # driver + golden + GOOD

    def test_empty_snapshot_is_falsy(self):
        clear_simulation_caches()
        assert not export_warm_start_snapshot()

    def test_import_rejects_wrong_type_and_version(self):
        with pytest.raises(TypeError):
            caches.import_snapshot({"parse": {}})
        with pytest.raises(ValueError):
            caches.import_snapshot(CacheSnapshot(payloads={}, version=999))


class TestInProcessRoundTrip:
    def test_import_restores_hit_behaviour(self, monkeypatch):
        """export -> clear -> import: the next access to every warmed
        layer is a pure hit (identical hit behaviour to the process the
        snapshot came from)."""
        driver, golden = _warm_parent()
        snapshot = export_warm_start_snapshot()
        clear_simulation_caches()
        imported = caches.import_snapshot(snapshot)
        assert imported["design"] == 1
        assert imported["pair"] == 1
        assert imported["failure"] == 1

        before = simulation_cache_stats()
        # Re-running the snapshotted workload must not touch the front
        # end at all: parse and template lookups all hit.
        monkeypatch.setattr(sim, "elaborate", _must_not_run)
        assert run_driver(driver, golden).ok
        after = simulation_cache_stats()
        assert after["parse"]["misses"] == before["parse"]["misses"]
        assert after["pair"]["hits"] == before["pair"]["hits"] + 1
        # The cached failure re-raises without re-elaborating, too.
        with pytest.raises(ElaborationError):
            design_template(BAD_ELAB, "m")

    def test_imported_templates_simulate_identically(self):
        driver, golden = _warm_parent()
        reference = run_driver(driver, golden)
        snapshot = export_warm_start_snapshot()
        clear_simulation_caches()
        caches.import_snapshot(snapshot)
        rerun = run_driver(driver, golden)
        assert rerun.status == reference.status
        assert [r.values for r in rerun.records] \
            == [r.values for r in reference.records]

    def test_import_counts_ahead_of_time_compiles(self):
        _warm_parent()
        snapshot = export_warm_start_snapshot()
        clear_simulation_caches()
        warm_before = program_cache_stats()["warm_start_compiled"]
        caches.import_snapshot(snapshot)
        # Template import re-derives the closure layer eagerly.
        assert program_cache_stats()["warm_start_compiled"] > warm_before


def _must_not_run(*args, **kwargs):  # pragma: no cover - guard helper
    raise AssertionError("front end ran on what should be a warm hit")


def test_fresh_spawn_process_round_trip(tmp_path):
    """The acceptance path: a snapshot pickled by this process and
    imported by a *fresh* interpreter (nothing inherited) makes the
    snapshotted workload run entirely from warm caches."""
    driver, golden = _warm_parent()
    snapshot_path = tmp_path / "snapshot.pkl"
    snapshot_path.write_bytes(pickle.dumps(export_warm_start_snapshot()))
    (tmp_path / "driver.v").write_text(driver)
    (tmp_path / "golden.v").write_text(golden)

    code = textwrap.dedent("""
        import pickle, sys
        from pathlib import Path
        from repro.core.caches import caches
        from repro.core.simulation import (run_driver,
                                           simulation_cache_stats)
        from repro.hdl.compile import program_cache_stats

        base = Path(sys.argv[1])
        imported = caches.import_snapshot(
            pickle.loads((base / "snapshot.pkl").read_bytes()))
        assert imported["design"] == 1, imported
        assert imported["pair"] == 1, imported
        assert program_cache_stats()["warm_start_compiled"] > 0

        run = run_driver((base / "driver.v").read_text(),
                         (base / "golden.v").read_text())
        assert run.ok, run.detail
        stats = simulation_cache_stats()
        # Identical hit behaviour to a warm parent: zero front-end
        # misses for the snapshotted workload.
        assert stats["parse"]["misses"] == 0, stats["parse"]
        assert stats["tokenize"]["misses"] == 0, stats["tokenize"]
        assert stats["pair"]["hits"] == 1, stats["pair"]
        print("SNAPSHOT_OK")
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code, str(tmp_path)],
                          env=env, capture_output=True, text=True,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "SNAPSHOT_OK" in proc.stdout
