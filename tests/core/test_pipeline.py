"""Generator, validator, corrector: pipeline-stage behaviour."""

from repro.codegen import render_checker_core, render_driver
from repro.core import (AutoBenchGenerator, CRITERION_70, Corrector,
                        DirectBaseline, HybridTestbench, ScenarioValidator,
                        build_rtl_group)
from repro.core.checker_runtime import checker_compiles
from repro.core.simulation import syntax_ok
from repro.llm import GPT_4O, GPT_4O_MINI, MeteredClient, UsageMeter
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task


def client_for(profile=GPT_4O, seed=0):
    return MeteredClient(SyntheticLLM(profile, seed=seed), UsageMeter())


class TestGenerator:
    def test_produces_syntax_clean_artifacts_usually(self):
        # Auto-debug makes the post-enhancement syntax rate far lower
        # than the raw per-sample rate.
        clean = 0
        total = 20
        for seed in range(total):
            client = client_for(seed=seed)
            tb = AutoBenchGenerator(client, get_task("cmb_eq4")).generate()
            if syntax_ok(tb.driver_src) and checker_compiles(tb.checker_src):
                clean += 1
        assert clean >= total * 0.8

    def test_scenarios_recovered_from_driver(self):
        client = client_for()
        tb = AutoBenchGenerator(client, get_task("cmb_mux2to1_8b")
                                ).generate()
        assert tb.scenarios
        assert all(isinstance(i, int) for i, _ in tb.scenarios)

    def test_generation_deterministic(self):
        task = get_task("seq_tff")
        a = AutoBenchGenerator(client_for(seed=4), task).generate(attempt=1)
        b = AutoBenchGenerator(client_for(seed=4), task).generate(attempt=1)
        assert a.driver_src == b.driver_src
        assert a.checker_src == b.checker_src

    def test_attempts_differ(self):
        task = get_task("seq_tff")
        client = client_for(seed=4)
        generator = AutoBenchGenerator(client, task)
        a = generator.generate(attempt=0)
        b = generator.generate(attempt=1)
        assert (a.driver_src, a.checker_src) != (b.driver_src,
                                                 b.checker_src)


class TestBaselineMethod:
    def test_generates_monolithic_tb(self):
        client = client_for()
        tb = DirectBaseline(client, get_task("cmb_eq4")).generate()
        assert tb.task_id == "cmb_eq4"
        assert "module tb" in tb.source


class TestRtlGroup:
    def test_group_size_and_mostly_clean(self):
        client = client_for()
        group = build_rtl_group(client, get_task("cmb_alu4"),
                                group_size=20)
        assert len(group) == 20
        clean = sum(1 for judge in group if judge.syntax_ok)
        # The paper's regeneration rule guarantees at least half.
        assert clean >= 10

    def test_group_diverse(self):
        client = client_for(GPT_4O_MINI)
        group = build_rtl_group(client, get_task("seq_mod10"),
                                group_size=20)
        assert len({judge.source for judge in group}) > 3


class TestValidator:
    def test_golden_tb_validates_correct(self):
        task = get_task("cmb_dec2to4")
        plan = task.canonical_scenarios()
        golden_tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(task),
            scenarios=tuple((s.index, s.description) for s in plan))
        validator = ScenarioValidator(client_for(), task, CRITERION_70)
        report = validator.validate(golden_tb)
        assert report.verdict is True

    def test_sabotaged_checker_flagged_wrong(self):
        # Use a variant that is NOT the model's own sticky misconception:
        # a checker wrong in a way the judge group does not share must be
        # flagged.  (A checker sharing the sticky misconception can fool
        # the validator — that failure mode is the paper's Section III-B
        # argument, covered by the Fig. 6a study.)
        from repro.llm.faults import FaultModel
        task = get_task("cmb_dec2to4")
        sticky = FaultModel(GPT_4O, seed=0).sticky_misconception(task)
        variant = next(v for v in task.variants if v.vid != sticky.vid)
        plan = task.canonical_scenarios()
        wrong_tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(
                task, task.variant_params(variant)),
            scenarios=tuple((s.index, s.description) for s in plan))
        validator = ScenarioValidator(client_for(), task, CRITERION_70)
        report = validator.validate(wrong_tb)
        assert report.verdict is False
        assert report.wrong

    def test_crashing_checker_flagged_wrong(self):
        task = get_task("cmb_dec2to4")
        plan = task.canonical_scenarios()
        broken_tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src="class RefModel:\n    pass\n",
            scenarios=tuple((s.index, s.description) for s in plan))
        validator = ScenarioValidator(client_for(), task, CRITERION_70)
        assert validator.validate(broken_tb).verdict is False

    def test_group_reused_across_validations(self):
        task = get_task("cmb_dec2to4")
        validator = ScenarioValidator(client_for(), task, CRITERION_70)
        first = validator.rtl_group
        assert validator.rtl_group is first

    def test_simulation_cache_hits_on_checker_swap(self):
        task = get_task("cmb_dec2to4")
        plan = task.canonical_scenarios()
        validator = ScenarioValidator(client_for(), task, CRITERION_70)
        tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(task),
            scenarios=tuple((s.index, s.description) for s in plan))
        validator.validate(tb)
        cache_size = len(validator._sim_cache)
        # Same driver, different checker -> no new simulations.
        validator.validate(HybridTestbench(
            task_id=tb.task_id, driver_src=tb.driver_src,
            checker_src=render_checker_core(
                task, task.variant_params(task.variants[0])),
            scenarios=tb.scenarios))
        assert len(validator._sim_cache) == cache_size


class TestCorrector:
    def test_two_stage_conversation_rewrites_checker(self):
        task = get_task("cmb_dec2to4")
        plan = task.canonical_scenarios()
        wrong_tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(
                task, task.variant_params(task.variants[0])),
            scenarios=tuple((s.index, s.description) for s in plan))
        client = client_for()
        validator = ScenarioValidator(client, task, CRITERION_70)
        report = validator.validate(wrong_tb)
        outcome = Corrector(client).correct(task, wrong_tb, report, 1)
        assert outcome.testbench.origin == "corrector"
        assert outcome.testbench.driver_src == wrong_tb.driver_src
        assert "Step" in outcome.reasoning

    def test_correction_counts_tokens(self):
        task = get_task("cmb_dec2to4")
        plan = task.canonical_scenarios()
        tb = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(task),
            scenarios=tuple((s.index, s.description) for s in plan))
        client = client_for()
        validator = ScenarioValidator(client, task, CRITERION_70)
        report = validator.validate(tb)
        before = client.meter.total.total_tokens
        Corrector(client).correct(task, tb, report, 1)
        usage = client.meter.by_kind()
        assert "correct_reason" in usage
        assert "correct_rewrite" in usage
        assert client.meter.total.total_tokens > before
