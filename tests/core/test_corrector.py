"""Unit tests for the two-stage corrector (paper Section III-C, Fig. 5).

A scripted client replaces the LLM, so the suite pins the *conversation
protocol*: what each stage's prompt must contain, how malformed stage-2
replies are retried, and how the corrected testbench's provenance
fields are filled in.
"""

import pytest

from repro.core.artifacts import HybridTestbench
from repro.core.corrector import Corrector
from repro.core.validator import ValidationReport
from repro.llm.base import ChatResponse, Usage
from repro.problems import get_task

GOOD_CHECKER = "class RefModel:\n    def step(self, x):\n        return x\n"
GOOD_REPLY = f"The corrected core:\n```python\n{GOOD_CHECKER}```\n"


class ScriptedClient:
    """Returns queued reply texts, recording every request."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.requests = []

    @property
    def name(self):
        return "scripted"

    def complete(self, request):
        self.requests.append(request)
        return ChatResponse(self.replies.pop(0), Usage(1, 1))


@pytest.fixture()
def task():
    return get_task("cmb_and2")


def _tb(task, checker_src="class RefModel:\n    def step(self):\n"
                          "        return 0\n"):
    return HybridTestbench(
        task_id=task.task_id, driver_src="initial begin end\n",
        checker_src=checker_src,
        scenarios=((1, "zero inputs"), (2, "all ones")),
        origin="autobench", generation_index=4, correction_index=0)


def _report():
    return ValidationReport(False, wrong=(2,), correct=(1,),
                            uncertain=(3,))


def _correct(task, replies, tb=None, correction_round=2):
    client = ScriptedClient(replies)
    outcome = Corrector(client).correct(
        task, tb or _tb(task), _report(), correction_round)
    return client, outcome


class TestPromptContents:
    def test_stage1_carries_spec_report_and_sources(self, task):
        tb = _tb(task)
        client, _ = _correct(task, ["reasoning.", GOOD_REPLY], tb=tb)
        stage1 = client.requests[0].messages[-1].content
        assert task.spec_text in stage1
        assert "1. zero inputs" in stage1
        assert "2. all ones" in stage1
        assert "wrong: [2]" in stage1
        assert "correct: [1]" in stage1
        assert "uncertain: [3]" in stage1
        assert tb.driver_src in stage1
        assert tb.checker_src in stage1

    def test_stage1_intent(self, task):
        client, _ = _correct(task, ["reasoning.", GOOD_REPLY])
        intent = client.requests[0].intent
        assert intent.kind == "correct_reason"
        assert intent.task_id == task.task_id
        assert intent.payload["wrong_scenarios"] == (2,)
        assert intent.payload["correction_round"] == 2

    def test_stage2_is_same_conversation(self, task):
        client, _ = _correct(task, ["reasoning text.", GOOD_REPLY])
        stage2 = client.requests[1]
        # system + stage-1 user + stage-1 reply + stage-2 user
        roles = [m.role for m in stage2.messages]
        assert roles == ["system", "user", "assistant", "user"]
        assert stage2.messages[2].content == "reasoning text."
        assert "formatting rules" in stage2.messages[3].content
        assert stage2.intent.kind == "correct_rewrite"
        assert stage2.intent.payload["attempt"] == 4

    def test_reasoning_is_stage1_reply(self, task):
        _, outcome = _correct(task, ["why/where/how.", GOOD_REPLY])
        assert outcome.reasoning == "why/where/how."


class TestRewriteOutcome:
    def test_correction_index_and_origin_propagate(self, task):
        _, outcome = _correct(task, ["r.", GOOD_REPLY],
                              correction_round=3)
        corrected = outcome.testbench
        assert corrected.correction_index == 3
        assert corrected.origin == "corrector"
        assert corrected.generation_index == 4
        assert corrected.checker_src == GOOD_CHECKER
        assert outcome.changed
        assert outcome.extraction_retries == 0

    def test_driver_and_scenarios_preserved(self, task):
        tb = _tb(task)
        _, outcome = _correct(task, ["r.", GOOD_REPLY], tb=tb)
        assert outcome.testbench.driver_src == tb.driver_src
        assert outcome.testbench.scenarios == tb.scenarios

    def test_whitespace_only_rewrite_is_not_a_change(self, task):
        tb = _tb(task, checker_src=GOOD_CHECKER)
        padded = f"```python\n\n{GOOD_CHECKER}\n\n```\n"
        _, outcome = _correct(task, ["r.", padded], tb=tb)
        assert not outcome.changed

    def test_identical_rewrite_is_not_a_change(self, task):
        tb = _tb(task, checker_src=GOOD_CHECKER)
        _, outcome = _correct(task, ["r.", GOOD_REPLY], tb=tb)
        assert not outcome.changed


#: Stage-2 reply that *fails* extraction: it has fences, but none
#: carries a python block (a bare fence-free reply would be accepted
#: as code — that leniency is pinned in tests/test_util.py).
BAD_REPLY = "Here is verilog instead:\n```verilog\nmodule m; endmodule\n```\n"


class TestExtractionRetry:
    def test_malformed_stage2_is_retried_once(self, task):
        client, outcome = _correct(
            task, ["r.", BAD_REPLY, GOOD_REPLY])
        assert outcome.extraction_retries == 1
        assert outcome.testbench.checker_src == GOOD_CHECKER
        retry = client.requests[2]
        assert "did not contain a usable python code block" \
            in retry.messages[-1].content
        assert retry.intent.kind == "correct_rewrite"
        assert retry.intent.payload["retry"] == 1

    def test_second_failure_keeps_the_old_checker(self, task):
        tb = _tb(task)
        client, outcome = _correct(
            task, ["r.", BAD_REPLY, BAD_REPLY], tb=tb)
        assert len(client.requests) == 3
        assert outcome.extraction_retries == 1
        assert outcome.testbench.checker_src == tb.checker_src
        assert not outcome.changed
