"""The fixed checker interface."""

from repro.core.checker_runtime import (CHECKER_RUNTIME, CHECKER_SYNTAX,
                                        checker_compiles, run_checker)
from repro.core.simulation import Record
from repro.problems.model import Port

PORTS = (Port("a", "input", 4), Port("out", "output", 4))

GOOD_CORE = """
class RefModel:
    def step(self, inputs):
        return {'out': (inputs['a'] + 1) & 0xF}
"""


def records(*rows):
    return [Record(scenario, values) for scenario, values in rows]


class TestRunChecker:
    def test_all_pass(self):
        report = run_checker(GOOD_CORE, PORTS, records(
            (1, {"a": "3", "out": "4"}),
            (2, {"a": "15", "out": "0"})))
        assert report.ok
        assert report.all_passed
        assert report.passed_scenarios == (1, 2)

    def test_mismatch_flagged_per_scenario(self):
        report = run_checker(GOOD_CORE, PORTS, records(
            (1, {"a": "3", "out": "4"}),
            (2, {"a": "3", "out": "9"})))
        assert report.failed_scenarios == (2,)
        assert report.verdicts[2].mismatches

    def test_x_output_is_mismatch(self):
        report = run_checker(GOOD_CORE, PORTS, records(
            (1, {"a": "3", "out": "x"}),))
        assert report.failed_scenarios == (1,)

    def test_syntax_error_status(self):
        report = run_checker("class RefModel\n    pass", PORTS,
                             records((1, {"a": "0", "out": "1"})))
        assert report.status == CHECKER_SYNTAX
        assert not report.all_passed

    def test_crash_during_step(self):
        core = ("class RefModel:\n"
                "    def step(self, inputs):\n"
                "        return {'out': 1 // 0}\n")
        report = run_checker(core, PORTS, records(
            (1, {"a": "0", "out": "1"}),))
        assert report.status == CHECKER_RUNTIME

    def test_missing_output_key(self):
        core = ("class RefModel:\n"
                "    def step(self, inputs):\n"
                "        return {}\n")
        report = run_checker(core, PORTS, records(
            (1, {"a": "0", "out": "1"}),))
        assert report.status == CHECKER_RUNTIME

    def test_state_carries_between_records(self):
        core = ("class RefModel:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n"
                "    def step(self, inputs):\n"
                "        self.n = (self.n + 1) & 0xF\n"
                "        return {'out': self.n}\n")
        report = run_checker(core, PORTS, records(
            (1, {"a": "0", "out": "1"}),
            (1, {"a": "0", "out": "2"}),
            (2, {"a": "0", "out": "3"})))
        assert report.all_passed

    def test_output_masked_to_port_width(self):
        core = ("class RefModel:\n"
                "    def step(self, inputs):\n"
                "        return {'out': 0x1F}\n")  # 5 bits into 4-bit port
        report = run_checker(core, PORTS, records(
            (1, {"a": "0", "out": "15"}),))
        assert report.all_passed


def test_checker_compiles():
    assert checker_compiles(GOOD_CORE)
    assert not checker_compiles("def broken(:")
