"""Coverage-based self-validation (the future-work extension)."""

import pytest

from repro.codegen import render_checker_core, render_driver
from repro.core import CRITERION_70, HybridTestbench, ScenarioValidator
from repro.core.coverage import (CoveragePolicy, CoverageValidator,
                                 measure_coverage,
                                 reference_pattern_count)
from repro.core.simulation import Record
from repro.llm import GPT_4O, MeteredClient, UsageMeter
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK_ID = "cmb_kmap4_a"


def _tb(task, plan):
    return HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task),
        scenarios=tuple((s.index, s.description) for s in plan))


def _thin_plan(plan, n_scenarios=1, n_vectors=1):
    return tuple(
        type(plan[0])(s.index, s.name, s.description,
                      s.vectors[:n_vectors])
        for s in plan[:n_scenarios])


class TestMeasurement:
    def test_reference_count_positive(self):
        assert reference_pattern_count(get_task(TASK_ID)) >= 4

    def test_distinct_patterns_counted(self):
        task = get_task("cmb_eq4")
        records = [Record(1, {"a": "1", "b": "2", "eq": "0"}),
                   Record(1, {"a": "1", "b": "2", "eq": "0"}),
                   Record(2, {"a": "3", "b": "3", "eq": "1"})]
        report = measure_coverage(task, records)
        assert report.check_points == 3
        assert report.distinct_patterns == 2

    def test_full_plan_meets_default_policy(self):
        task = get_task(TASK_ID)
        plan = task.canonical_scenarios()
        from repro.core.simulation import run_driver
        run = run_driver(render_driver(task, plan), task.golden_rtl())
        report = measure_coverage(task, run.records)
        assert report.meets(CoveragePolicy())
        assert report.pattern_ratio > 0.9

    def test_thin_plan_fails_policy(self):
        task = get_task(TASK_ID)
        plan = _thin_plan(task.canonical_scenarios())
        from repro.core.simulation import run_driver
        run = run_driver(render_driver(task, plan), task.golden_rtl())
        report = measure_coverage(task, run.records)
        assert not report.meets(CoveragePolicy())


class TestCoverageValidator:
    @pytest.fixture()
    def validator(self):
        task = get_task(TASK_ID)
        client = MeteredClient(SyntheticLLM(GPT_4O, seed=0), UsageMeter())
        return CoverageValidator(
            ScenarioValidator(client, task, CRITERION_70))

    def test_rich_golden_tb_accepted(self, validator):
        task = validator.task
        report = validator.validate(_tb(task, task.canonical_scenarios()))
        assert report.verdict is True

    def test_weak_tb_rejected_despite_correct_checker(self, validator):
        # The plain RS-matrix validator accepts this weak TB; the
        # coverage gate is what catches it.
        task = validator.task
        weak = _tb(task, _thin_plan(task.canonical_scenarios(), 1, 2))
        assert validator.inner.validate(weak).verdict is True
        report = validator.validate(weak)
        assert report.verdict is False
        assert "coverage too weak" in report.note

    def test_wrong_checker_still_rejected(self, validator):
        # The coverage gate must not mask functional validation.
        from repro.llm.faults import FaultModel
        task = validator.task
        sticky = FaultModel(GPT_4O, seed=0).sticky_misconception(task)
        variant = next(v for v in task.variants if v.vid != sticky.vid)
        plan = task.canonical_scenarios()
        wrong = HybridTestbench(
            task_id=task.task_id,
            driver_src=render_driver(task, plan),
            checker_src=render_checker_core(
                task, task.variant_params(variant)),
            scenarios=tuple((s.index, s.description) for s in plan))
        report = validator.validate(wrong)
        assert report.verdict is False
        assert report.wrong  # functional bug info, not a coverage note
