"""Explicit regression tests for the engine's defensive paths.

PR 1 fixed ``$finish`` escaping ``_run_comb``, added ``RecursionError``
handling to the run_* wrappers and a fallback for an invalid
``REPRO_SIM_ENGINE`` — previously these were only exercised incidentally
(via the corpus fixture / one monolithic test).  This file pins each
path directly, on both engines where applicable.
"""

import pytest

import repro.core.simulation as sim
from repro.core.simulation import RUNTIME, run_driver, run_monolithic
from repro.hdl import simulate
from repro.hdl.context import _context_from_env
from repro.hdl.simulator import (ENGINE_COMPILED, ENGINE_INTERPRET,
                                 get_default_engine, set_default_engine)

FINISH_IN_COMB = """
module tb;
    reg go;
    always @(*) if (go) $finish;
    initial begin
        go = 0;
        #5 go = 1;
        #10 $display("unreachable");
    end
endmodule
"""

FINISH_IN_COMB_AT_T0 = """
module tb;
    reg stop;
    wire w = stop;
    always @(*) if (stop) $finish;
    initial stop = 1;
endmodule
"""


class TestFinishInsideCombProcess:
    @pytest.mark.parametrize("engine", [ENGINE_COMPILED, ENGINE_INTERPRET])
    def test_finish_ends_run_cleanly(self, engine):
        # $finish raised inside a combinational process must terminate
        # the run via finish_requested — not escape Simulator.run() as
        # an internal exception, and not execute later events.
        result = simulate(FINISH_IN_COMB, "tb", engine=engine)
        assert result.finished
        assert result.sim_time == 5
        assert result.stdout == []

    @pytest.mark.parametrize("engine", [ENGINE_COMPILED, ENGINE_INTERPRET])
    def test_finish_at_time_zero(self, engine):
        result = simulate(FINISH_IN_COMB_AT_T0, "tb", engine=engine)
        assert result.finished
        assert result.sim_time == 0


class _RecursionBoom:
    def run(self, **kwargs):
        raise RecursionError


class TestRecursionErrorHandling:
    TB = "module tb; initial $finish; endmodule"
    DUT = "module top_module(); endmodule"

    def test_run_monolithic_reports_runtime(self, monkeypatch):
        monkeypatch.setattr(sim, "_pair_template",
                            lambda *args: _RecursionBoom())
        run = run_monolithic(self.TB, self.DUT)
        assert run.status == RUNTIME
        assert "recursion" in run.detail

    def test_run_driver_reports_runtime(self, monkeypatch):
        # run_driver has the same defensive path as run_monolithic.
        monkeypatch.setattr(sim, "_pair_template",
                            lambda *args: _RecursionBoom())
        run = run_driver(self.TB, self.DUT)
        assert run.status == RUNTIME
        assert "recursion" in run.detail


class TestEngineSelectionFallback:
    def test_invalid_env_value_falls_back_with_warning(self, capsys):
        context, seeded = _context_from_env(
            {"REPRO_SIM_ENGINE": "warp-drive"})
        assert context.engine == ENGINE_COMPILED
        assert "engine" not in seeded
        err = capsys.readouterr().err
        assert "REPRO_SIM_ENGINE" in err
        assert "warp-drive" in err

    def test_valid_env_values_accepted(self, capsys):
        for engine in (ENGINE_COMPILED, ENGINE_INTERPRET):
            context, seeded = _context_from_env(
                {"REPRO_SIM_ENGINE": engine})
            assert context.engine == engine
            assert "engine" in seeded
        assert capsys.readouterr().err == ""

    def test_unset_env_defaults_to_compiled(self):
        context, seeded = _context_from_env({})
        assert context.engine == ENGINE_COMPILED
        assert not seeded

    def test_simulator_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            simulate(self_checking_src(), "tb", engine="quantum")
        with pytest.raises(ValueError):
            set_default_engine("quantum")

    def test_default_engine_roundtrip_after_fallback(self):
        # The legacy shim pair still works, warning on the setter.
        original = get_default_engine()
        try:
            with pytest.deprecated_call():
                set_default_engine(ENGINE_INTERPRET)
            result = simulate(self_checking_src(), "tb")
            assert result.finished
        finally:
            with pytest.deprecated_call():
                set_default_engine(original)


def self_checking_src() -> str:
    return "module tb; initial begin $display(\"ok\"); $finish; end endmodule"
