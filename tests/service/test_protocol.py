"""HTTP protocol layer: request parsing, framing limits, responses."""

import asyncio
import json

import pytest

from repro.service.config import ServiceConfig, service_config_from_env
from repro.service.protocol import (MAX_HEAD_BYTES, ProtocolError,
                                    parse_request_head, read_request,
                                    render_response)


def _read(data: bytes, *, limit: int | None = None, **kwargs):
    """Feed raw bytes through read_request on a detached StreamReader."""
    async def go():
        reader = (asyncio.StreamReader(limit=limit) if limit
                  else asyncio.StreamReader())
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)
    return asyncio.run(go())


class TestParseHead:
    def test_request_line_and_headers(self):
        request = parse_request_head(
            b"POST /v1/simulate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"X-Repro-Tenant: acme\r\n")
        assert request.method == "POST"
        assert request.path == "/v1/simulate"
        # Header names are case-insensitive (stored lowercased).
        assert request.header("content-type") == "application/json"
        assert request.header("X-REPRO-TENANT".lower()) == "acme"

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request_head(b"BROKEN\r\n")
        assert exc.value.status == 400

    def test_wrong_protocol_version(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request_head(b"GET / SPDY/3\r\n")
        assert exc.value.status == 400

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request_head(b"GET / HTTP/1.1\r\nno-colon-here\r\n")
        assert exc.value.status == 400


class TestReadRequest:
    def test_clean_eof_is_none(self):
        # A keep-alive peer closing between requests is not an error.
        assert _read(b"") is None

    def test_body_framed_by_content_length(self):
        body = json.dumps({"driver": "module tb; endmodule"}).encode()
        request = _read(
            b"POST /v1/simulate HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert request.body == body
        assert request.json()["driver"].startswith("module")

    def test_eof_mid_request_is_400(self):
        with pytest.raises(ProtocolError) as exc:
            _read(b"POST /v1/simulate HTTP/1.1\r\nContent-")
        assert exc.value.status == 400

    def test_eof_mid_body_is_400(self):
        with pytest.raises(ProtocolError) as exc:
            _read(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
        assert exc.value.status == 400

    def test_transfer_encoding_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            _read(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(ProtocolError) as exc:
            _read(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\n"
                  + b"x" * 64, max_body=16)
        assert exc.value.status == 413

    def test_oversized_head_is_400(self):
        head = b"GET /" + b"a" * 4096 + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(ProtocolError) as exc:
            _read(head, limit=1024)
        assert exc.value.status == 400
        assert MAX_HEAD_BYTES >= 1024  # the advertised framing bound

    def test_bad_json_body_is_400(self):
        request = _read(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
                        b"{not json")
        with pytest.raises(ProtocolError) as exc:
            request.json()
        assert exc.value.status == 400

    def test_non_object_json_body_is_400(self):
        request = _read(b"POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\n"
                        b"[1, 2]")
        with pytest.raises(ProtocolError) as exc:
            request.json()
        assert exc.value.status == 400


class TestRenderResponse:
    def test_status_line_headers_and_body(self):
        raw = render_response(200, b'{"ok":true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in head
        assert b"Content-Type: application/json" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":true}'

    def test_close_and_extra_headers(self):
        raw = render_response(429, b"{}", close=True,
                              extra_headers={"Retry-After": "3"})
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in raw
        assert b"Connection: close" in raw
        assert b"Retry-After: 3" in raw


class TestServiceConfig:
    def test_env_overrides_and_fallback(self):
        config = service_config_from_env({
            "REPRO_SERVICE_PORT": "9001",
            "REPRO_SERVICE_QUEUE_LIMIT": "not-a-number",  # warn + default
            "REPRO_SERVICE_BATCH_WINDOW_MS": "7.5",
        })
        assert config.port == 9001
        assert config.queue_limit == ServiceConfig().queue_limit
        assert config.batch_window_ms == 7.5

    def test_evolve_and_validation(self):
        config = ServiceConfig().evolve(workers=2)
        assert config.workers == 2
        with pytest.raises(ValueError):
            ServiceConfig(port=70000)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ServiceConfig(batch_window_ms=-1)
