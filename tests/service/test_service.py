"""End-to-end service tests over real sockets.

Every documented endpoint, error code and operational behaviour from
docs/service.md is exercised here: the happy paths, the 4xx surface,
queue-full backpressure (429 + Retry-After), pool break-and-heal
without request loss, drain-on-shutdown, and per-tenant cache
isolation.
"""

import http.client
import json
import os
import signal
import threading
import time
from contextlib import contextmanager

import pytest

from repro.codegen import render_driver
from repro.core.simulation import (_pair_templates,
                                   clear_simulation_caches, get_sim_pool,
                                   run_driver_batch, shutdown_sim_pool,
                                   sim_pool_info)
from repro.hdl import current_context
from repro.problems import get_task
from repro.service import ServiceConfig, ServiceThread

PASSING_TB = """
module tb;
    initial begin
        $display("ALL_TESTS_PASSED");
        $finish;
    end
endmodule
"""


def _fixture():
    task = get_task("cmb_eq4")
    driver = render_driver(task, task.canonical_scenarios())
    return driver, task.golden_rtl()


@contextmanager
def running_service(context=None, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    service = ServiceThread(ServiceConfig(**config_kwargs), context)
    service.start()
    try:
        yield service
    finally:
        service.stop()


def _request(service, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", service.port,
                                            timeout=60)
    try:
        payload = json.dumps(body) if isinstance(body, dict) else body
        connection.request(method, path, body=payload,
                           headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        data = json.loads(raw) if raw else None
        return response.status, data, dict(response.getheaders())
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self):
        with running_service() as service:
            status, data, _ = _request(service, "GET", "/v1/healthz")
        assert (status, data) == (200, {"status": "ok"})

    def test_simulate_hybrid_round_trip(self):
        driver, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut})
        assert status == 200
        assert data["status"] == "ok"
        assert data["records"], "hybrid sweep must return check-points"
        assert {"scenario", "values"} <= set(data["records"][0])

    def test_simulate_monolithic_round_trip(self):
        _, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": PASSING_TB, "dut": dut, "kind": "monolithic"})
        assert status == 200
        assert data["status"] == "ok"
        assert data["verdict"] is True

    def test_generate_round_trip(self):
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline"})
        assert status == 200
        assert data["task"] == "cmb_and2"
        assert data["method"] == "baseline"
        assert {"validated", "corrections", "usage"} <= set(data)

    def test_status_telemetry_shape(self):
        driver, dut = _fixture()
        with running_service() as service:
            _request(service, "POST", "/v1/simulate",
                     {"driver": driver, "dut": dut})
            status, data, _ = _request(service, "GET", "/v1/status")
        assert status == 200
        assert data["service"]["requests_total"] >= 1
        assert data["service"]["queue"]["limit"] \
            == ServiceConfig().queue_limit
        assert {"batches", "jobs", "sizes"} <= set(data["batcher"])
        # The sim_pool block carries the PR-8 load fields.
        assert {"queue_depth", "in_flight"} <= set(data["sim_pool"])
        assert "pair" in data["caches"]

    def test_context_headers_reach_the_simulation(self):
        driver, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut},
                headers={"X-Repro-Engine": "interpret",
                         "X-Repro-Max-Time": "200000"})
            body_override = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut,
                 "context": {"engine": "compiled"}})
        assert status == 200 and data["status"] == "ok"
        assert body_override[0] == 200
        # Identical sweeps agree across engines.
        assert [record["values"] for record in data["records"]] \
            == [record["values"] for record in body_override[1]["records"]]


class TestErrorSurface:
    def test_unknown_endpoint_404(self):
        with running_service() as service:
            status, data, _ = _request(service, "GET", "/v1/nope")
        assert status == 404
        assert data["error"]["code"] == "not-found"

    def test_wrong_method_405_with_allow(self):
        with running_service() as service:
            status, data, headers = _request(service, "DELETE",
                                             "/v1/simulate")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_bad_json_400(self):
        with running_service() as service:
            status, data, _ = _request(service, "POST", "/v1/simulate",
                                       "{not json")
        assert status == 400
        assert data["error"]["code"] == "protocol-error"

    def test_missing_driver_400(self):
        with running_service() as service:
            status, data, _ = _request(service, "POST", "/v1/simulate",
                                       {"dut": "module m; endmodule"})
        assert status == 400
        assert data["error"]["code"] == "bad-request"
        assert "driver" in data["error"]["detail"]

    def test_unknown_context_field_400(self):
        driver, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut, "context": {"jobs": 4}})
        assert status == 400
        assert data["error"]["code"] == "bad-context"
        assert "jobs" in data["error"]["detail"]

    def test_bad_engine_value_400(self):
        driver, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut,
                 "context": {"engine": "quantum"}})
        assert status == 400
        assert data["error"]["code"] == "bad-context"

    def test_bad_kind_400(self):
        driver, dut = _fixture()
        with running_service() as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut, "kind": "sideways"})
        assert status == 400

    def test_generate_validation_400s(self):
        with running_service() as service:
            for body in ({"task": "no_such_task"},
                         {"task": "cmb_and2", "method": "no_such"},
                         {"task": "cmb_and2", "seed": "zero"},
                         {"task": "cmb_and2", "model": "no_such_model"},
                         {"task": "cmb_and2", "criterion": "no_such"}):
                status, data, _ = _request(service, "POST",
                                           "/v1/generate", body)
                assert status == 400, body
                assert data["error"]["code"] == "bad-request"

    def test_oversized_body_413(self):
        with running_service(max_body=512) as service:
            status, data, _ = _request(
                service, "POST", "/v1/simulate",
                {"driver": "x" * 2048, "dut": "m"})
        assert status == 413


class TestBackendSelector:
    """The /v1/generate ``"backend"`` whitelist: a request may pick
    synthetic or the backend the server was *started* with — never
    point a shared server at a new endpoint."""

    def test_default_server_only_allows_synthetic(self):
        with running_service() as service:
            ok_status, ok_data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": "synthetic"})
            bad_status, bad_data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": "ollama"})
            type_status, type_data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": 7})
        assert ok_status == 200 and ok_data["method"] == "baseline"
        assert bad_status == 400
        assert bad_data["error"]["code"] == "bad-backend"
        assert "synthetic" in bad_data["error"]["detail"]
        assert type_status == 400
        assert type_data["error"]["code"] == "bad-backend"

    def test_enabled_backend_is_selectable_and_records(self, tmp_path):
        context = current_context().evolve(
            llm_backend="fixture+synthetic",
            llm_fixture_dir=str(tmp_path))
        with running_service(context) as service:
            status, data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": "fixture+synthetic", "model": "gpt-4o-mini"})
            synth_status, _, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": "synthetic", "model": "gpt-4o-mini"})
            denied_status, denied_data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "backend": "hf"})
        assert status == 200
        fixtures = list(tmp_path.glob("*.fixture.jsonl"))
        assert fixtures, "the selected fixture backend must record"
        assert synth_status == 200
        assert denied_status == 400
        assert denied_data["error"]["code"] == "bad-backend"

    def test_live_model_ids_skip_the_profile_check(self, tmp_path):
        # On a fixture-replay (or live) tier the model is a provider
        # id, not a synthetic profile name — it must not be rejected by
        # the profile table.  (On any tier bottoming out in synthetic
        # it still is: see test_generate_validation_400s.)
        from repro.eval.campaign import run_one

        record_context = current_context().evolve(
            llm_backend="fixture+synthetic", llm_model="qwen2.5:7b",
            llm_fixture_dir=str(tmp_path))
        run_one("baseline", "cmb_and2", 0, profile_name="gpt-4o-mini",
                context=record_context)
        replay_context = current_context().evolve(
            llm_backend="fixture", llm_fixture_dir=str(tmp_path))
        with running_service(replay_context) as service:
            status, data, _ = _request(
                service, "POST", "/v1/generate",
                {"task": "cmb_and2", "method": "baseline",
                 "model": "qwen2.5:7b", "seed": 0})
        assert status == 200
        assert {"level", "usage"} <= set(data)


class TestBackpressure:
    def test_queue_full_429_with_retry_after(self):
        """With queue_limit=1 and a long batch window, the first
        request parks admitted; the second must be rejected with 429 +
        Retry-After — and the first must still complete."""
        driver, dut = _fixture()
        results = {}

        with running_service(queue_limit=1, batch_window_ms=60_000,
                             drain_timeout=60) as service:
            def first():
                results["first"] = _request(
                    service, "POST", "/v1/simulate",
                    {"driver": driver, "dut": dut})

            worker = threading.Thread(target=first)
            worker.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, data, _ = _request(service, "GET", "/v1/status")
                if data["service"]["queue"]["admitted"] == 1:
                    break
                time.sleep(0.01)
            else:  # pragma: no cover - diagnostic
                pytest.fail("first request never parked in the window")

            status, data, headers = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut})
            assert status == 429
            assert data["error"]["code"] == "queue-full"
            assert int(headers["Retry-After"]) >= 1
            # Drain (service.stop in the context exit) flushes the
            # parked window; the admitted request is never dropped.
        worker.join(timeout=60)
        assert results["first"][0] == 200
        assert results["first"][1]["status"] == "ok"

    def test_shutdown_drains_in_flight_work(self):
        driver, dut = _fixture()
        results = {}
        with running_service(batch_window_ms=500) as service:
            def park():
                results["parked"] = _request(
                    service, "POST", "/v1/simulate",
                    {"driver": driver, "dut": dut})

            worker = threading.Thread(target=park)
            worker.start()
            time.sleep(0.1)  # request sits in the open batch window
            # Context exit -> stop(drain=True): flush + wait.
        worker.join(timeout=60)
        assert results["parked"][0] == 200
        assert results["parked"][1]["status"] == "ok"


class TestPoolHealing:
    def test_worker_crash_heals_without_request_loss(self):
        """Kill a sim-pool worker, then serve a coalesced batch that
        fans out to the pool: the batch API heals the pool and every
        request is answered."""
        driver, dut = _fixture()
        variant = dut.replace("endmodule", "\n// variant\nendmodule")
        shutdown_sim_pool()
        get_sim_pool(2)
        # Workers spawn lazily; run one warm-up batch so there is a
        # live worker to kill.
        run_driver_batch(driver, [dut, variant], jobs=2)
        victim = sim_pool_info()["pids"][0]
        os.kill(victim, signal.SIGKILL)

        context = current_context().evolve(jobs=2)
        results = []
        with running_service(context=context,
                             batch_window_ms=500) as service:
            def post(body):
                results.append(_request(service, "POST", "/v1/simulate",
                                        body))

            workers = [
                threading.Thread(target=post, args=(
                    {"driver": driver, "dut": target},))
                for target in (dut, variant)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)

        assert len(results) == 2
        for status, data, _ in results:
            assert status == 200
            assert data["status"] == "ok"
        assert sim_pool_info()["alive"]
        shutdown_sim_pool()


class TestTenantIsolation:
    def test_tenants_get_disjoint_cache_scopes(self):
        driver, dut = _fixture()
        clear_simulation_caches()
        with running_service() as service:
            for tenant in ("alpha", "beta"):
                status, data, _ = _request(
                    service, "POST", "/v1/simulate",
                    {"driver": driver, "dut": dut, "tenant": tenant})
                assert status == 200 and data["status"] == "ok"
            anonymous = _request(service, "POST", "/v1/simulate",
                                 {"driver": driver, "dut": dut})
            header_tenant = _request(
                service, "POST", "/v1/simulate",
                {"driver": driver, "dut": dut},
                headers={"X-Repro-Tenant": "gamma"})
        assert anonymous[0] == 200 and header_tenant[0] == 200

        scopes = {scope for scope, _ in _pair_templates.export_keys()}
        assert {"tenant/alpha", "tenant/beta", "tenant/gamma"} <= scopes
        assert None in scopes  # anonymous requests share the base scope
        clear_simulation_caches()


class TestBatchingCorrectness:
    def test_coalesced_results_match_serial(self):
        driver, dut = _fixture()
        variants = [dut] + [
            dut.replace("endmodule", f"\n// v{index}\nendmodule")
            for index in range(3)]

        with running_service(batch_max=1) as service:  # serial
            serial = [
                _request(service, "POST", "/v1/simulate",
                         {"driver": driver, "dut": variant})
                for variant in variants]

        batched = [None] * len(variants)
        with running_service(batch_window_ms=200) as service:
            def post(index):
                batched[index] = _request(
                    service, "POST", "/v1/simulate",
                    {"driver": driver, "dut": variants[index]})

            workers = [threading.Thread(target=post, args=(index,))
                       for index in range(len(variants))]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            _, telemetry, _ = _request(service, "GET", "/v1/status")

        for serial_result, batched_result in zip(serial, batched):
            assert serial_result[0] == batched_result[0] == 200
            assert serial_result[1]["records"] \
                == batched_result[1]["records"]
        # At least one multi-job batch actually formed.
        assert telemetry["batcher"]["max_batch"] >= 2


class TestCliStatus:
    def test_serve_status_prints_telemetry(self, capsys):
        from repro.cli import main
        with running_service() as service:
            code = main(["serve", "--status", "--port",
                         str(service.port)])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert "service" in printed and "sim_pool" in printed

    def test_serve_status_unreachable_fails(self, capsys):
        from repro.cli import main
        code = main(["serve", "--status", "--port", "1"])
        assert code == 1
