"""Micro-batcher: coalescing windows, early flush, error fan-out."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.batcher import MicroBatcher


def _run(coro):
    return asyncio.run(coro)


class _Recorder:
    """A batch runner that records every (key, jobs) call it serves."""

    def __init__(self, fail=False, short=False):
        self.calls = []
        self.fail = fail
        self.short = short

    def __call__(self, key, jobs):
        self.calls.append((key, list(jobs)))
        if self.fail:
            raise RuntimeError("batch blew up")
        results = [f"{key}:{job}" for job in jobs]
        return results[:-1] if self.short and len(results) > 1 else results


def _batcher(runner, executor, **kwargs):
    kwargs.setdefault("window_s", 0.01)
    kwargs.setdefault("max_batch", 16)
    return MicroBatcher(runner, executor, **kwargs)


class TestCoalescing:
    def test_same_key_jobs_share_one_batch(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor)
                results = await asyncio.gather(
                    batcher.submit("k", "a"),
                    batcher.submit("k", "b"),
                    batcher.submit("k", "c"))
                await batcher.join()
                return results

        assert _run(go()) == ["k:a", "k:b", "k:c"]
        assert len(runner.calls) == 1
        assert runner.calls[0] == ("k", ["a", "b", "c"])

    def test_distinct_keys_do_not_coalesce(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor)
                results = await asyncio.gather(
                    batcher.submit("k1", "a"), batcher.submit("k2", "b"))
                await batcher.join()
                return results

        assert sorted(_run(go())) == ["k1:a", "k2:b"]
        assert len(runner.calls) == 2

    def test_full_window_flushes_early(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                # Window is far longer than the test: only the
                # max_batch early-flush can release these jobs in time.
                batcher = _batcher(runner, executor, window_s=30.0,
                                   max_batch=2)
                results = await asyncio.wait_for(asyncio.gather(
                    batcher.submit("k", "a"),
                    batcher.submit("k", "b")), timeout=5)
                await batcher.join()
                return results, batcher.stats.snapshot()

        results, stats = _run(go())
        assert results == ["k:a", "k:b"]
        assert stats["full_flushes"] >= 1
        assert stats["max_batch"] == 2

    def test_bypass_when_batching_disabled(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor, max_batch=1)
                return [await batcher.submit("k", "a"),
                        await batcher.submit("k", "b")]

        assert _run(go()) == ["k:a", "k:b"]
        assert len(runner.calls) == 2  # one call per job, no window

    def test_flush_all_releases_open_windows(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor, window_s=30.0)
                future = asyncio.ensure_future(batcher.submit("k", "a"))
                await asyncio.sleep(0)  # let the window arm
                batcher.flush_all()
                return await asyncio.wait_for(future, timeout=5)

        assert _run(go()) == "k:a"


class TestErrorFanOut:
    def test_runner_exception_reaches_every_waiter(self):
        runner = _Recorder(fail=True)

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor)
                results = await asyncio.gather(
                    batcher.submit("k", "a"), batcher.submit("k", "b"),
                    return_exceptions=True)
                await batcher.join()
                return results

        results = _run(go())
        assert all(isinstance(result, RuntimeError) for result in results)
        assert len(runner.calls) == 1  # one failed batch, not two

    def test_short_result_list_is_an_error(self):
        runner = _Recorder(short=True)

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor)
                results = await asyncio.gather(
                    batcher.submit("k", "a"), batcher.submit("k", "b"),
                    return_exceptions=True)
                await batcher.join()
                return results

        assert all(isinstance(result, RuntimeError)
                   for result in _run(go()))


class TestTelemetry:
    def test_stats_accumulate(self):
        runner = _Recorder()

        async def go():
            with ThreadPoolExecutor(2) as executor:
                batcher = _batcher(runner, executor)
                await asyncio.gather(batcher.submit("k", "a"),
                                     batcher.submit("k", "b"))
                await batcher.submit("k2", "c")
                await batcher.join()
                assert batcher.pending == 0
                assert batcher.in_flight == 0
                return batcher.stats.snapshot()

        stats = _run(go())
        assert stats["batches"] == 2
        assert stats["jobs"] == 3
        assert stats["max_batch"] == 2
        assert stats["sizes"]["1"] == 1 and stats["sizes"]["2"] == 1
