"""Shared fixtures for the live-backend suites.

``stub`` starts a fresh :class:`tests.llm.stub_server.StubLLMServer`
per test; ``clean_response_cache`` keeps the process-wide
``llm_responses`` store from leaking hits between tests (it is a
registered cache layer, shared like every other one).
"""

import pytest

from repro.llm.backends import response_cache
from stub_server import StubLLMServer


@pytest.fixture
def stub():
    server = StubLLMServer()
    try:
        yield server
    finally:
        server.close()


@pytest.fixture
def clean_response_cache():
    response_cache().clear()
    yield response_cache()
    response_cache().clear()
