"""Response cache: keying, hit/miss behaviour, error transparency, and
the ``llm_responses`` registration in the cache registry."""

import pytest

from repro.core.caches import caches
from repro.llm import (ChatMessage, ChatRequest, ChatResponse,
                       GenerationIntent, Usage)
from repro.llm.backends import (BackendServerError, CachingBackend,
                                OllamaBackend, ResilientBackend,
                                RetryPolicy, SamplingParams,
                                response_cache, response_key)
from repro.llm.replay import prompt_sha
from repro.util import LruCache


def _request(content="the prompt", kind="driver"):
    return ChatRequest(messages=(ChatMessage("user", content),),
                       intent=GenerationIntent(kind, "t", {}))


class _Counting:
    name = "count-model"
    backend_id = "counting"

    def __init__(self, fail_first=0):
        self.calls = 0
        self.fail_first = fail_first

    def complete(self, request):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise BackendServerError("boom", backend=self.backend_id)
        return ChatResponse(f"answer #{self.calls}", Usage(3, 4),
                            self.name)


class TestResponseKey:
    def test_key_carries_backend_model_prompt_and_params(self):
        key = response_key("ollama", "m", "p", "t=0.0")
        assert key == ("ollama", "m", prompt_sha("p"), "t=0.0")

    def test_any_component_changing_changes_the_key(self):
        base = response_key("ollama", "m", "p", "t=0.0")
        assert response_key("openai", "m", "p", "t=0.0") != base
        assert response_key("ollama", "m2", "p", "t=0.0") != base
        assert response_key("ollama", "m", "p2", "t=0.0") != base
        assert response_key("ollama", "m", "p", "t=0.7") != base


class TestCachingBackend:
    def test_repeat_request_hits_without_a_wire_call(
            self, clean_response_cache):
        inner = _Counting()
        backend = CachingBackend(inner)
        first = backend.complete(_request())
        second = backend.complete(_request())
        assert inner.calls == 1
        assert second is first  # including recorded usage
        assert backend.hits == 1 and backend.misses == 1

    def test_distinct_prompts_miss(self, clean_response_cache):
        inner = _Counting()
        backend = CachingBackend(inner)
        backend.complete(_request("a"))
        backend.complete(_request("b"))
        assert inner.calls == 2

    def test_error_leaves_the_cache_unchanged(self,
                                              clean_response_cache):
        inner = _Counting(fail_first=1)
        backend = CachingBackend(inner)
        with pytest.raises(BackendServerError):
            backend.complete(_request())
        assert len(clean_response_cache) == 0
        assert backend.complete(_request()).text == "answer #2"
        assert backend.complete(_request()).text == "answer #2"  # hit
        assert inner.calls == 2

    def test_derives_identity_through_a_resilient_wrapper(
            self, clean_response_cache):
        adapter = OllamaBackend("m", params=SamplingParams(
            temperature=0.5))
        stack = CachingBackend(ResilientBackend(
            adapter, policy=RetryPolicy(jitter=0.0)))
        assert stack.backend_id == "ollama"
        assert stack.params_fingerprint == \
            SamplingParams(temperature=0.5).fingerprint()
        assert stack.name == "m"

    def test_cache_hit_skips_the_resilience_layer(
            self, clean_response_cache):
        inner = _Counting()
        resilient = ResilientBackend(inner,
                                     policy=RetryPolicy(jitter=0.0))
        backend = CachingBackend(resilient)
        backend.complete(_request())
        backend.complete(_request())
        assert resilient.attempts == 1  # the hit never reached it

    def test_explicit_cache_override(self):
        private = LruCache(capacity=4)
        backend = CachingBackend(_Counting(), cache=private)
        backend.complete(_request())
        assert len(private) == 1
        assert len(response_cache()) == 0 or \
            response_cache().get(response_key(
                "counting", "count-model",
                _request().prompt_text, "")) is None


class TestRegistryIntegration:
    def test_llm_responses_is_a_registered_layer(self):
        assert "llm_responses" in caches.names()
        assert "llm_responses" in caches.stats()

    def test_clear_verb_reaches_the_store(self, clean_response_cache):
        CachingBackend(_Counting()).complete(_request())
        assert len(response_cache()) == 1
        caches.clear("llm_responses")
        assert len(response_cache()) == 0

    def test_snapshot_export_import_round_trip(self,
                                               clean_response_cache):
        backend = CachingBackend(_Counting())
        response = backend.complete(_request("warm me"))
        snapshot = caches.export_snapshot("llm_responses")
        assert "llm_responses" in snapshot.layers()
        payload = snapshot.payloads["llm_responses"]
        key = response_key("counting", "count-model",
                           _request("warm me").prompt_text, "")
        assert payload[key] == ("answer #1", 3, 4, "count-model")

        caches.clear("llm_responses")
        added = caches.import_snapshot(snapshot)
        assert added.get("llm_responses") == 1
        warmed = response_cache().get(key)
        assert warmed == response
        inner = _Counting()
        assert CachingBackend(inner).complete(
            _request("warm me")).text == "answer #1"
        assert inner.calls == 0  # answered from the imported snapshot
