"""Retry/backoff policy, rate-limit budgets, deadline propagation, the
in-flight cap, and the thread fan-out helpers — all clock-injected."""

import random
import threading
import time

import pytest

from repro.llm import ChatMessage, ChatRequest, ChatResponse, \
    GenerationIntent, Usage
from repro.llm.backends import (BackendRateLimited, BackendRequestError,
                                BackendServerError, BackendTimeout,
                                BudgetExhausted, InFlightCap,
                                RateLimitBudget, ResilientBackend,
                                RetryPolicy, fan_out, iter_fan_out,
                                remaining_deadline, set_global_in_flight,
                                use_deadline)


def _request():
    return ChatRequest(messages=(ChatMessage("user", "q"),),
                       intent=GenerationIntent("driver", "t", {}))


_OK = ChatResponse("fine", Usage(1, 1), "m")


class _Scripted:
    """Inner client raising/returning a scripted outcome per call."""

    name = "scripted-model"
    backend_id = "scripted"

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def complete(self, request):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class _Clock:
    """A manual clock whose sleep() advances it (no real waiting)."""

    def __init__(self):
        self.now = 100.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def _resilient(inner, clock=None, **kwargs):
    clock = clock if clock is not None else _Clock()
    kwargs.setdefault("policy", RetryPolicy(base_delay=1.0, jitter=0.0))
    return ResilientBackend(inner, sleep=clock.sleep, clock=clock,
                            **kwargs), clock


class TestRetryPolicy:
    def test_schedule_doubles_and_clamps(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 5.0]

    def test_jitter_spreads_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        rng = random.Random(7)
        delays = [policy.delay(1, rng) for _ in range(50)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # actually spread

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestResilientBackend:
    def test_success_passes_straight_through(self):
        backend, clock = _resilient(_Scripted([_OK]))
        assert backend.complete(_request()) is _OK
        assert backend.attempts == 1
        assert backend.retries == 0
        assert clock.sleeps == []
        assert backend.name == "scripted-model"

    def test_retryable_failures_backed_off_then_succeed(self):
        inner = _Scripted([BackendServerError("boom", backend="scripted"),
                           BackendTimeout("slow", backend="scripted"),
                           _OK])
        backend, clock = _resilient(inner)
        assert backend.complete(_request()).text == "fine"
        assert inner.calls == 3
        assert backend.retries == 2
        assert clock.sleeps == [1.0, 2.0]  # exponential schedule

    def test_non_retryable_raises_immediately(self):
        inner = _Scripted([BackendRequestError("no", backend="scripted"),
                           _OK])
        backend, clock = _resilient(inner)
        with pytest.raises(BackendRequestError):
            backend.complete(_request())
        assert inner.calls == 1
        assert clock.sleeps == []

    def test_retry_after_floors_the_backoff(self):
        inner = _Scripted([
            BackendRateLimited("429", backend="scripted",
                               retry_after=7.5),
            _OK])
        backend, clock = _resilient(inner)
        backend.complete(_request())
        assert clock.sleeps == [7.5]  # floored above base_delay

    def test_spent_budget_raises_typed_error_chained_to_cause(self):
        failures = [BackendServerError(f"boom {n}", backend="scripted")
                    for n in range(3)]
        backend, clock = _resilient(
            _Scripted(failures),
            policy=RetryPolicy(max_attempts=3, base_delay=1.0,
                               jitter=0.0))
        with pytest.raises(BudgetExhausted,
                           match="retry budget exhausted") as excinfo:
            backend.complete(_request())
        assert excinfo.value.__cause__ is failures[-1]
        assert not excinfo.value.retryable
        assert len(clock.sleeps) == 2  # no sleep after the last attempt

    def test_backoff_overrunning_deadline_raises_without_sleeping(self):
        inner = _Scripted([BackendServerError("boom", backend="scripted"),
                           _OK])
        backend, clock = _resilient(
            inner, policy=RetryPolicy(base_delay=10.0, jitter=0.0))
        with use_deadline(2.0, clock=clock):
            with pytest.raises(BudgetExhausted, match="deadline"):
                backend.complete(_request())
        assert clock.sleeps == []
        assert inner.calls == 1


class TestRateLimitBudget:
    def test_nonblocking_budget_exhaustion_is_typed(self):
        clock = _Clock()
        budget = RateLimitBudget(2, window_s=60.0, block=False,
                                 clock=clock, sleep=clock.sleep)
        budget.acquire()
        budget.acquire()
        with pytest.raises(BudgetExhausted, match="rate-limit") as exc:
            budget.acquire(backend="ollama")
        assert exc.value.backend == "ollama"

    def test_blocking_budget_sleeps_until_the_window_frees(self):
        clock = _Clock()
        budget = RateLimitBudget(1, window_s=30.0, clock=clock,
                                 sleep=clock.sleep)
        budget.acquire()
        budget.acquire()  # throttled, then proceeds
        assert budget.waits == 1
        assert clock.sleeps == [30.0]

    def test_window_slides(self):
        clock = _Clock()
        budget = RateLimitBudget(1, window_s=10.0, block=False,
                                 clock=clock, sleep=clock.sleep)
        budget.acquire()
        clock.now += 10.1
        budget.acquire()  # the old stamp expired; no error

    def test_wait_overrunning_deadline_is_budget_exhausted(self):
        clock = _Clock()
        budget = RateLimitBudget(1, window_s=60.0, clock=clock,
                                 sleep=clock.sleep)
        budget.acquire()
        with use_deadline(5.0, clock=clock):
            with pytest.raises(BudgetExhausted, match="deadline"):
                budget.acquire(backend="hf")
        assert clock.sleeps == []

    def test_resilient_backend_charges_the_budget_per_attempt(self):
        clock = _Clock()
        budget = RateLimitBudget(2, window_s=60.0, block=False,
                                 clock=clock, sleep=clock.sleep)
        inner = _Scripted([BackendServerError("boom", backend="scripted"),
                           _OK, _OK])
        backend, _ = _resilient(inner, clock=clock, rate_budget=budget)
        backend.complete(_request())  # two attempts = two slots
        with pytest.raises(BudgetExhausted, match="rate-limit"):
            backend.complete(_request())

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            RateLimitBudget(0)


class TestDeadlines:
    def test_unbounded_by_default(self):
        assert remaining_deadline() is None

    def test_nested_activations_keep_the_tighter_bound(self):
        clock = _Clock()
        with use_deadline(100.0, clock=clock):
            with use_deadline(5.0, clock=clock):
                assert remaining_deadline(clock=clock) == \
                    pytest.approx(5.0)
            with use_deadline(500.0, clock=clock):  # cannot extend
                assert remaining_deadline(clock=clock) == \
                    pytest.approx(100.0)
        assert remaining_deadline(clock=clock) is None

    def test_threads_do_not_inherit_the_deadline(self):
        seen = []
        with use_deadline(5.0):
            thread = threading.Thread(
                target=lambda: seen.append(remaining_deadline()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestInFlightCap:
    def test_bounds_concurrency(self):
        cap = InFlightCap(2)
        lock = threading.Lock()
        active = 0
        peak = 0

        def work(index):
            nonlocal active, peak
            with cap.slot():
                with lock:
                    active += 1
                    peak = max(peak, active)
                time.sleep(0.02)
                with lock:
                    active -= 1
            return index

        assert fan_out(work, range(8), max_workers=8) == list(range(8))
        assert peak <= 2

    def test_set_global_in_flight_swaps_the_shared_cap(self):
        from repro.llm.backends import resilience
        original = resilience.GLOBAL_IN_FLIGHT
        try:
            replaced = set_global_in_flight(2)
            assert resilience.GLOBAL_IN_FLIGHT is replaced
            assert replaced.limit == 2
        finally:
            resilience.GLOBAL_IN_FLIGHT = original

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            InFlightCap(0)


class TestFanOut:
    def test_preserves_input_order(self):
        def flip(index):
            time.sleep(0.01 * (4 - index % 5))
            return index * 10

        assert fan_out(flip, range(10), max_workers=5) == \
            [i * 10 for i in range(10)]

    def test_single_worker_runs_serially(self):
        threads = set()

        def who(index):
            threads.add(threading.current_thread().name)
            return index

        assert fan_out(who, range(4), max_workers=1) == list(range(4))
        assert len(threads) == 1

    def test_exception_propagates_by_default(self):
        def boom(index):
            if index == 2:
                raise RuntimeError("task 2 failed")
            return index

        with pytest.raises(RuntimeError, match="task 2"):
            fan_out(boom, range(4), max_workers=2)

    def test_return_exceptions_keeps_positions(self):
        def boom(index):
            if index == 1:
                raise RuntimeError("bad")
            return index

        results = fan_out(boom, range(3), max_workers=2,
                          return_exceptions=True)
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], RuntimeError)

    def test_iter_fan_out_yields_in_order(self):
        assert list(iter_fan_out(lambda i: i + 1, range(6),
                                 max_workers=3)) == [1, 2, 3, 4, 5, 6]
