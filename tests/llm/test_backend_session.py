"""End-to-end acceptance: every live adapter drives a full CorrectBench
correction session against the scripted stub server, offline.

The script is produced by a synthetic dry run of the same (task, seed):
its trace gives the exact response sequence the session consumes, and
because the pipeline's prompts are a pure function of the task and the
responses so far, serving those responses through a real HTTP adapter
reproduces the same session — same verdicts, same correction count,
and (the stub serves the recorded token tallies) the same Usage, byte
for byte.

The fault-sequence tests pin the resilience acceptance criteria: two
429s then a timeout then success completes a correction round without
surfacing an error; a spent retry budget fails with a typed
``BackendError``.
"""

import pytest
from stub_server import error, ok, stall

from repro.core.agent import CorrectBenchWorkflow
from repro.core.trace import MemoryTraceSink
from repro.core.validator import DEFAULT_CRITERION
from repro.llm import MeteredClient, UsageMeter, get_profile
from repro.llm.backends import (BackendError, BudgetExhausted,
                                ResilientBackend, RetryPolicy,
                                create_backend)
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK, SEED = "cmb_add16", 0  # this session takes 3 correction rounds

ADAPTERS = ("ollama", "openai", "hf")


@pytest.fixture(scope="module")
def dry_run():
    """The synthetic session whose responses script the stub."""
    sink = MemoryTraceSink()
    meter = UsageMeter()
    client = MeteredClient(
        SyntheticLLM(get_profile("gpt-4o-mini"), seed=SEED), meter)
    workflow = CorrectBenchWorkflow(client, get_task(TASK),
                                    DEFAULT_CRITERION, trace_sink=sink)
    result = workflow.run()
    assert result.corrections > 0, "the e2e session must correct"
    exchanges = [e for e in sink.events if e["type"] == "exchange"]
    return result, exchanges, meter


def _script_from(exchanges):
    return [ok(e["response"], e["usage"]["input_tokens"],
               e["usage"]["output_tokens"], model="stub-model")
            for e in exchanges]


def _run_session(client):
    meter = UsageMeter()
    workflow = CorrectBenchWorkflow(MeteredClient(client, meter),
                                    get_task(TASK), DEFAULT_CRITERION)
    return workflow.run(), meter


class TestAdapterSessions:
    @pytest.mark.parametrize("adapter", ADAPTERS)
    def test_full_correction_session_over_the_wire(self, adapter, stub,
                                                   dry_run):
        expected, exchanges, expected_meter = dry_run
        stub.script(_script_from(exchanges))
        backend = create_backend(adapter, "stub-model",
                                 base_url=stub.base_url, timeout=30.0)
        result, meter = _run_session(backend)

        assert result.validated == expected.validated
        assert result.corrections == expected.corrections
        assert result.reboots == expected.reboots
        # Usage replays byte-identically: the stub served the recorded
        # token tallies and the adapter parsed them off the wire.
        assert meter.total == expected_meter.total
        assert meter.by_kind() == expected_meter.by_kind()
        assert meter.request_count == len(exchanges)
        assert len(stub.requests) == len(exchanges)
        assert stub.unserved == 0

    def test_adapters_send_distinct_dialects(self, stub, dry_run):
        _, exchanges, _ = dry_run
        stub.script(_script_from(exchanges))
        backend = create_backend("ollama", "stub-model",
                                 base_url=stub.base_url, timeout=30.0)
        _run_session(backend)
        assert {r["path"] for r in stub.requests} == {"/api/chat"}


class TestFaultSequence:
    def test_429_429_timeout_then_success_completes_the_session(
            self, stub, dry_run):
        expected, exchanges, expected_meter = dry_run
        # The first exchange weathers two 429s and a read timeout
        # before its answer arrives; everything after runs clean.
        stub.script([error(429, retry_after=0.01), error(429),
                     stall(0.6)] + _script_from(exchanges))
        backend = create_backend("openai", "stub-model",
                                 base_url=stub.base_url, timeout=0.25)
        resilient = ResilientBackend(
            backend,
            policy=RetryPolicy(max_attempts=4, base_delay=0.01,
                               jitter=0.0))
        result, meter = _run_session(resilient)

        assert result.validated == expected.validated
        assert result.corrections == expected.corrections
        assert meter.total == expected_meter.total
        assert resilient.retries == 3  # 429, 429, timeout
        assert len(stub.requests) == len(exchanges) + 3
        assert stub.unserved == 0

    def test_spent_retry_budget_is_a_typed_backend_error(self, stub):
        stub.script([error(500)] * 3)
        backend = create_backend("ollama", "stub-model",
                                 base_url=stub.base_url, timeout=5.0)
        resilient = ResilientBackend(
            backend,
            policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                               jitter=0.0))
        with pytest.raises(BudgetExhausted) as excinfo:
            _run_session(resilient)
        assert isinstance(excinfo.value, BackendError)
        assert excinfo.value.__cause__ is not None
        assert excinfo.value.__cause__.status == 500
