"""Conversation transcripts and single-turn helpers."""

from repro.llm import (ChatResponse, Conversation, GenerationIntent,
                       single_turn, usage_for)


class _ScriptedClient:
    """Echoes a scripted list of replies, recording the request shapes."""

    name = "scripted"

    def __init__(self, replies):
        self.replies = list(replies)
        self.seen_message_counts = []

    def complete(self, request):
        self.seen_message_counts.append(len(request.messages))
        text = self.replies.pop(0)
        return ChatResponse(text, usage_for(request.messages, text))


def test_conversation_accumulates_history():
    client = _ScriptedClient(["first reply", "second reply"])
    conversation = Conversation(client, system_prompt="be terse")
    intent = GenerationIntent("correct_reason", "t")

    first = conversation.ask("question one", intent)
    second = conversation.ask("question two", intent)

    assert first == "first reply"
    assert second == "second reply"
    # Request 1: system + user. Request 2: + assistant + user.
    assert client.seen_message_counts == [2, 4]
    roles = [m.role for m in conversation.messages]
    assert roles == ["system", "user", "assistant", "user", "assistant"]


def test_transcript_rendering():
    client = _ScriptedClient(["pong"])
    conversation = Conversation(client)
    conversation.ask("ping", GenerationIntent("x", "t"))
    transcript = conversation.transcript
    assert "[user]" in transcript
    assert "ping" in transcript and "pong" in transcript


def test_single_turn():
    client = _ScriptedClient(["done"])
    reply = single_turn(client, "sys", "do it",
                        GenerationIntent("x", "t"))
    assert reply == "done"
    assert client.seen_message_counts == [2]
