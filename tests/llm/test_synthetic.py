"""Synthetic LLM: dispatch, determinism, ledger, repair backends."""

import pytest

from repro.llm import (ChatMessage, ChatRequest, GenerationIntent, GPT_4O,
                       GPT_4O_MINI)
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task
from repro.util import extract_first_code_block


def ask(llm, kind, task, **payload):
    payload.setdefault("task", task)
    request = ChatRequest(
        (ChatMessage("user", f"please produce {kind}"),),
        GenerationIntent(kind, task.task_id, payload))
    return llm.complete(request)


@pytest.fixture()
def task():
    return get_task("seq_count4_up")


class TestDispatch:
    def test_unknown_intent_rejected(self, task):
        llm = SyntheticLLM(GPT_4O)
        with pytest.raises(ValueError):
            ask(llm, "nonexistent_stage", task)

    def test_scenarios_listing(self, task):
        text = ask(SyntheticLLM(GPT_4O), "scenarios", task,
                   attempt=0).text
        assert "Test scenarios:" in text
        assert "1." in text

    def test_driver_is_fenced_verilog(self, task):
        text = ask(SyntheticLLM(GPT_4O), "driver", task, attempt=0).text
        code = extract_first_code_block(text, "verilog")
        assert "module tb" in code

    def test_checker_is_fenced_python(self, task):
        text = ask(SyntheticLLM(GPT_4O), "checker", task, attempt=0).text
        code = extract_first_code_block(text, "python")
        assert "class RefModel" in code

    def test_rtl_sample(self, task):
        text = ask(SyntheticLLM(GPT_4O), "rtl", task, sample_index=0,
                   group_nonce=0).text
        code = extract_first_code_block(text, "verilog")
        assert "top_module" in code

    def test_baseline_tb(self, task):
        text = ask(SyntheticLLM(GPT_4O), "baseline_tb", task,
                   attempt=0).text
        code = extract_first_code_block(text, "verilog")
        assert "module tb" in code

    def test_usage_reflects_lengths(self, task):
        response = ask(SyntheticLLM(GPT_4O), "driver", task, attempt=0)
        assert response.usage.input_tokens > 0
        assert response.usage.output_tokens > 100


class TestDeterminism:
    def test_same_seed_same_artifacts(self, task):
        a = ask(SyntheticLLM(GPT_4O, seed=5), "checker", task,
                attempt=2).text
        b = ask(SyntheticLLM(GPT_4O, seed=5), "checker", task,
                attempt=2).text
        assert a == b

    def test_different_seeds_can_differ(self, task):
        texts = {ask(SyntheticLLM(GPT_4O, seed=s), "driver", task,
                     attempt=0).text for s in range(6)}
        assert len(texts) > 1

    def test_rtl_group_varies_across_samples(self, task):
        llm = SyntheticLLM(GPT_4O_MINI, seed=0)
        sources = {extract_first_code_block(
            ask(llm, "rtl", task, sample_index=i, group_nonce=0).text,
            "verilog") for i in range(10)}
        assert len(sources) > 1


class TestLedger:
    def test_remembers_own_artifacts(self, task):
        llm = SyntheticLLM(GPT_4O, seed=0)
        code = extract_first_code_block(
            ask(llm, "checker", task, attempt=0).text, "python")
        entry = llm.introspect(code)
        assert entry is not None
        assert entry.scope == "checker"
        assert entry.task_id == task.task_id

    def test_foreign_artifact_unknown(self, task):
        llm = SyntheticLLM(GPT_4O, seed=0)
        assert llm.introspect("class RefModel: pass") is None


class TestSyntaxFix:
    def _broken_checker(self, llm, task):
        for attempt in range(60):
            code = extract_first_code_block(
                ask(llm, "checker", task, attempt=attempt).text, "python")
            try:
                compile(code, "<t>", "exec")
            except SyntaxError:
                return code, attempt
        pytest.skip("no syntax-broken checker drawn in 60 attempts")

    def test_fix_keeps_functional_plan(self, task):
        llm = SyntheticLLM(GPT_4O_MINI, seed=1)
        broken, attempt = self._broken_checker(llm, task)
        plan_before = llm.introspect(broken).plan
        # Iterate the repair loop until the syntax fault is gone.
        current = broken
        for iteration in range(10):
            reply = ask(llm, "syntax_fix", task, artifact=current,
                        scope="checker", iteration=iteration).text
            current = extract_first_code_block(reply, "python")
            entry = llm.introspect(current)
            if not entry.plan.syntax_fault:
                break
        assert not entry.plan.syntax_fault
        assert entry.plan.misconception == plan_before.misconception
        assert entry.plan.random_variant == plan_before.random_variant


class TestCorrectorBackends:
    def test_reasoning_mentions_steps(self, task):
        llm = SyntheticLLM(GPT_4O, seed=0)
        checker = extract_first_code_block(
            ask(llm, "checker", task, attempt=0).text, "python")
        reply = ask(llm, "correct_reason", task, checker_src=checker,
                    wrong_scenarios=(2, 3)).text
        assert "Step 1" in reply
        assert "Step 2" in reply
        assert "[2, 3]" in reply

    def test_rewrite_returns_python_core(self, task):
        llm = SyntheticLLM(GPT_4O, seed=0)
        checker = extract_first_code_block(
            ask(llm, "checker", task, attempt=0).text, "python")
        reply = ask(llm, "correct_rewrite", task, checker_src=checker,
                    wrong_scenarios=(1,), correction_round=1).text
        code = extract_first_code_block(reply, "python")
        assert "class RefModel" in code

    def test_correction_eventually_removes_random_fault(self, task):
        llm = SyntheticLLM(GPT_4O, seed=3)
        faulty = None
        for attempt in range(80):
            code = extract_first_code_block(
                ask(llm, "checker", task, attempt=attempt).text, "python")
            entry = llm.introspect(code)
            if (entry.plan.random_variant is not None
                    and not entry.plan.syntax_fault):
                faulty = code
                break
        if faulty is None:
            pytest.skip("no random-fault checker drawn")
        current = faulty
        for round_index in range(1, 12):
            reply = ask(llm, "correct_rewrite", task, checker_src=current,
                        wrong_scenarios=(1, 2),
                        correction_round=round_index).text
            current = extract_first_code_block(reply, "python")
            if llm.introspect(current).plan.random_variant is None:
                return
        pytest.fail("corrector never removed an uncorrelated fault "
                    "despite helpful bug info")


class TestShallowPlans:
    def test_shallow_plan_truncates(self):
        task = get_task("seq_mod10")
        llm = SyntheticLLM(GPT_4O_MINI, seed=0)
        lengths = set()
        for attempt in range(40):
            plan = llm._plan_for(task, attempt)
            lengths.add(len(plan))
        # Mini plans shallow often enough that both shapes appear.
        assert any(length <= 2 for length in lengths)
        assert any(length > 2 for length in lengths)
