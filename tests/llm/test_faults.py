"""Fault model: determinism, monotonicity, trap statistics."""

from repro.llm import GPT_4O, GPT_4O_MINI, get_profile
from repro.llm.faults import FaultModel
from repro.problems import CMB, SEQ, load_dataset, tasks_of_kind


def test_profile_lookup_aliases():
    assert get_profile("gpt-4o") is GPT_4O
    assert get_profile("GPT-4o") is GPT_4O
    assert get_profile("gpt-4o-2024-08-06") is GPT_4O


def test_unknown_profile_raises():
    import pytest
    with pytest.raises(KeyError):
        get_profile("gpt-9")


class TestDeterminism:
    def test_same_seed_same_plans(self):
        task = load_dataset()[0]
        a = FaultModel(GPT_4O, seed=7)
        b = FaultModel(GPT_4O, seed=7)
        for attempt in range(5):
            assert a.plan_checker(task, attempt) == b.plan_checker(
                task, attempt)
            assert a.plan_driver(task, attempt) == b.plan_driver(
                task, attempt)
            assert a.plan_rtl(task, attempt) == b.plan_rtl(task, attempt)

    def test_different_attempts_vary(self):
        task = next(t for t in load_dataset() if t.difficulty > 0.4)
        model = FaultModel(GPT_4O, seed=0)
        plans = {repr(model.plan_checker(task, attempt))
                 for attempt in range(30)}
        assert len(plans) > 1

    def test_sticky_misconception_stable_within_seed(self):
        task = load_dataset()[10]
        model = FaultModel(GPT_4O, seed=3)
        first = model.sticky_misconception(task)
        assert all(model.sticky_misconception(task).vid == first.vid
                   for _ in range(5))

    def test_trap_independent_of_seed(self):
        task = load_dataset()[0]
        assert (FaultModel(GPT_4O, seed=0).is_trap(task)
                == FaultModel(GPT_4O, seed=99).is_trap(task))


class TestStatistics:
    def test_seq_traps_more_than_cmb(self):
        model = FaultModel(GPT_4O, seed=0)
        cmb_rate = sum(model.is_trap(t) for t in tasks_of_kind(CMB)) / 81
        seq_rate = sum(model.is_trap(t) for t in tasks_of_kind(SEQ)) / 75
        assert seq_rate > cmb_rate

    def test_weaker_model_traps_more(self):
        strong = FaultModel(GPT_4O, seed=0)
        weak = FaultModel(GPT_4O_MINI, seed=0)
        tasks = load_dataset()
        assert (sum(weak.is_trap(t) for t in tasks)
                > sum(strong.is_trap(t) for t in tasks))

    def test_misconception_prob_increases_with_difficulty(self):
        model = FaultModel(GPT_4O, seed=0)
        tasks = sorted(tasks_of_kind(SEQ), key=lambda t: t.difficulty)
        easy = [t for t in tasks[:15] if not model.is_trap(t)]
        hard = [t for t in tasks[-15:] if not model.is_trap(t)]
        mean_easy = sum(model.misconception_prob(t, "checker")
                        for t in easy) / max(len(easy), 1)
        mean_hard = sum(model.misconception_prob(t, "checker")
                        for t in hard) / max(len(hard), 1)
        assert mean_hard > mean_easy

    def test_trap_difficulty_band(self):
        model = FaultModel(GPT_4O, seed=0)
        for task in load_dataset():
            d = model.effective_difficulty(task)
            if model.is_trap(task):
                assert d >= 0.86
            else:
                assert d <= 0.82

    def test_baseline_plan_scales_faults(self):
        model = FaultModel(GPT_4O, seed=0)
        tasks = load_dataset()
        base_faulty = sum(
            model.plan_baseline(t, 0).checker.functional for t in tasks)
        normal_faulty = sum(
            model.plan_checker(t, 0).functional for t in tasks)
        assert base_faulty >= normal_faulty

    def test_seq_baseline_syntax_worse_than_cmb(self):
        model = FaultModel(GPT_4O, seed=0)
        cmb = [model.plan_baseline(t, a).syntax_fault
               for t in tasks_of_kind(CMB) for a in range(3)]
        seq = [model.plan_baseline(t, a).syntax_fault
               for t in tasks_of_kind(SEQ) for a in range(3)]
        assert sum(seq) / len(seq) > sum(cmb) / len(cmb)


class TestPlanShapes:
    def test_checker_plan_mutually_exclusive_variants(self):
        model = FaultModel(GPT_4O_MINI, seed=1)
        for task in load_dataset()[:40]:
            for attempt in range(4):
                plan = model.plan_checker(task, attempt)
                assert not (plan.misconception is not None
                            and plan.random_variant is not None)

    def test_driver_plan_stuck_input_names_real_port(self):
        model = FaultModel(GPT_4O_MINI, seed=2)
        names_ok = True
        for task in load_dataset():
            for attempt in range(3):
                plan = model.plan_driver(task, attempt)
                stuck = plan.faults.stuck_input
                if stuck is not None:
                    ports = {p.name for p in task.driven_ports}
                    names_ok &= stuck in ports
        assert names_ok

    def test_describe_lists_active_faults(self):
        model = FaultModel(GPT_4O_MINI, seed=0)
        for task in load_dataset():
            plan = model.plan_checker(task, 0)
            descriptions = plan.describe()
            if plan.misconception:
                assert any("misconception" in d for d in descriptions)
            if plan.syntax_fault:
                assert any("syntax" in d for d in descriptions)
