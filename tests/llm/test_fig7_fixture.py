"""A miniature Fig. 7 through the fixture tier: record a campaign with
``fixture+synthetic``, replay it with ``fixture``, and get identical
levels and usage — plus the provenance labels that keep recorded,
synthetic, and live numbers from being conflated in reports."""

import pytest

from repro.eval import (METHOD_CORRECTBENCH, campaign_provenance,
                        default_config, render_fig7, run_campaign)
from repro.hdl.context import current_context

TASKS = ("cmb_add16", "cmb_eq4")


def _mini_config(context):
    return default_config(task_ids=TASKS, seeds=(0,),
                          profile_name="gpt-4o-mini", n_jobs=1,
                          context=context)


class TestRecordedCampaign:
    @pytest.fixture(scope="class")
    def recorded_and_replayed(self, tmp_path_factory):
        fixture_dir = str(tmp_path_factory.mktemp("fig7_fixtures"))
        recorded = run_campaign(_mini_config(
            current_context().evolve(llm_backend="fixture+synthetic",
                                     llm_fixture_dir=fixture_dir)))
        replayed = run_campaign(_mini_config(
            current_context().evolve(llm_backend="fixture",
                                     llm_fixture_dir=fixture_dir)))
        return recorded, replayed

    def test_replay_reproduces_every_run(self, recorded_and_replayed):
        recorded, replayed = recorded_and_replayed
        assert len(replayed.runs) == len(recorded.runs) == \
            3 * len(TASKS)  # methods x tasks
        for before, after in zip(recorded.runs, replayed.runs):
            assert after.method == before.method
            assert after.task_id == before.task_id
            assert after.level == before.level
            assert after.usage == before.usage

    def test_recording_matches_the_plain_synthetic_tier(
            self, recorded_and_replayed):
        recorded, _ = recorded_and_replayed
        plain = run_campaign(_mini_config(current_context()))
        for synthetic, taped in zip(plain.runs, recorded.runs):
            assert taped.level == synthetic.level
            assert taped.usage == synthetic.usage

    def test_correctbench_runs_exercise_correction(
            self, recorded_and_replayed):
        recorded, _ = recorded_and_replayed
        correct = recorded.of_method(METHOD_CORRECTBENCH)
        assert any(run.corrections for run in correct)

    def test_fig7_provenance_labels(self, recorded_and_replayed):
        recorded, replayed = recorded_and_replayed
        plain = run_campaign(_mini_config(current_context()))
        assert campaign_provenance(plain) == "synthetic profiles"
        assert campaign_provenance(recorded) == \
            "recorded fixtures (recording synthetic)"
        assert campaign_provenance(replayed) == "recorded fixtures"

        figure = render_fig7({"gpt-4o-mini (replayed)": replayed,
                              "gpt-4o-mini (synthetic)": plain})
        assert "[recorded fixtures]" in figure
        assert "[synthetic profiles]" in figure


class TestProvenanceLabels:
    def test_live_and_recording_specs(self):
        def labelled(spec):
            config = _mini_config(
                current_context().evolve(
                    llm_backend=spec, llm_fixture_dir="/tmp/x"))

            class _Result:  # campaign_provenance only reads config
                pass

            result = _Result()
            result.config = config
            return campaign_provenance(result)

        assert labelled("") == "synthetic profiles"
        assert labelled("synthetic") == "synthetic profiles"
        assert labelled("ollama") == "live backend: ollama"
        assert labelled("fixture+hf") == \
            "recorded fixtures (recording via hf)"
