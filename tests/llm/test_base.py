"""LLM base layer: messages, usage metering, token counting."""

import pytest
from hypothesis import given, strategies as st

from repro.llm import (ChatMessage, ChatRequest, GenerationIntent,
                       MeteredClient, Usage, UsageMeter, approx_token_count,
                       usage_for)


class TestChatMessage:
    def test_valid_roles(self):
        for role in ("system", "user", "assistant"):
            assert ChatMessage(role, "x").role == role

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            ChatMessage("tool", "x")


class TestUsage:
    def test_addition(self):
        total = Usage(10, 5) + Usage(3, 2)
        assert total == Usage(13, 7)
        assert total.total_tokens == 20

    def test_meter_accumulates_by_kind(self):
        meter = UsageMeter()
        meter.record("driver", Usage(100, 50))
        meter.record("driver", Usage(10, 5))
        meter.record("checker", Usage(1, 1))
        assert meter.total == Usage(111, 56)
        assert meter.by_kind()["driver"] == Usage(110, 55)
        assert meter.request_count == 3

    def test_meter_merge(self):
        a = UsageMeter()
        a.record("x", Usage(1, 1))
        b = UsageMeter()
        b.record("x", Usage(2, 2))
        b.record("y", Usage(3, 3))
        a.merge(b)
        assert a.total == Usage(6, 6)
        assert a.request_count == 3


class TestTokenCounting:
    def test_empty(self):
        assert approx_token_count("") == 0

    def test_short_words_one_token(self):
        assert approx_token_count("the cat") == 2

    def test_long_word_splits(self):
        assert approx_token_count("internationalization") == 5  # 20 chars

    def test_punctuation_counts(self):
        assert approx_token_count("a, b") == 3

    def test_code_like_text(self):
        count = approx_token_count("assign out = a + b;")
        assert 5 <= count <= 10

    @given(st.text(min_size=0, max_size=500))
    def test_nonnegative_and_bounded(self, text):
        count = approx_token_count(text)
        assert count >= 0
        assert count <= max(1, len(text))  # never more than chars

    @given(st.text(min_size=1, max_size=200),
           st.text(min_size=1, max_size=200))
    def test_superadditive_under_concat_with_space(self, a, b):
        # Concatenating with a separator never produces fewer tokens
        # than the larger side.
        combined = approx_token_count(a + " " + b)
        assert combined >= max(approx_token_count(a) // 2,
                               approx_token_count(b) // 2)


class TestMeteredClient:
    class _Echo:
        name = "echo-model"

        def complete(self, request):
            from repro.llm import ChatResponse
            text = request.messages[-1].content.upper()
            return ChatResponse(text, usage_for(request.messages, text))

    def test_metering_wraps_client(self):
        meter = UsageMeter()
        client = MeteredClient(self._Echo(), meter)
        request = ChatRequest(
            (ChatMessage("user", "hello world"),),
            GenerationIntent("driver", "t"))
        response = client.complete(request)
        assert response.text == "HELLO WORLD"
        assert meter.total.input_tokens > 0
        assert meter.by_kind()["driver"].output_tokens > 0
        assert client.name == "echo-model"

class TestUsageMeterConcurrency:
    """Live-backend fan-out hits one meter from many threads; totals
    must stay exact and meters must survive pickling (they travel
    inside campaign work results)."""

    def test_concurrent_records_are_exact(self):
        import threading

        meter = UsageMeter()
        threads_n, per_thread = 8, 250

        def hammer(kind):
            for _ in range(per_thread):
                meter.record(kind, Usage(1, 2))

        threads = [threading.Thread(target=hammer, args=(f"k{i % 4}",))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = threads_n * per_thread
        assert meter.request_count == expected
        assert meter.total == Usage(expected, 2 * expected)
        by_kind = meter.by_kind()
        assert sum(u.input_tokens for u in by_kind.values()) == expected

    def test_concurrent_merge_into_shared_meter(self):
        import threading

        target = UsageMeter()

        def contribute():
            local = UsageMeter()
            for _ in range(100):
                local.record("driver", Usage(1, 1))
            target.merge(local)

        threads = [threading.Thread(target=contribute) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert target.total == Usage(600, 600)
        assert target.request_count == 600

    def test_pickle_round_trip_rebuilds_the_lock(self):
        import pickle

        meter = UsageMeter()
        meter.record("driver", Usage(5, 7))
        meter.record("correct", Usage(1, 1))

        clone = pickle.loads(pickle.dumps(meter))
        assert clone.total == meter.total
        assert clone.by_kind() == meter.by_kind()
        assert clone.request_count == 2
        # The rebuilt lock must actually work.
        clone.record("driver", Usage(1, 0))
        assert clone.total == Usage(7, 8)
