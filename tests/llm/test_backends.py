"""Live adapters against the scripted stub server: wire shapes, usage
parsing, and the typed error mapping of the HTTP transport."""

import socket

import pytest
from stub_server import error, ok, raw

from repro.llm import ChatMessage, ChatRequest, GenerationIntent
from repro.llm.backends import (BackendConnectionError, BackendError,
                                BackendRateLimited, BackendRequestError,
                                BackendServerError, BackendTimeout,
                                HFRouterBackend, LLMBackend,
                                MalformedResponseError, OllamaBackend,
                                OpenAICompatBackend, SamplingParams,
                                backend_names, create_backend,
                                is_live_backend, use_deadline)
from repro.llm.tokens import approx_token_count


def _request(content="hello backend", system=""):
    messages = ((ChatMessage("system", system),) if system else ())
    messages += (ChatMessage("user", content),)
    return ChatRequest(messages=messages,
                       intent=GenerationIntent("driver", "t", {}))


def _ollama(stub, **kwargs):
    kwargs.setdefault("timeout", 10.0)
    return OllamaBackend("m1", base_url=stub.base_url, **kwargs)


def _openai(stub, **kwargs):
    kwargs.setdefault("timeout", 10.0)
    return OpenAICompatBackend("m1", base_url=stub.base_url, **kwargs)


class TestConstruction:
    def test_model_required(self):
        for cls in (OllamaBackend, OpenAICompatBackend, HFRouterBackend):
            with pytest.raises(ValueError, match="model"):
                cls("")

    def test_default_base_urls(self):
        assert OllamaBackend("m").base_url == "http://127.0.0.1:11434"
        assert OpenAICompatBackend("m").base_url == \
            "https://api.openai.com"
        assert HFRouterBackend("m").base_url == \
            "https://router.huggingface.co"

    def test_explicit_base_url_wins_and_is_normalised(self):
        backend = OllamaBackend("m", base_url="http://host:1/")
        assert backend.base_url == "http://host:1"

    def test_name_is_the_model(self):
        assert OllamaBackend("qwen2.5:7b").name == "qwen2.5:7b"

    def test_backend_ids(self):
        assert OllamaBackend.backend_id == "ollama"
        assert OpenAICompatBackend.backend_id == "openai"
        assert HFRouterBackend.backend_id == "hf"
        assert issubclass(HFRouterBackend, OpenAICompatBackend)

    def test_sampling_fingerprint_distinguishes_params(self):
        a = SamplingParams().fingerprint()
        b = SamplingParams(temperature=0.7).fingerprint()
        assert a != b

    def test_wire_messages_shape(self):
        wire = LLMBackend.wire_messages(_request("hi", system="sys"))
        assert wire == [{"role": "system", "content": "sys"},
                        {"role": "user", "content": "hi"}]


class TestOllamaAdapter:
    def test_request_shape_and_parse(self, stub):
        stub.script([ok("the reply", 11, 7, model="served-model")])
        response = _ollama(stub).complete(_request("hi", system="sys"))
        assert response.text == "the reply"
        assert response.usage.input_tokens == 11
        assert response.usage.output_tokens == 7
        assert response.model_name == "served-model"
        seen = stub.requests[0]
        assert seen["path"] == "/api/chat"
        assert seen["payload"]["model"] == "m1"
        assert seen["payload"]["stream"] is False
        assert seen["payload"]["messages"] == [
            {"role": "system", "content": "sys"},
            {"role": "user", "content": "hi"}]
        assert seen["payload"]["options"] == {
            "temperature": 0.0, "top_p": 1.0, "num_predict": 2048}

    def test_missing_counts_fall_back_to_approx(self, stub):
        stub.script([ok("one two three")])
        request = _request("a b c d")
        response = _ollama(stub).complete(request)
        assert response.usage.input_tokens == \
            approx_token_count(request.prompt_text)
        assert response.usage.output_tokens == \
            approx_token_count("one two three")

    def test_missing_content_is_malformed(self, stub):
        stub.script([{"body": {"model": "m", "done": True}}])
        with pytest.raises(MalformedResponseError, match="message"):
            _ollama(stub).complete(_request())


class TestOpenAIAdapter:
    def test_request_shape_and_parse(self, stub):
        stub.script([ok("answer", 5, 3, model="served")])
        backend = _openai(stub, api_key="sk-test")
        response = backend.complete(_request("hi"))
        assert response.text == "answer"
        assert response.usage.input_tokens == 5
        assert response.usage.output_tokens == 3
        assert response.model_name == "served"
        seen = stub.requests[0]
        assert seen["path"] == "/v1/chat/completions"
        assert seen["payload"]["model"] == "m1"
        assert seen["payload"]["temperature"] == 0.0
        assert seen["payload"]["max_tokens"] == 2048
        assert seen["authorization"] == "Bearer sk-test"

    def test_no_key_sends_no_auth_header(self, stub):
        stub.script([ok("x")])
        _openai(stub).complete(_request())
        assert stub.requests[0]["authorization"] == ""

    def test_missing_usage_falls_back_to_approx(self, stub):
        stub.script([ok("y z")])
        response = _openai(stub).complete(_request("q"))
        assert response.usage.output_tokens == approx_token_count("y z")

    def test_no_choices_is_malformed(self, stub):
        stub.script([{"body": {"model": "m", "choices": []}}])
        with pytest.raises(MalformedResponseError, match="choices"):
            _openai(stub).complete(_request())

    def test_choice_without_content_is_malformed(self, stub):
        stub.script([{"body": {"choices": [{"message": {}}]}}])
        with pytest.raises(MalformedResponseError, match="content"):
            _openai(stub).complete(_request())

    def test_hf_router_speaks_the_same_dialect(self, stub):
        stub.script([ok("routed", 2, 2)])
        backend = HFRouterBackend("m1", base_url=stub.base_url,
                                  timeout=10.0)
        assert backend.complete(_request()).text == "routed"
        assert stub.requests[0]["path"] == "/v1/chat/completions"


class TestErrorMapping:
    def test_429_maps_to_rate_limited_with_retry_after(self, stub):
        stub.script([error(429, retry_after=1.5)])
        with pytest.raises(BackendRateLimited) as excinfo:
            _ollama(stub).complete(_request())
        assert excinfo.value.retryable
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 1.5

    def test_429_without_retry_after(self, stub):
        stub.script([error(429)])
        with pytest.raises(BackendRateLimited) as excinfo:
            _openai(stub).complete(_request())
        assert excinfo.value.retry_after is None

    def test_5xx_maps_to_server_error(self, stub):
        stub.script([error(503)])
        with pytest.raises(BackendServerError) as excinfo:
            _ollama(stub).complete(_request())
        assert excinfo.value.retryable
        assert excinfo.value.status == 503

    def test_4xx_maps_to_request_error_not_retryable(self, stub):
        stub.script([error(404)])
        with pytest.raises(BackendRequestError) as excinfo:
            _openai(stub).complete(_request())
        assert not excinfo.value.retryable
        assert excinfo.value.status == 404

    def test_undecodable_body_is_malformed(self, stub):
        stub.script([raw("<!doctype html>not json")])
        with pytest.raises(MalformedResponseError) as excinfo:
            _ollama(stub).complete(_request())
        assert excinfo.value.retryable  # flaky proxies truncate bodies

    def test_non_object_json_is_malformed(self, stub):
        stub.script([raw("[1, 2, 3]")])
        with pytest.raises(MalformedResponseError, match="object"):
            _openai(stub).complete(_request())

    def test_read_timeout_maps_to_backend_timeout(self, stub):
        stub.script([{"delay": 1.0}])
        with pytest.raises(BackendTimeout):
            _ollama(stub, timeout=0.2).complete(_request())

    def test_unreachable_endpoint_maps_to_connection_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens on this port now
        backend = OllamaBackend("m", base_url=f"http://127.0.0.1:{port}",
                                timeout=2.0)
        with pytest.raises(BackendConnectionError):
            backend.complete(_request())

    def test_exhausted_deadline_refuses_to_send(self, stub):
        backend = _ollama(stub)
        with use_deadline(0.0):
            with pytest.raises(BackendTimeout, match="deadline"):
                backend.complete(_request())
        assert stub.requests == []  # never reached the wire

    def test_every_backend_error_carries_the_backend_label(self, stub):
        stub.script([error(500)])
        with pytest.raises(BackendError) as excinfo:
            _ollama(stub).complete(_request())
        assert excinfo.value.backend == "ollama"


class TestRegistry:
    def test_backend_names(self):
        assert backend_names() == ("synthetic", "ollama", "openai",
                                   "hf", "fixture")

    def test_create_backend_dispatch(self):
        assert isinstance(create_backend("ollama", "m"), OllamaBackend)
        assert isinstance(create_backend("hf", "m"), HFRouterBackend)
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("bard", "m")

    def test_is_live_backend(self):
        assert is_live_backend("ollama")
        assert is_live_backend("fixture+hf")
        assert not is_live_backend("")
        assert not is_live_backend("synthetic")
        assert not is_live_backend("fixture")
        assert not is_live_backend("fixture+synthetic")
