"""A scripted in-process HTTP server speaking the live-adapter dialects.

:class:`StubLLMServer` binds an ephemeral localhost port and answers
``POST`` requests on both wire shapes the adapters speak — Ollama's
``/api/chat`` and the OpenAI-compatible ``/v1/chat/completions`` — from
a reply script the test supplies.  Script entries are plain dicts built
with the helpers below:

- :func:`ok` — a successful completion (text plus optional exact token
  counts, so replayed usage can match a recording byte for byte);
- :func:`error` — an HTTP failure (429 with ``Retry-After``, 5xx, …);
- :func:`stall` — sleep before answering, to trip client timeouts;
- :func:`raw` — a verbatim body, for undecodable-reply tests;
- ``{"body": {...}}`` — an arbitrary JSON object, for replies that are
  valid JSON but the wrong shape.

Every request is appended to ``server.requests`` as a dict with the
path, the decoded payload, and the ``Authorization`` header, so tests
can assert the exact wire shape an adapter produced.  An unscripted
request answers 500 — a test that under-scripts fails loudly instead
of hanging.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


def ok(text, input_tokens=None, output_tokens=None, model="stub-model"):
    return {"text": text, "input_tokens": input_tokens,
            "output_tokens": output_tokens, "model": model}


def error(status, retry_after=None):
    return {"status": status, "retry_after": retry_after}


def stall(seconds):
    return {"delay": seconds}


def raw(body, status=200):
    return {"raw": body, "status": status}


class StubLLMServer:
    def __init__(self):
        self._lock = threading.Lock()
        self._script = []
        self.requests = []
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0),
                                         self._make_handler())
        self.httpd.daemon_threads = True
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.httpd.server_address[1]}"

    def script(self, replies) -> None:
        """Append ``replies`` to the queue (consumed one per request)."""
        with self._lock:
            self._script.extend(replies)

    @property
    def unserved(self) -> int:
        with self._lock:
            return len(self._script)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)

    def _next(self, record: dict) -> dict:
        with self._lock:
            self.requests.append(record)
            if self._script:
                return self._script.pop(0)
        return {"status": 500, "retry_after": None}  # unscripted request

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence request logging
                pass

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
                reply = server._next({
                    "path": self.path,
                    "payload": payload,
                    "authorization":
                        self.headers.get("Authorization", ""),
                })
                try:
                    self._answer(reply, payload)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # the client timed out and hung up; expected

            def _answer(self, reply, payload):
                if reply.get("delay"):
                    time.sleep(reply["delay"])
                status = reply.get("status", 200)
                if "raw" in reply:
                    body = reply["raw"].encode("utf-8")
                elif "body" in reply:
                    body = json.dumps(reply["body"]).encode("utf-8")
                elif status != 200:
                    body = b'{"error": "scripted failure"}'
                else:
                    body = json.dumps(
                        self._completion(reply, payload)).encode("utf-8")
                self.send_response(status)
                if reply.get("retry_after") is not None:
                    self.send_header("Retry-After",
                                     str(reply["retry_after"]))
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _completion(self, reply, payload):
                text = reply.get("text", "")
                model = reply.get("model") or payload.get("model", "stub")
                if self.path.endswith("/api/chat"):  # Ollama dialect
                    body = {"model": model, "done": True,
                            "message": {"role": "assistant",
                                        "content": text}}
                    if reply.get("input_tokens") is not None:
                        body["prompt_eval_count"] = reply["input_tokens"]
                    if reply.get("output_tokens") is not None:
                        body["eval_count"] = reply["output_tokens"]
                    return body
                usage = {}  # OpenAI-compatible dialect
                if reply.get("input_tokens") is not None:
                    usage["prompt_tokens"] = reply["input_tokens"]
                if reply.get("output_tokens") is not None:
                    usage["completion_tokens"] = reply["output_tokens"]
                return {"model": model,
                        "choices": [{"index": 0, "finish_reason": "stop",
                                     "message": {"role": "assistant",
                                                 "content": text}}],
                        "usage": usage}

        return Handler
