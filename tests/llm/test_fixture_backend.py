"""Recorded-fixture mode: record -> replay byte-identical, tamper
detection, trace-format compatibility, and resolver wiring."""

import json

import pytest

from repro.core.agent import CorrectBenchWorkflow
from repro.core.trace import TRACE_VERSION, load_trace
from repro.core.validator import DEFAULT_CRITERION
from repro.hdl.context import current_context
from repro.llm import (ChatMessage, ChatRequest, GenerationIntent,
                       MeteredClient, UsageMeter, get_profile)
from repro.llm.backends import (FixtureBackend, FixtureError,
                                FixtureStore, resolve_llm_client)
from repro.llm.replay import ReplayMismatch
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK, SEED = "cmb_add16", 0  # a session with real correction rounds


def _run_workflow(client):
    meter = UsageMeter()
    workflow = CorrectBenchWorkflow(MeteredClient(client, meter),
                                    get_task(TASK), DEFAULT_CRITERION)
    return workflow.run(), meter


def _record_fixture(path):
    recorder = FixtureBackend.record(
        SyntheticLLM(get_profile("gpt-4o-mini"), seed=SEED), str(path))
    result, meter = _run_workflow(recorder)
    recorder.close()
    return result, meter


class TestRecording:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fixtures") / "s.fixture.jsonl"
        result, meter = _record_fixture(path)
        return path, result, meter

    def test_fixture_is_a_parsable_trace(self, recorded):
        path, _, _ = recorded
        trace = load_trace(str(path))
        assert trace.header["version"] == TRACE_VERSION
        assert trace.header["fixture"] is True
        assert trace.header["task_id"] == TASK
        assert trace.exchanges()

    def test_exchanges_carry_integrity_shas_and_dense_indexes(
            self, recorded):
        path, _, _ = recorded
        exchanges = load_trace(str(path)).exchanges()
        assert [e["index"] for e in exchanges] == \
            list(range(len(exchanges)))
        for entry in exchanges:
            assert len(entry["response_sha"]) == 64
            assert entry["usage"]["input_tokens"] >= 0

    def test_replay_is_byte_identical(self, recorded):
        path, result, meter = recorded
        replayed_result, replayed_meter = _run_workflow(
            FixtureBackend.replay(str(path)))
        assert replayed_result.validated == result.validated
        assert replayed_result.corrections == result.corrections
        assert replayed_result.corrections > 0  # a real session
        assert replayed_meter.total == meter.total
        assert replayed_meter.by_kind() == meter.by_kind()
        assert replayed_meter.request_count == meter.request_count

    def test_replay_strict_matches_prompts(self, recorded):
        path, _, _ = recorded
        replay = FixtureBackend.replay(str(path))
        drifted = ChatRequest(
            messages=(ChatMessage("user", "something else"),),
            intent=GenerationIntent("scenarios", TASK, {}))
        with pytest.raises(ReplayMismatch):
            replay.complete(drifted)

    def test_introspect_delegates_while_recording(self, tmp_path):
        inner = SyntheticLLM(get_profile("gpt-4o-mini"), seed=SEED)
        recorder = FixtureBackend.record(
            inner, str(tmp_path / "f.fixture.jsonl"))
        assert recorder.name == inner.name
        assert recorder.inner is inner
        assert recorder.introspect("not a recorded artifact") is None


class TestTamperDetection:
    def _tamper(self, path, out_path, mutate):
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        mutate(events)
        out_path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n")
        return out_path

    @pytest.fixture(scope="class")
    def recorded_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tamper") / "s.fixture.jsonl"
        _record_fixture(path)
        return path

    def test_edited_response_fails_the_integrity_check(
            self, recorded_path, tmp_path):
        def mutate(events):
            exchange = next(e for e in events if e["type"] == "exchange")
            exchange["response"] = exchange["response"] + "\n// edited"

        tampered = self._tamper(recorded_path,
                                tmp_path / "t.fixture.jsonl", mutate)
        with pytest.raises(FixtureError, match="modified"):
            FixtureBackend.replay(str(tampered))

    def test_plain_trace_without_shas_still_replays(
            self, recorded_path, tmp_path):
        # PR-6 traces predate response_sha; they must stay replayable.
        def mutate(events):
            for event in events:
                event.pop("response_sha", None)

        plain = self._tamper(recorded_path,
                             tmp_path / "p.fixture.jsonl", mutate)
        replay = FixtureBackend.replay(str(plain))
        result, _ = _run_workflow(replay)
        assert result.validated

    def test_missing_file_is_a_fixture_error(self, tmp_path):
        with pytest.raises(FixtureError, match="cannot be read"):
            FixtureBackend.replay(str(tmp_path / "absent.jsonl"))

    def test_garbage_file_is_a_fixture_error(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(FixtureError, match="does not parse"):
            FixtureBackend.replay(str(path))


class TestFixtureStore:
    def test_paths_key_on_task_method_model_seed(self, tmp_path):
        store = FixtureStore(str(tmp_path))
        path = store.path_for("cmb_add16", "qwen2.5:7b", 3,
                              method="correctbench")
        assert path.endswith(
            "cmb_add16.correctbench.qwen2.5-7b.3.fixture.jsonl")
        assert store.path_for("cmb_add16", "qwen2.5:7b", 3) != path

    def test_hostile_identifiers_are_sanitised(self, tmp_path):
        store = FixtureStore(str(tmp_path))
        path = store.path_for("../../etc", "a/b c", 0)
        stem = path[len(str(tmp_path)) + 1:]
        assert "/" not in stem and " " not in stem
        assert not stem.startswith(".")
        assert path.startswith(str(tmp_path))

    def test_directory_required(self):
        with pytest.raises(ValueError):
            FixtureStore("")


class TestResolverWiring:
    def test_fixture_mode_requires_a_directory(self):
        context = current_context().evolve(llm_backend="fixture")
        with pytest.raises(ValueError, match="fixture directory"):
            resolve_llm_client("gpt-4o-mini", 0, context=context,
                               task_id=TASK)

    def test_record_then_replay_round_trip(self, tmp_path):
        record_context = current_context().evolve(
            llm_backend="fixture+synthetic",
            llm_fixture_dir=str(tmp_path))
        recorder = resolve_llm_client(
            "gpt-4o-mini", SEED, context=record_context, task_id=TASK,
            method="correctbench")
        result, meter = _run_workflow(recorder)
        recorder.close()
        expected = FixtureStore(str(tmp_path)).path_for(
            TASK, "gpt-4o-mini", SEED, method="correctbench")
        assert load_trace(expected).exchanges()

        replay_context = current_context().evolve(
            llm_backend="fixture", llm_fixture_dir=str(tmp_path))
        replayer = resolve_llm_client(
            "gpt-4o-mini", SEED, context=replay_context, task_id=TASK,
            method="correctbench")
        replayed, replayed_meter = _run_workflow(replayer)
        assert replayed.validated == result.validated
        assert replayed_meter.total == meter.total

    def test_default_resolution_stays_synthetic(self):
        client = resolve_llm_client("gpt-4o-mini", 0)
        assert isinstance(client, SyntheticLLM)
