"""Mutation engine: operators, mutant generation, fault injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.simulation import dut_compiles, syntax_ok
from repro.hdl.parser import parse_source
from repro.mutation import (generate_mutants, inject_python_syntax_fault,
                            inject_verilog_syntax_fault,
                            perturb_numeric_literal, random_mutation)
from repro.mutation.operators import count_sites, mutate_module
from repro.problems import load_dataset

_SAMPLE = load_dataset()[::9]


class TestOperators:
    def test_site_count_deterministic(self):
        module = parse_source(load_dataset()[0].golden_rtl()).modules[0]
        assert count_sites(module) == count_sites(module)

    def test_every_site_produces_a_change(self):
        import random as random_mod
        task = load_dataset()[5]
        module = parse_source(task.golden_rtl()).modules[0]
        for site in range(count_sites(module)):
            mutated, description = mutate_module(
                module, site, random_mod.Random(site))
            assert description, f"site {site} made no edit"
            assert mutated != module, f"site {site} left the AST equal"


class TestEngine:
    @pytest.mark.parametrize("task", _SAMPLE, ids=lambda t: t.task_id)
    def test_mutants_compile_and_differ(self, task):
        mutants = generate_mutants(
            task.golden_rtl(), 10, task.task_id,
            compile_check=lambda s: dut_compiles(s)[0])
        assert len(mutants) >= 5
        sources = {m.source for m in mutants}
        assert len(sources) == len(mutants)
        assert task.golden_rtl() not in sources
        for mutant in mutants:
            assert dut_compiles(mutant.source)[0]
            assert mutant.description

    def test_deterministic_per_seed(self):
        task = load_dataset()[0]
        a = generate_mutants(task.golden_rtl(), 10, "seed-x")
        b = generate_mutants(task.golden_rtl(), 10, "seed-x")
        assert [m.source for m in a] == [m.source for m in b]

    def test_different_seeds_differ(self):
        task = load_dataset()[3]
        a = generate_mutants(task.golden_rtl(), 10, "seed-1")
        b = generate_mutants(task.golden_rtl(), 10, "seed-2")
        assert [m.source for m in a] != [m.source for m in b]

    def test_random_mutation_parses(self):
        task = load_dataset()[7]
        source, description = random_mutation(task.golden_rtl(), "n")
        assert syntax_ok(source)
        assert description


class TestVerilogSyntaxFaults:
    @pytest.mark.parametrize("task", _SAMPLE, ids=lambda t: t.task_id)
    def test_corrupted_source_fails_to_parse(self, task):
        broken = inject_verilog_syntax_fault(task.golden_rtl(),
                                             task.task_id)
        assert not syntax_ok(broken)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_breaks_parsing(self, seed):
        source = load_dataset()[0].golden_rtl()
        assert not syntax_ok(inject_verilog_syntax_fault(source, seed))

    def test_deterministic(self):
        source = load_dataset()[1].golden_rtl()
        assert (inject_verilog_syntax_fault(source, 5)
                == inject_verilog_syntax_fault(source, 5))


class TestPythonFaults:
    def _checker(self):
        from repro.codegen import render_checker_core
        return render_checker_core(load_dataset()[0])

    def test_corrupted_fails_to_compile(self):
        broken = inject_python_syntax_fault(self._checker(), "s")
        with pytest.raises(SyntaxError):
            compile(broken, "<t>", "exec")

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_breaks_compile(self, seed):
        broken = inject_python_syntax_fault(self._checker(), seed)
        with pytest.raises(SyntaxError):
            compile(broken, "<t>", "exec")

    def test_literal_perturbation_still_compiles(self):
        source = self._checker()
        perturbed, description = perturb_numeric_literal(source, "s")
        if description:
            assert perturbed != source
            compile(perturbed, "<t>", "exec")

    def test_literal_perturbation_deterministic(self):
        source = self._checker()
        assert (perturb_numeric_literal(source, 3)
                == perturb_numeric_literal(source, 3))
