#!/usr/bin/env python3
"""Quickstart: run CorrectBench end-to-end on one task.

Generates a hybrid testbench for an 8-bit enabled counter from its
natural-language spec alone, self-validates it against a group of
imperfect RTLs, self-corrects / reboots as needed (Algorithm 1), and
finally grades the accepted testbench with AutoEval.

Run:  python examples/quickstart.py
"""

from repro.core import CorrectBenchWorkflow
from repro.eval import evaluate
from repro.llm import MeteredClient, UsageMeter, get_profile
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK_ID = "seq_count8_en"


def main() -> None:
    task = get_task(TASK_ID)
    print(f"Task: {task.task_id} — {task.title}")
    print("-" * 60)
    print(task.spec_text)
    print("-" * 60)

    client = MeteredClient(SyntheticLLM(get_profile("gpt-4o"), seed=7),
                           UsageMeter())
    workflow = CorrectBenchWorkflow(client, task)
    result = workflow.run()

    print(f"validator accepted: {result.validated}")
    print(f"reboots: {result.reboots}   corrections: {result.corrections}")
    print("action history:",
          " -> ".join(event.action for event in result.history))
    print()

    grade = evaluate(result.final_tb)
    print(f"AutoEval grade: {grade.level.label}"
          + (f" ({grade.detail})" if grade.detail else ""))
    usage = client.meter.total
    print(f"token cost: {usage.input_tokens} in / "
          f"{usage.output_tokens} out")
    print()
    print("=== final driver (head) ===")
    print("\n".join(result.final_tb.driver_src.splitlines()[:16]))
    print("...")
    print()
    print("=== final checker core ===")
    print(result.final_tb.checker_src)


if __name__ == "__main__":
    main()
