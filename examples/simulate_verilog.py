#!/usr/bin/env python3
"""Use the HDL substrate directly: simulate hand-written Verilog.

The library ships a self-contained Verilog subset simulator (the Icarus
Verilog replacement).  This example simulates a 4-bit Johnson counter
with a hand-written testbench and prints the waveform table it dumps.

Run:  python examples/simulate_verilog.py
"""

from repro.hdl import simulate

SOURCE = """
module johnson (
    input clk,
    input reset,
    output reg [3:0] q
);
always @(posedge clk) begin
    if (reset) q <= 4'd0;
    else q <= {q[2:0], ~q[3]};
end
endmodule

module tb;
    reg clk, reset;
    wire [3:0] q;
    integer cycle;
    integer file;

    johnson dut(.clk(clk), .reset(reset), .q(q));
    always #5 clk = ~clk;

    initial begin
        file = $fopen("wave.txt");
        clk = 0;
        reset = 1;
        @(posedge clk); #1;
        reset = 0;
        for (cycle = 0; cycle < 10; cycle = cycle + 1) begin
            @(posedge clk); #1;
            $fdisplay(file, "cycle %d : q = %b", cycle, q);
        end
        $fclose(file);
        $finish;
    end
endmodule
"""


def main() -> None:
    result = simulate(SOURCE, "tb")
    print(f"finished: {result.finished}  "
          f"sim time: {result.sim_time} ticks  "
          f"statements: {result.stmt_count}")
    print()
    print("Johnson counter waveform (note the 8-state twisted-ring "
          "sequence):")
    for line in result.files["wave.txt"]:
        print(" ", line)


if __name__ == "__main__":
    main()
