#!/usr/bin/env python3
"""CorrectBench across model profiles (the paper's Fig. 7 view).

Runs the full workflow on a small task slice under each of the three
model profiles and prints the Eval2/Eval1/Eval0/Failed bands per model.

Run:  python examples/multi_llm.py
"""

from repro.eval import default_config, render_fig7, run_campaign
from repro.eval.campaign import campaign_jobs_from_env
from repro.problems import dataset_slice

MODELS = ("GPT-4o", "Claude-3.5-Sonnet", "GPT-4o-mini")


def main() -> None:
    task_ids = [task.task_id for task in dataset_slice(5, 5, stride=9)]
    jobs = campaign_jobs_from_env(default=4)
    results = {}
    for model in MODELS:
        print(f"running {model} on {len(task_ids)} tasks ...")
        config = default_config(task_ids=task_ids, seeds=(0,),
                                profile_name=model, n_jobs=jobs)
        results[model] = run_campaign(config)
    print()
    print(render_fig7(results))


if __name__ == "__main__":
    main()
