#!/usr/bin/env python3
"""Watch the two-stage corrector at work (the paper's Fig. 5 demo).

Builds a testbench whose checker carries a known misconception, validates
it to obtain the bug information, then runs the corrector conversation
and prints the stage-1 reasoning and the stage-2 rewrite, followed by the
re-validation verdict.

Run:  python examples/corrector_session.py
"""

from repro.codegen import render_checker_core, render_driver
from repro.core import (CRITERION_70, Corrector, HybridTestbench,
                        ScenarioValidator)
from repro.llm import MeteredClient, UsageMeter, get_profile
from repro.llm.faults import FaultModel
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK_ID = "seq_ashift8"  # the arithmetic shifter, as in the paper's demo


def main() -> None:
    task = get_task(TASK_ID)
    profile = get_profile("gpt-4o")
    llm = SyntheticLLM(profile, seed=11)
    client = MeteredClient(llm, UsageMeter())

    # A testbench whose checker believes a wrong variant of the spec
    # (not the model's sticky one, so the judge group can expose it).
    sticky = FaultModel(profile, seed=11).sticky_misconception(task)
    variant = next(v for v in task.variants if v.vid != sticky.vid)
    plan = task.canonical_scenarios()
    testbench = HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task,
                                        task.variant_params(variant)),
        scenarios=tuple((s.index, s.description) for s in plan))
    print(f"Task: {task.title}")
    print(f"Injected checker bug: {variant.description}")
    print()

    validator = ScenarioValidator(client, task, CRITERION_70)
    report = validator.validate(testbench)
    print(f"validator verdict: {'correct' if report.verdict else 'wrong'}")
    print(f"bug info: wrong={list(report.wrong)} "
          f"correct={list(report.correct)} "
          f"uncertain={list(report.uncertain)}")
    print()

    corrections = 0
    while not report.verdict and corrections < 3:
        corrections += 1
        outcome = Corrector(client).correct(task, testbench, report,
                                            corrections)
        print(f"=== correction {corrections}: stage 1 reasoning ===")
        print(outcome.reasoning)
        print()
        testbench = outcome.testbench
        report = validator.validate(testbench)
        print("re-validation: "
              f"{'correct' if report.verdict else 'still wrong'}")
        print()

    print("=== final checker core ===")
    print(testbench.checker_src)


if __name__ == "__main__":
    main()
