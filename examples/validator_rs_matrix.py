#!/usr/bin/env python3
"""Inspect the scenario-based validator: RS matrices for a correct and a
deliberately wrong testbench (the paper's Fig. 4 view).

The wrong testbench carries a behavioural misconception in its Python
checker.  Against the 20 imperfect judge RTLs, its affected scenarios
show up as (near-)solid red columns, and the validator hands those
indexes to the corrector as bug information.

Run:  python examples/validator_rs_matrix.py
"""

from repro.codegen import render_checker_core, render_driver
from repro.core import CRITERION_70, HybridTestbench, ScenarioValidator
from repro.llm import MeteredClient, UsageMeter, get_profile
from repro.llm.faults import FaultModel
from repro.llm.synthetic import SyntheticLLM
from repro.problems import get_task

TASK_ID = "cmb_mux4to1_4b"


def build_tb(task, checker_src):
    plan = task.canonical_scenarios()
    return HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, plan),
        checker_src=checker_src,
        scenarios=tuple((s.index, s.description) for s in plan))


def main() -> None:
    task = get_task(TASK_ID)
    profile = get_profile("gpt-4o")
    client = MeteredClient(SyntheticLLM(profile, seed=0), UsageMeter())
    validator = ScenarioValidator(client, task, CRITERION_70)

    print(f"Task: {task.title} — scenarios:")
    for scenario in task.canonical_scenarios():
        print(f"  {scenario.index}. {scenario.description}")
    print()

    correct_tb = build_tb(task, render_checker_core(task))
    report = validator.validate(correct_tb)
    print("=== correct testbench ===")
    print(report.matrix.render_ascii())
    print(f"verdict: {'correct' if report.verdict else 'wrong'}"
          + (f" ({report.note})" if report.note else ""))
    print()

    # Sabotage the checker with a variant the judge group doesn't share.
    sticky = FaultModel(profile, seed=0).sticky_misconception(task)
    variant = next(v for v in task.variants if v.vid != sticky.vid)
    wrong_tb = build_tb(task, render_checker_core(
        task, task.variant_params(variant)))
    report = validator.validate(wrong_tb)
    print(f"=== wrong testbench (checker {variant.description}) ===")
    print(report.matrix.render_ascii())
    print(f"verdict: {'correct' if report.verdict else 'wrong'}")
    print(f"bug information for the corrector: wrong={list(report.wrong)}"
          f" correct={list(report.correct)}"
          f" uncertain={list(report.uncertain)}")


if __name__ == "__main__":
    main()
