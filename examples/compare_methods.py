#!/usr/bin/env python3
"""Head-to-head: baseline vs AutoBench vs CorrectBench on a task slice.

Runs the three testbench-generation methods of the paper on a balanced
slice of the benchmark and prints a miniature Table I.

Run:  python examples/compare_methods.py          (12 tasks, 1 seed)
      python examples/compare_methods.py --full   (all 156 tasks)
"""

import sys

from repro.eval import default_config, render_table1, run_campaign
from repro.eval.campaign import campaign_jobs_from_env
from repro.problems import dataset_slice, load_dataset


def main() -> None:
    full = "--full" in sys.argv
    if full:
        task_ids = [task.task_id for task in load_dataset()]
    else:
        task_ids = [task.task_id for task in dataset_slice(6, 6,
                                                           stride=7)]
    config = default_config(
        task_ids=task_ids, seeds=(0,),
        n_jobs=campaign_jobs_from_env(default=4))
    print(f"running 3 methods x {len(task_ids)} tasks "
          f"(jobs={config.n_jobs}) ...")

    done = {"n": 0}

    def progress(index, total, run):
        done["n"] = index
        if index % 10 == 0 or index == total:
            print(f"  {index}/{total} ({run.method} {run.task_id}: "
                  f"{run.level.label})")

    result = run_campaign(config, progress=progress)
    print()
    print(render_table1(result))


if __name__ == "__main__":
    main()
