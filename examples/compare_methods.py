#!/usr/bin/env python3
"""Head-to-head: baseline vs AutoBench vs CorrectBench on a task slice.

Runs the three testbench-generation methods of the paper on a balanced
slice of the benchmark and prints a miniature Table I — plus a fourth,
*out-of-tree* method registered through the campaign-method registry,
to show that new strategies plug in without touching the runner.

The whole comparison executes under an explicit ``SimContext`` (the
request-scoped configuration API); flip ``ENGINE`` below to
``"interpret"`` to rerun everything on the reference engine.

Run:  python examples/compare_methods.py          (12 tasks, 1 seed)
      python examples/compare_methods.py --full   (all 156 tasks)
"""

import multiprocessing
import sys

from repro.core.baseline import DirectBaseline
from repro.eval import (ALL_METHODS, campaign_method, default_config,
                        render_table1, run_campaign)
from repro.eval.campaign import campaign_jobs_from_env
from repro.hdl import use_context
from repro.problems import dataset_slice, load_dataset

ENGINE = "compiled"


# An extra strategy the campaign runner has never heard of: the direct
# baseline, but sampling the LLM's second attempt.  Registering it makes
# it a first-class method name for campaigns and the CLI alike.
@campaign_method("baseline-retry")
def baseline_retry(call):
    testbench = DirectBaseline(call.client, call.task).generate(attempt=1)
    return call.result(call.grade(testbench))


def main() -> None:
    full = "--full" in sys.argv
    if full:
        task_ids = [task.task_id for task in load_dataset()]
    else:
        task_ids = [task.task_id for task in dataset_slice(6, 6,
                                                           stride=7)]
    methods = ALL_METHODS + ("baseline-retry",)
    jobs = campaign_jobs_from_env(default=4)
    if multiprocessing.get_start_method() != "fork":
        # The registry is per process and "baseline-retry" lives in this
        # __main__ script: spawned/forkserver workers re-import repro but
        # not this file, so they would not know the method.  Forked
        # workers inherit the registration; elsewhere, run serial.
        jobs = 1
    config = default_config(
        task_ids=task_ids, seeds=(0,), methods=methods, n_jobs=jobs)
    print(f"running {len(methods)} methods x {len(task_ids)} tasks "
          f"(jobs={config.n_jobs}, engine={ENGINE}) ...")

    done = {"n": 0}

    def progress(index, total, run):
        done["n"] = index
        if index % 10 == 0 or index == total:
            print(f"  {index}/{total} ({run.method} {run.task_id}: "
                  f"{run.level.label})")

    # The campaign snapshots the active context into every work item,
    # so this choice travels to pool workers too.
    with use_context(engine=ENGINE):
        result = run_campaign(config, progress=progress)
    print()
    print(render_table1(result))
    retry = result.of_method("baseline-retry")
    eval2 = sum(1 for run in retry if run.level.label == "Eval2")
    print(f"baseline-retry (registered out-of-tree): "
          f"{eval2}/{len(retry)} Eval2")


if __name__ == "__main__":
    main()
