"""The synthetic LLM: a deterministic model of an unreliable code writer.

``SyntheticLLM`` implements :class:`~repro.llm.base.LLMClient`.  It
receives the pipeline's real prompt strings (metered for token cost) and
dispatches on the request's :class:`GenerationIntent` to a stage backend.
Each backend renders *real source code* through :mod:`repro.codegen` —
from the golden parameters when the draw is clean, from perturbed
parameters (misconceptions), mutated ASTs or corrupted text when the
fault model says the model errs.

The artifacts it produced are remembered in a private *ledger* keyed by
artifact text.  The corrector backends consult the ledger — the model
"knows what it wrote" — which is how stage-1 reasoning can name the real
fault and stage-2 can (probabilistically) remove it.  Nothing outside
this class reads the ledger except tests and instrumentation; the
validator and AutoEval never see ground truth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..codegen import (render_baseline_tb, render_checker_core,
                       render_driver, render_scenario_listing)
from ..mutation import (inject_python_syntax_fault,
                        inject_verilog_syntax_fault,
                        perturb_numeric_literal, random_mutation)
from ..problems.model import Scenario, TaskSpec
from ..util import derive_rng, stable_hash
from .base import ChatRequest, ChatResponse, usage_for
from .faults import (BaselinePlan, CheckerFaultPlan, DriverFaultPlan,
                     FaultModel, RtlFaultPlan)
from .profiles import ModelProfile

_PROSE_OPENERS = (
    "Here is the requested code.\n\n",
    "Sure — the implementation below follows the specification.\n\n",
    "Below is my solution.\n\n",
    "Certainly. The code is:\n\n",
)


def _key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class LedgerEntry:
    """What the model remembers about an artifact it produced."""

    scope: str              # "checker" | "driver" | "rtl" | "baseline"
    task_id: str
    attempt: int
    plan: Any               # the fault plan used to render it
    correction_round: int = 0


class SyntheticLLM:
    """Offline stand-in for the commercial models the paper evaluates."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self.faults = FaultModel(profile, seed)
        self._ledger: dict[str, LedgerEntry] = {}

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    def complete(self, request: ChatRequest) -> ChatResponse:
        intent = request.intent
        handler = getattr(self, f"_on_{intent.kind}", None)
        if handler is None:
            raise ValueError(f"no backend for intent {intent.kind!r}")
        text = handler(intent.payload)
        return ChatResponse(text=text,
                            usage=usage_for(request.messages, text),
                            model_name=self.name)

    # ------------------------------------------------------------------
    # Instrumentation (tests / analysis only — not used by the pipeline)
    # ------------------------------------------------------------------
    def introspect(self, artifact_text: str) -> LedgerEntry | None:
        return self._ledger.get(_key(artifact_text))

    def _remember(self, text: str, entry: LedgerEntry) -> None:
        self._ledger[_key(text)] = entry

    def _prose(self, *seed_parts: object) -> str:
        rng = derive_rng("prose", self.profile.name, *seed_parts)
        return rng.choice(_PROSE_OPENERS)

    @staticmethod
    def _task(payload: Mapping[str, Any]) -> TaskSpec:
        task = payload["task"]
        if not isinstance(task, TaskSpec):
            raise TypeError("intent payload lacks the TaskSpec")
        return task

    def _plan_for(self, task: TaskSpec, attempt: int):
        """The scenario plan this model uses for generation ``attempt``.

        With the profile's shallow-plan probability, the model plans only
        a couple of short scenarios — the weak-coverage failure mode that
        passes the golden DUT but under-discriminates mutants.
        """
        rng = derive_rng("scenario-plan", self.profile.name, self.seed,
                         task.task_id, attempt)
        plan = task.scenarios(rng)
        if self.faults.plans_shallow(task, attempt):
            keep_vectors = 3 if task.kind == "SEQ" else 2
            plan = tuple(
                Scenario(s.index, s.name, s.description,
                         s.vectors[:keep_vectors])
                for s in plan[:2])
        return plan

    # ------------------------------------------------------------------
    # Stage backends
    # ------------------------------------------------------------------
    def _on_scenarios(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        attempt = payload.get("attempt", 0)
        listing = render_scenario_listing(self._plan_for(task, attempt))
        return (self._prose(task.task_id, attempt, "scn")
                + listing)

    def _on_driver(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        attempt = payload.get("attempt", 0)
        plan = self.faults.plan_driver(task, attempt)
        source = self._render_driver(task, attempt, plan)
        return (self._prose(task.task_id, attempt, "drv")
                + f"```verilog\n{source}```\n")

    def _render_driver(self, task: TaskSpec, attempt: int,
                       plan: DriverFaultPlan) -> str:
        scenario_plan = self._plan_for(task, attempt)
        source = render_driver(task, scenario_plan, faults=plan.faults,
                               style_seed=stable_hash(
                                   self.profile.name, attempt) % 7)
        if plan.syntax_fault:
            source = inject_verilog_syntax_fault(
                source, (self.profile.name, self.seed, task.task_id,
                         attempt, "drv"))
        self._remember(source, LedgerEntry("driver", task.task_id,
                                           attempt, plan))
        return source

    def _on_checker(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        attempt = payload.get("attempt", 0)
        plan = self.faults.plan_checker(task, attempt)
        source = self._render_checker(task, attempt, plan)
        return (self._prose(task.task_id, attempt, "chk")
                + f"```python\n{source}```\n")

    def _render_checker(self, task: TaskSpec, attempt: int,
                        plan: CheckerFaultPlan,
                        correction_round: int = 0) -> str:
        params = None
        if plan.misconception is not None:
            params = task.variant_params(plan.misconception)
        elif plan.random_variant is not None:
            params = task.variant_params(plan.random_variant)
        source = render_checker_core(
            task, params,
            style_seed=stable_hash(self.profile.name, attempt,
                                   correction_round) % 5)
        if plan.literal_fault:
            source, _ = perturb_numeric_literal(
                source, (self.profile.name, self.seed, task.task_id,
                         attempt, "lit"))
        if plan.syntax_fault:
            source = inject_python_syntax_fault(
                source, (self.profile.name, self.seed, task.task_id,
                         attempt, correction_round, "chk"))
        self._remember(source, LedgerEntry("checker", task.task_id,
                                           attempt, plan,
                                           correction_round))
        return source

    def _on_syntax_fix(self, payload: Mapping[str, Any]) -> str:
        """AutoBench auto-debug: repair a syntax-broken artifact."""
        task = self._task(payload)
        artifact = payload["artifact"]
        iteration = payload.get("iteration", 0)
        entry = self.introspect(artifact)
        fence = "python" if payload.get("scope") == "checker" else "verilog"
        if entry is None:
            # Not ours — echo it back (a real model might flail too).
            return f"```{fence}\n{artifact}```\n"
        fixed = self.faults.syntax_fix_succeeds(task, entry.attempt,
                                                iteration)
        if entry.scope == "driver":
            plan = entry.plan
            new_plan = replace(plan, syntax_fault=(not fixed))
            source = self._render_driver(task, entry.attempt, new_plan)
        else:
            plan = entry.plan
            new_plan = replace(plan, syntax_fault=(not fixed))
            source = self._render_checker(task, entry.attempt, new_plan,
                                          entry.correction_round)
        return (self._prose(task.task_id, entry.attempt, iteration, "fix")
                + f"```{fence}\n{source}```\n")

    def _on_scenario_fix(self, payload: Mapping[str, Any]) -> str:
        """AutoBench scenario-list checking: restore dropped scenarios."""
        task = self._task(payload)
        artifact = payload["artifact"]
        entry = self.introspect(artifact)
        if entry is None or entry.scope != "driver":
            return f"```verilog\n{artifact}```\n"
        restored = self.faults.scenario_completion_succeeds(
            task, entry.attempt)
        plan: DriverFaultPlan = entry.plan
        new_faults = replace(plan.faults,
                             drop_last_scenario=(plan.faults.drop_last_scenario
                                                 and not restored))
        source = self._render_driver(task, entry.attempt,
                                     replace(plan, faults=new_faults))
        return (self._prose(task.task_id, entry.attempt, "scnfix")
                + f"```verilog\n{source}```\n")

    def _on_rtl(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        index = payload.get("sample_index", 0)
        nonce = payload.get("group_nonce", 0)
        plan = self.faults.plan_rtl(task, index, nonce)
        source = self._render_rtl(task, index, nonce, plan)
        return (self._prose(task.task_id, index, nonce, "rtl")
                + f"```verilog\n{source}```\n")

    def _render_rtl(self, task: TaskSpec, index: int, nonce: int,
                    plan: RtlFaultPlan) -> str:
        if plan.misconception is not None:
            source = task.variant_rtl(plan.misconception)
        elif plan.random_variant is not None:
            source = task.variant_rtl(plan.random_variant)
        else:
            source = task.golden_rtl()
        if plan.ast_mutation:
            source, _ = random_mutation(
                source, (self.profile.name, self.seed, task.task_id,
                         nonce, index, "mut"))
        header = (f"// RTL implementation attempt {index + 1} "
                  f"for: {task.title}\n")
        source = header + source
        if plan.syntax_fault:
            source = inject_verilog_syntax_fault(
                source, (self.profile.name, self.seed, task.task_id,
                         nonce, index, "rsyn"))
        self._remember(source, LedgerEntry("rtl", task.task_id, index,
                                           plan))
        return source

    def _on_baseline_tb(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        attempt = payload.get("attempt", 0)
        plan: BaselinePlan = self.faults.plan_baseline(task, attempt)
        params = None
        if plan.checker.misconception is not None:
            params = task.variant_params(plan.checker.misconception)
        elif plan.checker.random_variant is not None:
            params = task.variant_params(plan.checker.random_variant)
        model_source = render_checker_core(task, params)
        if plan.checker.literal_fault:
            model_source, _ = perturb_numeric_literal(
                model_source, (self.profile.name, self.seed,
                               task.task_id, attempt, "blit"))
        scenario_plan = self._plan_for(task, attempt + 9000)
        try:
            source = render_baseline_tb(task, scenario_plan, model_source,
                                        faults=plan.faults)
        except Exception:
            # A literal fault can make the belief-model crash while the
            # baseline evaluates it; the "LLM" falls back to its golden
            # belief but keeps the structural faults.
            source = render_baseline_tb(task, scenario_plan,
                                        render_checker_core(task),
                                        faults=plan.faults)
        if plan.syntax_fault:
            source = inject_verilog_syntax_fault(
                source, (self.profile.name, self.seed, task.task_id,
                         attempt, "bsyn"))
        self._remember(source, LedgerEntry("baseline", task.task_id,
                                           attempt, plan))
        return (self._prose(task.task_id, attempt, "btb")
                + f"```verilog\n{source}```\n")

    # ------------------------------------------------------------------
    # Corrector backends (Section III-C)
    # ------------------------------------------------------------------
    def _on_correct_reason(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        checker_src = payload["checker_src"]
        wrong = tuple(payload.get("wrong_scenarios", ()))
        entry = self.introspect(checker_src)
        lines = ["Step 1 — why the scenarios fail:"]
        if entry is not None and entry.plan.functional:
            for description in entry.plan.describe():
                lines.append("- The checker likely suffers from a "
                             f"{description}.")
        else:
            lines.append("- The failing scenarios suggest the reference "
                          "model diverges from the specification.")
        lines.append("")
        lines.append("Step 2 — where: the RefModel.step logic that feeds "
                     f"the scenarios {list(wrong)}.")
        lines.append("")
        lines.append("Step 3 — how: re-derive the affected logic from the "
                     "specification and regenerate the checker core.")
        return "\n".join(lines)

    def _on_correct_rewrite(self, payload: Mapping[str, Any]) -> str:
        task = self._task(payload)
        checker_src = payload["checker_src"]
        wrong = tuple(payload.get("wrong_scenarios", ()))
        correction_round = payload.get("correction_round", 1)
        entry = self.introspect(checker_src)
        rng = derive_rng("correct", self.profile.name, self.seed,
                         task.task_id, correction_round,
                         entry.attempt if entry else -1)

        if entry is None:
            plan = CheckerFaultPlan()
            attempt = payload.get("attempt", 0)
        else:
            plan = entry.plan
            attempt = entry.attempt

        helpful = bool(wrong)
        base_fix = (self.profile.corrector_fix_prob if helpful
                    else self.profile.corrector_blind_fix_prob)

        misconception = plan.misconception
        if misconception is not None:
            # Self-correcting a genuine misunderstanding is rare, and on
            # trap tasks essentially impossible: the model re-reads the
            # spec the same wrong way on every attempt.
            sticky_fix = (0.02 if self.faults.is_trap(task)
                          else base_fix * 0.4)
            if rng.random() < sticky_fix:
                misconception = None
        random_variant = plan.random_variant
        if random_variant is not None and rng.random() < base_fix:
            random_variant = None
        literal = plan.literal_fault
        if literal and rng.random() < base_fix:
            literal = False
        syntax = plan.syntax_fault
        if syntax and rng.random() < 0.8:
            syntax = False
        if (random_variant is None and misconception is None
                and rng.random() < self.profile.corrector_regression_prob):
            rng2 = derive_rng("regress", self.profile.name, self.seed,
                              task.task_id, correction_round)
            random_variant = rng2.choice(list(task.variants))

        new_plan = CheckerFaultPlan(misconception, random_variant,
                                    literal, syntax)
        source = self._render_checker(task, attempt, new_plan,
                                      correction_round)
        return (self._prose(task.task_id, correction_round, "fix2")
                + f"```python\n{source}```\n")
