"""The fault model: which mistakes does a given model make on a given task?

This module turns a :class:`~repro.llm.profiles.ModelProfile` plus a task's
latent difficulty into concrete, deterministic fault plans for every
artifact the synthetic LLM emits.  Three statistical properties carry the
paper's dynamics, and all three live here:

1. **Sticky misconceptions.**  Per (model, task) a single behavioural
   variant is the model's latent misunderstanding of the spec.  Hard tasks
   have a high probability that *every* artifact — checkers *and* the
   imperfect-RTL judge group — carries it.  This correlation is what
   caps the validator's accuracy (Section III-B of the paper): a checker
   and an RTL sample sharing the misconception agree with each other, and
   fully-green rows fool the 25%-row rule.

2. **Uncorrelated noise.**  Random wrong variants, literal perturbations
   and AST mutations, independent per sample.  These are what the RS
   matrix *can* isolate, making validation work on most tasks.

3. **Stage-specific syntax rates**, repaired (imperfectly) by AutoBench's
   auto-debug iterations.

Every draw is a pure function of (profile, global seed, task, attempt), so
whole campaigns are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.baseline import BaselineFaults
from ..codegen.driver import DriverFaults
from ..problems.model import SEQ, TaskSpec, Variant
from ..util import clamp, derive_rng
from .profiles import ModelProfile

_MISCONCEPTION_CAP = 0.98


@dataclass(frozen=True)
class CheckerFaultPlan:
    """Faults carried by one generated checker core."""

    misconception: Variant | None = None
    random_variant: Variant | None = None
    literal_fault: bool = False
    syntax_fault: bool = False

    @property
    def functional(self) -> bool:
        return (self.misconception is not None
                or self.random_variant is not None or self.literal_fault)

    def describe(self) -> list[str]:
        out = []
        if self.misconception is not None:
            out.append(f"misconception: {self.misconception.description}")
        if self.random_variant is not None:
            out.append(f"slip: {self.random_variant.description}")
        if self.literal_fault:
            out.append("perturbed numeric literal")
        if self.syntax_fault:
            out.append("syntax error")
        return out


@dataclass(frozen=True)
class DriverFaultPlan:
    faults: DriverFaults = field(default_factory=DriverFaults)
    syntax_fault: bool = False

    @property
    def functional(self) -> bool:
        return self.faults.any


@dataclass(frozen=True)
class RtlFaultPlan:
    """Faults carried by one imperfect-RTL judge sample."""

    misconception: Variant | None = None
    random_variant: Variant | None = None
    ast_mutation: bool = False
    syntax_fault: bool = False

    @property
    def functional(self) -> bool:
        return (self.misconception is not None
                or self.random_variant is not None or self.ast_mutation)


@dataclass(frozen=True)
class BaselinePlan:
    checker: CheckerFaultPlan
    faults: BaselineFaults
    syntax_fault: bool = False


class FaultModel:
    """Deterministic fault planner for one (profile, global seed) pair."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    # ------------------------------------------------------------------
    # Latent task state
    # ------------------------------------------------------------------
    def is_trap(self, task: TaskSpec) -> bool:
        """Does this model systematically misread this spec?

        A *trap* is the failure mode the paper's Section III-B motivates:
        the model's RTL and checker samples share the same latent
        misconception, so neither rebooting nor the RS matrix can expose
        it.  Traps are a stable property of the (model, task) pair —
        sequential specs trap far more often, and weaker models trap more.
        """
        rng = derive_rng("trap", self.profile.name, task.task_id)
        base = 0.26 if task.kind != SEQ else 0.40
        competence_sq = max(self.profile.competence, 1e-6) ** 2
        p_trap = clamp(base * (0.5 + task.difficulty) / competence_sq,
                       0.0, 0.85)
        return rng.random() < p_trap

    def effective_difficulty(self, task: TaskSpec) -> float:
        """Latent difficulty for this (model, task) pair.

        Trap tasks sit in the near-certain-misconception band; the rest
        scale with the authored difficulty plus a kind-dependent bump
        (sequential semantics are harder to pin down from prose) and a
        stable jitter.
        """
        rng = derive_rng("difficulty", self.profile.name, task.task_id)
        if self.is_trap(task):
            return 0.93 + 0.06 * rng.random()
        bump = 0.05 if task.kind != SEQ else 0.27
        jitter = 0.10 * (rng.random() - 0.5)
        scaled = (task.difficulty * 0.85 + bump) / max(
            self.profile.competence, 1e-6)
        return clamp(scaled + jitter, 0.0, 0.82)

    def sticky_misconception(self, task: TaskSpec) -> Variant:
        """The model's latent misunderstanding of this spec."""
        rng = derive_rng("sticky", self.profile.name, self.seed,
                         task.task_id)
        return rng.choice(list(task.variants))

    def misconception_prob(self, task: TaskSpec, scope: str) -> float:
        """P(an artifact carries the sticky misconception).

        The RTL-side correlation gets a stable per-task jitter: on some
        tasks the judge group shares the misconception strongly enough to
        fool the validator (red columns dilute below the threshold and
        fully-green rows trip the 25% override), on others it stays
        uncorrelated enough to expose it.  That spread is what produces
        the paper's sub-100% validation accuracies and the gap between
        the 100%/70%/50% criteria.
        """
        d = self.effective_difficulty(task)
        if scope == "checker":
            return clamp(self.profile.misconception_scale * d * d,
                         0.0, _MISCONCEPTION_CAP)
        jitter_rng = derive_rng("rtl-corr", self.profile.name,
                                task.task_id)
        jitter = 0.6 + 0.9 * jitter_rng.random()
        return clamp(self.profile.rtl_misconception_scale * jitter * d * d,
                     0.0, _MISCONCEPTION_CAP)

    def _other_variant(self, task: TaskSpec, rng) -> Variant:
        sticky = self.sticky_misconception(task)
        others = [v for v in task.variants if v.vid != sticky.vid]
        return rng.choice(others or list(task.variants))

    # ------------------------------------------------------------------
    # Per-artifact plans
    # ------------------------------------------------------------------
    def plan_checker(self, task: TaskSpec, attempt: int,
                     fault_scale: float = 1.0) -> CheckerFaultPlan:
        rng = derive_rng("checker", self.profile.name, self.seed,
                         task.task_id, attempt)
        d = self.effective_difficulty(task)
        q = clamp(self.misconception_prob(task, "checker") * fault_scale,
                  0.0, _MISCONCEPTION_CAP)
        misconception = (self.sticky_misconception(task)
                         if rng.random() < q else None)
        random_variant = None
        if misconception is None:
            r = clamp(self.profile.random_fault_base * (0.4 + d)
                      * fault_scale)
            if rng.random() < r:
                random_variant = self._other_variant(task, rng)
        literal = rng.random() < clamp(
            self.profile.literal_fault_base * (0.5 + d) * fault_scale)
        syntax = rng.random() < clamp(
            self.profile.python_syntax_rate * fault_scale, 0.0, 0.9)
        return CheckerFaultPlan(misconception, random_variant, literal,
                                syntax)

    def plan_driver(self, task: TaskSpec, attempt: int,
                    fault_scale: float = 1.0) -> DriverFaultPlan:
        rng = derive_rng("driver", self.profile.name, self.seed,
                         task.task_id, attempt)
        d = self.effective_difficulty(task)
        is_seq = task.kind == SEQ
        rate = self.profile.driver_fault_base * (0.5 + d) * fault_scale
        if is_seq:
            rate *= self.profile.seq_driver_penalty
        late = stuck = missing_init = drop = False
        stuck_name = None
        if rng.random() < clamp(rate):
            modes = ["drop", "stuck"]
            if is_seq:
                modes += ["late", "late", "clock"]
            mode = rng.choice(modes)
            if mode == "late":
                late = True
            elif mode == "clock":
                missing_init = True
            elif mode == "stuck":
                data_inputs = [p.name for p in task.driven_ports
                               if p.role == "data"]
                if data_inputs:
                    stuck_name = rng.choice(data_inputs)
            else:
                drop = True
        if not drop:
            drop = rng.random() < clamp(
                self.profile.scenario_drop_base * (0.5 + d) * fault_scale)
        syntax = rng.random() < clamp(
            self.profile.verilog_syntax_rate * fault_scale, 0.0, 0.9)
        return DriverFaultPlan(
            DriverFaults(late_sample=late, drop_last_scenario=drop,
                         stuck_input=stuck_name,
                         missing_clock_init=missing_init),
            syntax_fault=syntax)

    def plan_rtl(self, task: TaskSpec, sample_index: int,
                 group_nonce: int = 0) -> RtlFaultPlan:
        rng = derive_rng("rtl", self.profile.name, self.seed, task.task_id,
                         group_nonce, sample_index)
        d = self.effective_difficulty(task)
        q = self.misconception_prob(task, "rtl")
        misconception = (self.sticky_misconception(task)
                         if rng.random() < q else None)
        random_variant = None
        ast_mutation = False
        if misconception is None:
            r = clamp(self.profile.rtl_random_fault_base * (0.4 + d))
            if rng.random() < r:
                if rng.random() < 0.5:
                    random_variant = self._other_variant(task, rng)
                else:
                    ast_mutation = True
        syntax = rng.random() < clamp(self.profile.rtl_syntax_rate, 0, 0.9)
        return RtlFaultPlan(misconception, random_variant, ast_mutation,
                            syntax)

    def plan_baseline(self, task: TaskSpec, attempt: int) -> BaselinePlan:
        rng = derive_rng("baseline", self.profile.name, self.seed,
                         task.task_id, attempt)
        checker = self.plan_checker(
            task, attempt + 7000,
            fault_scale=self.profile.baseline_fault_scale)
        # The one-shot baseline has no auto-debug; its syntax rate is the
        # raw single-pass rate, which the paper shows is heavily kind-
        # dependent (Table I Eval0: CMB 80.25% vs SEQ 48.53%).
        syntax_rate = (self.profile.baseline_syntax_rate_seq
                       if task.kind == SEQ
                       else self.profile.baseline_syntax_rate_cmb)
        thin = rng.random() < self.profile.baseline_thin_prob
        missing_init = (task.kind == SEQ and rng.random() < 0.08)
        syntax = rng.random() < syntax_rate
        checker = CheckerFaultPlan(checker.misconception,
                                   checker.random_variant,
                                   checker.literal_fault, False)
        return BaselinePlan(
            checker=checker,
            faults=BaselineFaults(thin=thin,
                                  missing_clock_init=missing_init),
            syntax_fault=syntax)

    # ------------------------------------------------------------------
    # Auto-debug and correction
    # ------------------------------------------------------------------
    def syntax_fix_succeeds(self, task: TaskSpec, attempt: int,
                            iteration: int) -> bool:
        rng = derive_rng("synfix", self.profile.name, self.seed,
                         task.task_id, attempt, iteration)
        return rng.random() < self.profile.syntax_fix_prob

    def scenario_completion_succeeds(self, task: TaskSpec,
                                     attempt: int) -> bool:
        """AutoBench's scenario-list check restores dropped scenarios."""
        rng = derive_rng("scncheck", self.profile.name, self.seed,
                         task.task_id, attempt)
        return rng.random() < 0.7

    def plans_shallow(self, task: TaskSpec, attempt: int) -> bool:
        """Does this generation attempt plan a shallow scenario list?"""
        rng = derive_rng("shallow", self.profile.name, self.seed,
                         task.task_id, attempt)
        rate = (self.profile.shallow_plan_seq if task.kind == SEQ
                else self.profile.shallow_plan_cmb)
        return rng.random() < rate
