"""Approximate token counting for usage metering.

The paper reports per-task input/output token costs (Fig. 6b).  Offline we
cannot call a provider tokenizer, so we use the standard engineering
approximation: one token per word-piece of up to four characters plus one
per punctuation symbol.  On typical English/code text this tracks BPE
tokenizers within ~10-15%, which is sufficient for reproducing the relative
token-cost ordering between validation criteria.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")

# Average characters per BPE token inside an alphanumeric word.
_CHARS_PER_TOKEN = 4


def approx_token_count(text: str) -> int:
    """Approximate number of BPE tokens in ``text``."""
    if not text:
        return 0
    count = 0
    for piece in _WORD_RE.findall(text):
        if piece[0].isalnum() or piece[0] == "_":
            count += max(1, -(-len(piece) // _CHARS_PER_TOKEN))
        else:
            count += 1
    return count
