"""Replay a recorded correction trace as an :class:`LLMClient`.

A trace (see :mod:`repro.core.trace`) records every LLM exchange of a
correction session.  :class:`ReplayClient` plays those exchanges back in
order, so the whole pipeline — prompt construction, code-block parsing,
simulation, validation — re-runs for real while the "model" answers from
the file.  Two matching modes:

- **strict** (default): each request's prompt text must hash to the
  recorded ``prompt_sha``.  Any drift — a changed prompt template, a
  different conversation prefix — raises :class:`ReplayMismatch` at the
  exact exchange that diverged, which is what a regression harness
  wants.
- **lenient**: only the intent *kind* must match.  This keeps a trace
  usable across cosmetic prompt rewording, at the cost of not noticing
  a semantically different prompt.

``limit`` + ``handoff`` implement mid-trace resume: the first ``limit``
exchanges replay from the file, then the client hands every further
request to a live client (or raises :class:`ReplayExhausted` when no
handoff was given).  The trace's per-round exchange counters
(:meth:`repro.core.trace.Trace.exchanges_through_round`) translate
"replay N validation rounds" into the right limit.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence

from .base import ChatRequest, ChatResponse, LLMClient, Usage


def prompt_sha(text: str) -> str:
    """The trace format's prompt fingerprint (full SHA-256 hex)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ReplayError(RuntimeError):
    """Base class for replay failures."""


class ReplayExhausted(ReplayError):
    """The pipeline asked for more exchanges than the trace holds (and
    no handoff client was provided)."""


class ReplayMismatch(ReplayError):
    """The live request does not match the recorded exchange."""


class ReplayClient:
    """An :class:`~repro.llm.base.LLMClient` that answers from a trace.

    ``exchanges`` are the trace's exchange events in recorded order
    (plain dicts with ``kind`` / ``prompt_sha`` / ``response`` /
    ``usage`` / ``model`` keys).  Usage is replayed from the record, so
    a metered replay reproduces the original token accounting exactly.
    """

    def __init__(self, exchanges: Sequence[Mapping], *,
                 strict: bool = True, limit: int | None = None,
                 handoff: LLMClient | None = None,
                 name: str | None = None):
        self._exchanges = list(exchanges)
        self._strict = strict
        self._limit = len(self._exchanges) if limit is None \
            else min(int(limit), len(self._exchanges))
        self._handoff = handoff
        self._cursor = 0
        if name is not None:
            self._name = name
        elif self._exchanges:
            self._name = self._exchanges[0].get("model") or "replay"
        else:
            self._name = "replay"

    @classmethod
    def from_trace(cls, trace, **kwargs) -> "ReplayClient":
        """Build a client from a :class:`repro.core.trace.Trace`."""
        return cls(trace.exchanges(), **kwargs)

    @property
    def name(self) -> str:
        return self._name

    @property
    def replayed(self) -> int:
        """Exchanges answered from the trace so far."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every replayable exchange has been consumed."""
        return self._cursor >= self._limit

    def complete(self, request: ChatRequest) -> ChatResponse:
        if self._cursor >= self._limit:
            if self._handoff is not None:
                return self._handoff.complete(request)
            raise ReplayExhausted(
                f"trace exhausted after {self._cursor} exchanges "
                f"(limit {self._limit}); pass a handoff client to "
                f"continue live")
        entry = self._exchanges[self._cursor]
        kind = request.intent.kind
        if entry.get("kind") != kind:
            raise ReplayMismatch(
                f"exchange {self._cursor}: recorded intent "
                f"{entry.get('kind')!r}, live request asks for {kind!r}")
        if self._strict:
            live_sha = prompt_sha(request.prompt_text)
            if entry.get("prompt_sha") != live_sha:
                raise ReplayMismatch(
                    f"exchange {self._cursor} ({kind}): prompt diverged "
                    f"from the recording (recorded "
                    f"{str(entry.get('prompt_sha'))[:12]}…, live "
                    f"{live_sha[:12]}…); re-record the trace or replay "
                    f"with strict=False")
        self._cursor += 1
        usage = entry.get("usage") or {}
        return ChatResponse(
            text=entry["response"],
            usage=Usage(int(usage.get("input_tokens", 0)),
                        int(usage.get("output_tokens", 0))),
            model_name=entry.get("model", ""))
