"""LLM client protocol, chat data model, and usage metering.

The CorrectBench pipeline talks to a model through the narrow
:class:`LLMClient` protocol.  A request carries two things:

``messages``
    the real prompt text (system + conversation turns) — this is what a
    production client would send over the wire and what usage metering is
    charged against;

``intent``
    a structured description of *what the pipeline is asking for*
    (generate scenarios / driver / checker / RTL sample / correction).
    The offline :class:`~repro.llm.synthetic.SyntheticLLM` dispatches on
    the intent; an API-backed client is free to ignore it.

Keeping the intent out-of-band is the one concession the offline
reproduction makes: it spares the synthetic model from re-parsing its own
prompts while every prompt-construction and response-parsing code path in
the pipeline still runs for real.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

from .tokens import approx_token_count


@dataclass(frozen=True)
class ChatMessage:
    """One turn of a chat conversation."""

    role: str  # "system" | "user" | "assistant"
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"invalid chat role {self.role!r}")


@dataclass(frozen=True)
class Usage:
    """Token usage of one or more requests."""

    input_tokens: int = 0
    output_tokens: int = 0

    def __add__(self, other: "Usage") -> "Usage":
        return Usage(self.input_tokens + other.input_tokens,
                     self.output_tokens + other.output_tokens)

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass(frozen=True)
class GenerationIntent:
    """Structured request descriptor.

    ``kind`` is one of the pipeline stages:

    - ``"scenarios"``     — test-scenario list for a task
    - ``"driver"``        — Verilog driver for a scenario list
    - ``"checker"``       — Python checker core for a task
    - ``"rtl"``           — one imperfect RTL sample (validator judge group)
    - ``"baseline_tb"``   — monolithic self-checking Verilog TB (baseline)
    - ``"syntax_fix"``    — auto-debug repair of a syntax-broken artifact
    - ``"correct_reason"``— corrector stage 1 (why / where / how)
    - ``"correct_rewrite"``— corrector stage 2 (code rewrite)

    ``payload`` carries stage-specific structured context (the task object,
    attempt counters, scenario lists, bug reports).
    """

    kind: str
    task_id: str
    payload: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ChatRequest:
    messages: tuple[ChatMessage, ...]
    intent: GenerationIntent

    @property
    def prompt_text(self) -> str:
        return "\n".join(m.content for m in self.messages)


@dataclass(frozen=True)
class ChatResponse:
    text: str
    usage: Usage
    model_name: str = ""


@runtime_checkable
class LLMClient(Protocol):
    """The protocol every model backend implements."""

    @property
    def name(self) -> str:
        """Provider model identifier, e.g. ``gpt-4o-2024-08-06``."""
        ...

    def complete(self, request: ChatRequest) -> ChatResponse:
        """Run one chat completion."""
        ...


class UsageMeter:
    """Accumulates token usage, broken down by intent kind.

    One meter is attached per workflow run so Fig. 6b's per-task token cost
    can be reproduced exactly as the paper reports it (input and output
    tokens per task).

    Thread-safe: live-backend fan-out issues requests for independent
    pipeline stages concurrently, and several
    :class:`MeteredClient`\\ s may share one meter — every update and
    snapshot holds an internal lock (dropped for pickling, rebuilt on
    unpickle, so meters still travel inside work results).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = Usage()
        self._by_kind: dict[str, Usage] = {}
        self.request_count = 0

    def record(self, intent_kind: str, usage: Usage) -> None:
        with self._lock:
            self._total = self._total + usage
            self._by_kind[intent_kind] = (
                self._by_kind.get(intent_kind, Usage()) + usage)
            self.request_count += 1

    @property
    def total(self) -> Usage:
        with self._lock:
            return self._total

    def by_kind(self) -> Mapping[str, Usage]:
        with self._lock:
            return dict(self._by_kind)

    def merge(self, other: "UsageMeter") -> None:
        # Snapshot the source first (its own lock), then fold in under
        # ours — never hold both, so two meters merging into each other
        # cannot deadlock.
        merged = other.by_kind()
        count = other.request_count
        with self._lock:
            for kind, usage in merged.items():
                self._total = self._total + usage
                self._by_kind[kind] = (
                    self._by_kind.get(kind, Usage()) + usage)
            self.request_count += count

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks do not pickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class MeteredClient:
    """Wraps a client, recording usage of every request into a meter."""

    def __init__(self, inner: LLMClient, meter: UsageMeter):
        self._inner = inner
        self.meter = meter

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> LLMClient:
        return self._inner

    def complete(self, request: ChatRequest) -> ChatResponse:
        response = self._inner.complete(request)
        self.meter.record(request.intent.kind, response.usage)
        return response


def usage_for(messages: Sequence[ChatMessage], response_text: str) -> Usage:
    """Compute approximate usage for one exchange."""
    prompt = "\n".join(m.content for m in messages)
    return Usage(input_tokens=approx_token_count(prompt),
                 output_tokens=approx_token_count(response_text))
