"""``repro.llm`` — the LLM substrate.

Replaces the OpenAI / Anthropic API dependency of the original system with
an offline, deterministic model of an unreliable code-writing LLM:

- :class:`LLMClient` — the protocol every backend implements,
- :class:`SyntheticLLM` — the seeded synthetic model (imported lazily from
  :mod:`repro.llm.synthetic` to keep this package import-light),
- :class:`ModelProfile` / :func:`get_profile` — reliability profiles of the
  three models the paper evaluates,
- :class:`UsageMeter` / :class:`MeteredClient` — token accounting used to
  reproduce the paper's cost figures.
"""

from .base import (ChatMessage, ChatRequest, ChatResponse, GenerationIntent,
                   LLMClient, MeteredClient, Usage, UsageMeter, usage_for)
from .conversation import Conversation, single_turn
from .profiles import (CLAUDE_35_SONNET, GPT_4O, GPT_4O_MINI, PROFILES,
                       ModelProfile, get_profile)
from .tokens import approx_token_count

__all__ = [
    "CLAUDE_35_SONNET",
    "ChatMessage",
    "ChatRequest",
    "ChatResponse",
    "Conversation",
    "GPT_4O",
    "GPT_4O_MINI",
    "GenerationIntent",
    "LLMClient",
    "MeteredClient",
    "ModelProfile",
    "PROFILES",
    "Usage",
    "UsageMeter",
    "approx_token_count",
    "get_profile",
    "single_turn",
    "usage_for",
]
