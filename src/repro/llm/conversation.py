"""Multi-turn conversation helper.

The corrector (Section III-C) is a *conversational* stage: stage 2 sees the
stage 1 reasoning in its context.  :class:`Conversation` keeps the turn
history, builds requests, and lets the same abstraction serve single-shot
stages too.
"""

from __future__ import annotations

import time

from .base import (ChatMessage, ChatRequest, ChatResponse, GenerationIntent,
                   LLMClient, MeteredClient)


def _trace_session():
    # Imported lazily: repro.core imports this module at package init,
    # so a top-level import of repro.core.trace would be circular.
    from ..core.trace import current_trace_session
    return current_trace_session()


class Conversation:
    """A growing chat transcript bound to one client.

    Every exchange is also recorded into the active
    :class:`~repro.core.trace.TraceSession` (when one is activated), so
    routing a pipeline stage through a conversation is what makes it
    replayable.
    """

    def __init__(self, client: LLMClient | MeteredClient,
                 system_prompt: str | None = None):
        self.client = client
        self.messages: list[ChatMessage] = []
        if system_prompt:
            self.messages.append(ChatMessage("system", system_prompt))

    def ask(self, content: str, intent: GenerationIntent) -> str:
        """Send ``content`` as the user, append the reply, return its text."""
        self.messages.append(ChatMessage("user", content))
        request = ChatRequest(messages=tuple(self.messages), intent=intent)
        started = time.perf_counter()
        response: ChatResponse = self.client.complete(request)
        session = _trace_session()
        if session is not None:
            session.record_exchange(request, response,
                                    time.perf_counter() - started)
        self.messages.append(ChatMessage("assistant", response.text))
        return response.text

    @property
    def transcript(self) -> str:
        """Human-readable transcript (used by examples and debugging)."""
        parts = []
        for message in self.messages:
            parts.append(f"[{message.role}]")
            parts.append(message.content)
            parts.append("")
        return "\n".join(parts)


def single_turn(client: LLMClient | MeteredClient, system_prompt: str,
                user_prompt: str, intent: GenerationIntent) -> str:
    """One-shot helper for non-conversational stages."""
    conversation = Conversation(client, system_prompt)
    return conversation.ask(user_prompt, intent)
