"""Reliability profiles of the evaluated commercial models.

The paper evaluates three models: ``gpt-4o-2024-08-06`` (development
model), ``claude-3-5-sonnet-20240620`` and ``gpt-4o-mini-2024-07-18``
(compatibility check, Fig. 7).  Offline, each model is represented by a
:class:`ModelProfile` — a parameter set describing *how unreliable* the
model is at each pipeline stage.  The synthetic LLM composes these rates
with the per-task latent difficulty to decide which faults an artifact
carries (see :mod:`repro.llm.faults`).

The rates were calibrated so the *baseline* and *AutoBench* marginals land
near Table I of the paper; everything downstream (CorrectBench's gains, the
validator accuracy trade-off, criterion ordering) is emergent behaviour of
the pipeline, not an input.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Stage-level unreliability parameters of one LLM."""

    name: str          # provider model id, e.g. "gpt-4o-2024-08-06"
    short_name: str    # display name used in figures, e.g. "GPT-4o"
    competence: float  # global capability scale; 1.0 = strongest evaluated

    # -- Python checker core (functional) ------------------------------
    # Probability scale that a generated artifact carries the task's
    # *sticky misconception* (shared, correlated wrong behaviour).
    misconception_scale: float
    # Per-sample probability base of an uncorrelated wrong variant.
    random_fault_base: float
    # Per-sample probability base of a perturbed numeric literal.
    literal_fault_base: float

    # -- Verilog driver (functional) ------------------------------------
    driver_fault_base: float
    seq_driver_penalty: float   # multiplier applied for sequential tasks
    scenario_drop_base: float   # probability of dropping a scenario

    # -- Scenario planning -------------------------------------------------
    # Probability that the model plans a shallow scenario list (a weak
    # testbench that passes the golden DUT but under-discriminates
    # mutants).  AutoBench's scenario check cannot catch this: the driver
    # matches the model's own (short) list.
    shallow_plan_cmb: float
    shallow_plan_seq: float

    # -- Syntax ----------------------------------------------------------
    verilog_syntax_rate: float  # raw rate per generated driver
    python_syntax_rate: float   # raw rate per generated checker
    rtl_syntax_rate: float      # per imperfect-RTL sample
    syntax_fix_prob: float      # success prob of one auto-debug iteration

    # -- Imperfect-RTL judge group (validator) ---------------------------
    rtl_misconception_scale: float
    rtl_random_fault_base: float

    # -- Corrector --------------------------------------------------------
    corrector_fix_prob: float        # bug info points at the true fault
    corrector_blind_fix_prob: float  # bug info does not help
    corrector_regression_prob: float  # rewrite introduces a fresh fault

    # -- Direct-generation baseline ---------------------------------------
    baseline_syntax_rate_cmb: float
    baseline_syntax_rate_seq: float
    baseline_fault_scale: float  # multiplies the functional fault rates
    baseline_thin_prob: float    # generates an under-covering testbench


GPT_4O = ModelProfile(
    name="gpt-4o-2024-08-06",
    short_name="GPT-4o",
    competence=1.00,
    misconception_scale=1.10,
    random_fault_base=0.155,
    literal_fault_base=0.035,
    driver_fault_base=0.030,
    seq_driver_penalty=2.2,
    scenario_drop_base=0.100,
    shallow_plan_cmb=0.030,
    shallow_plan_seq=0.280,
    verilog_syntax_rate=0.22,
    python_syntax_rate=0.12,
    rtl_syntax_rate=0.10,
    syntax_fix_prob=0.62,
    rtl_misconception_scale=0.35,
    rtl_random_fault_base=0.16,
    corrector_fix_prob=0.70,
    corrector_blind_fix_prob=0.12,
    corrector_regression_prob=0.06,
    baseline_syntax_rate_cmb=0.20,
    baseline_syntax_rate_seq=0.50,
    baseline_fault_scale=1.55,
    baseline_thin_prob=0.18,
)

CLAUDE_35_SONNET = ModelProfile(
    name="claude-3-5-sonnet-20240620",
    short_name="Claude-3.5-Sonnet",
    competence=0.96,
    misconception_scale=1.16,
    random_fault_base=0.170,
    literal_fault_base=0.038,
    driver_fault_base=0.038,
    seq_driver_penalty=2.3,
    scenario_drop_base=0.120,
    shallow_plan_cmb=0.040,
    shallow_plan_seq=0.240,
    # The paper notes CorrectBench was developed on GPT-4o; other models hit
    # format/interface frictions, visible as higher raw syntax rates.
    verilog_syntax_rate=0.30,
    python_syntax_rate=0.16,
    rtl_syntax_rate=0.13,
    syntax_fix_prob=0.58,
    rtl_misconception_scale=0.40,
    rtl_random_fault_base=0.18,
    corrector_fix_prob=0.58,
    corrector_blind_fix_prob=0.11,
    corrector_regression_prob=0.07,
    baseline_syntax_rate_cmb=0.24,
    baseline_syntax_rate_seq=0.54,
    baseline_fault_scale=1.60,
    baseline_thin_prob=0.20,
)

GPT_4O_MINI = ModelProfile(
    name="gpt-4o-mini-2024-07-18",
    short_name="GPT-4o-mini",
    competence=0.80,
    misconception_scale=1.45,
    random_fault_base=0.240,
    literal_fault_base=0.060,
    driver_fault_base=0.060,
    seq_driver_penalty=2.5,
    scenario_drop_base=0.160,
    shallow_plan_cmb=0.080,
    shallow_plan_seq=0.300,
    verilog_syntax_rate=0.34,
    python_syntax_rate=0.22,
    rtl_syntax_rate=0.20,
    syntax_fix_prob=0.50,
    rtl_misconception_scale=0.50,
    rtl_random_fault_base=0.26,
    corrector_fix_prob=0.45,
    corrector_blind_fix_prob=0.08,
    corrector_regression_prob=0.11,
    baseline_syntax_rate_cmb=0.30,
    baseline_syntax_rate_seq=0.60,
    baseline_fault_scale=1.95,
    baseline_thin_prob=0.28,
)

PROFILES: dict[str, ModelProfile] = {
    profile.short_name.lower(): profile
    for profile in (GPT_4O, CLAUDE_35_SONNET, GPT_4O_MINI)
}
PROFILES.update({
    GPT_4O.name: GPT_4O,
    CLAUDE_35_SONNET.name: CLAUDE_35_SONNET,
    GPT_4O_MINI.name: GPT_4O_MINI,
    "gpt-4o": GPT_4O,
    "claude-3.5-sonnet": CLAUDE_35_SONNET,
    "claude": CLAUDE_35_SONNET,
    "gpt-4o-mini": GPT_4O_MINI,
    "4o-mini": GPT_4O_MINI,
})


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by any of its accepted aliases."""
    key = name.lower()
    if key not in PROFILES:
        known = sorted({p.short_name for p in PROFILES.values()})
        raise KeyError(f"unknown model profile {name!r}; known: {known}")
    return PROFILES[key]
