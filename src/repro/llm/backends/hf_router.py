"""Adapter for the Hugging Face inference router.

The router speaks the OpenAI chat-completions dialect at
``https://router.huggingface.co/v1/chat/completions`` with a Hugging
Face token as the bearer key, so the adapter is the OpenAI-compatible
one with a different default endpoint (and its own ``backend_id``, so
cached responses from the two services never alias).
"""

from __future__ import annotations

from .openai_compat import OpenAICompatBackend


class HFRouterBackend(OpenAICompatBackend):
    """Talk to router.huggingface.co (OpenAI-compatible dialect)."""

    backend_id = "hf"

    @classmethod
    def default_base_url(cls) -> str:
        return "https://router.huggingface.co"
