"""Thread-based concurrent fan-out for live-backend work items.

Campaign items against a live endpoint are I/O-bound — the process
spends its time waiting on sockets, not simulating — so threads (which
share the parent's caches and need no pickling) are the right executor,
where the synthetic tier uses the process pool.  Actual wire
concurrency stays bounded by the global in-flight cap
(:data:`repro.llm.backends.resilience.GLOBAL_IN_FLIGHT`), which every
:class:`~repro.llm.backends.resilience.ResilientBackend` holds during a
request: ``fan_out`` may run 32 items, but only the cap's worth of
requests are ever on the wire.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def fan_out(fn: Callable[[Item], Result], items: Sequence[Item], *,
            max_workers: int | None = None,
            return_exceptions: bool = False) -> list:
    """Apply ``fn`` to every item on a thread pool; results in order.

    With ``return_exceptions`` an item's exception becomes its result
    slot (mirroring ``asyncio.gather``); otherwise the first failure
    propagates after all submitted work finishes.
    """
    items = list(items)
    if not items:
        return []
    workers = max_workers if max_workers is not None else len(items)
    workers = max(1, min(workers, len(items)))
    if workers == 1:
        results = []
        for item in items:
            try:
                results.append(fn(item))
            except Exception as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results
    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix="repro-llm") as pool:
        futures = [pool.submit(fn, item) for item in items]
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
    return results


def iter_fan_out(fn: Callable[[Item], Result], items: Sequence[Item], *,
                 max_workers: int | None = None) -> Iterator[Result]:
    """Like :func:`fan_out` but yields results as an in-order stream
    (progress callbacks observe completions without waiting for the
    whole batch)."""
    items = list(items)
    if not items:
        return
    workers = max_workers if max_workers is not None else len(items)
    workers = max(1, min(workers, len(items)))
    if workers == 1:
        for item in items:
            yield fn(item)
        return
    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix="repro-llm") as pool:
        futures = [pool.submit(fn, item) for item in items]
        for future in futures:
            yield future.result()
