"""Retry, rate-limit, and concurrency discipline for live backends.

A wire-attached model is an unreliable dependency: it times out, sheds
load with 429s, and occasionally answers garbage.  This module wraps an
adapter in the policy that makes campaigns survive that:

:class:`RetryPolicy`
    exponential backoff with deterministic-injectable jitter.  Attempt
    ``n`` waits ``base_delay * multiplier**(n-1)`` (clamped to
    ``max_delay``), spread by ``jitter`` so a fleet of workers does not
    retry in lockstep.

:class:`RateLimitBudget`
    a sliding-window request budget (``limit`` requests per
    ``window_s``).  By default it *throttles* — sleeps until the window
    frees a slot; with ``block=False`` an exhausted window raises
    :class:`~repro.llm.backends.errors.BudgetExhausted` instead, which
    is what batch jobs with a hard cost ceiling want.  Clock and sleep
    are injectable, so tests drive it with a fake clock.

:class:`InFlightCap`
    a semaphore bounding concurrent requests.  :data:`GLOBAL_IN_FLIGHT`
    is the process-wide cap every :class:`ResilientBackend` holds while
    a request is on the wire, so campaign fan-out
    (:func:`repro.llm.backends.fanout.fan_out`) cannot dogpile an
    endpoint no matter how many worker threads it runs.

:class:`ResilientBackend`
    the wrapper composing all three around any
    :class:`~repro.llm.base.LLMClient`.  Retryable
    :class:`~repro.llm.backends.errors.BackendError` classes are
    retried under the policy (a 429's ``Retry-After`` floors the
    backoff delay); non-retryable ones propagate immediately; a spent
    retry budget — or a backoff that would overrun the propagated
    deadline (:func:`~repro.llm.backends.base.use_deadline`) — raises
    :class:`BudgetExhausted` chained to the last underlying failure.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..base import ChatRequest, ChatResponse, LLMClient
from .base import remaining_deadline
from .errors import BackendError, BackendRateLimited, BudgetExhausted


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for retryable failures.

    >>> policy = RetryPolicy(base_delay=1.0, jitter=0.0)
    >>> [policy.delay(n) for n in (1, 2, 3)]
    [1.0, 2.0, 4.0]
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    max_delay: float = 8.0
    multiplier: float = 2.0
    jitter: float = 0.25  # +/- fraction of the computed delay

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class RateLimitBudget:
    """A sliding-window request budget shared by one backend's callers.

    Thread-safe: concurrent fan-out workers draw slots from one budget.
    """

    def __init__(self, limit: int, window_s: float = 60.0, *,
                 block: bool = True, clock=time.monotonic,
                 sleep=time.sleep):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)
        self.window_s = float(window_s)
        self.block = block
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._stamps: list[float] = []
        self.waits = 0  # telemetry: how often acquire had to wait

    def _try_acquire(self) -> float:
        """Take a slot now, or return the seconds until one frees."""
        with self._lock:
            now = self._clock()
            horizon = now - self.window_s
            while self._stamps and self._stamps[0] <= horizon:
                self._stamps.pop(0)
            if len(self._stamps) < self.limit:
                self._stamps.append(now)
                return 0.0
            return max(self._stamps[0] + self.window_s - now, 0.0)

    def acquire(self, *, backend: str = "") -> None:
        """Block until a slot is free (or raise, per ``block``)."""
        while True:
            wait = self._try_acquire()
            if wait <= 0.0:
                return
            label = f"{backend}: " if backend else ""
            if not self.block:
                raise BudgetExhausted(
                    f"{label}rate-limit budget spent "
                    f"({self.limit} requests / {self.window_s:.0f}s)",
                    backend=backend)
            remaining = remaining_deadline(clock=self._clock)
            if remaining is not None and wait >= remaining:
                raise BudgetExhausted(
                    f"{label}rate-limit wait of {wait:.1f}s overruns "
                    f"the {remaining:.1f}s deadline", backend=backend)
            self.waits += 1
            self._sleep(wait)


class InFlightCap:
    """A named semaphore bounding concurrent wire requests."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)
        self._semaphore = threading.Semaphore(self.limit)

    @contextmanager
    def slot(self):
        self._semaphore.acquire()
        try:
            yield
        finally:
            self._semaphore.release()


#: Default process-wide bound on concurrent live requests; sized for a
#: local inference server — operators raise it via
#: :func:`set_global_in_flight` when pointing at hosted APIs.
DEFAULT_MAX_IN_FLIGHT = 8

GLOBAL_IN_FLIGHT = InFlightCap(DEFAULT_MAX_IN_FLIGHT)


def set_global_in_flight(limit: int) -> InFlightCap:
    """Replace the process-wide cap (process setup, not mid-campaign)."""
    global GLOBAL_IN_FLIGHT
    GLOBAL_IN_FLIGHT = InFlightCap(limit)
    return GLOBAL_IN_FLIGHT


class ResilientBackend:
    """Wrap a backend with retry, rate-limit, and in-flight discipline.

    Conforms to :class:`~repro.llm.base.LLMClient`; ``inner`` exposes
    the wrapped client (mirroring
    :class:`~repro.llm.base.MeteredClient`), so introspection helpers
    can unwrap the stack.
    """

    def __init__(self, inner: LLMClient, *,
                 policy: RetryPolicy | None = None,
                 rate_budget: RateLimitBudget | None = None,
                 in_flight: InFlightCap | None = None,
                 sleep=time.sleep, clock=time.monotonic,
                 rng: random.Random | None = None):
        self._inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.rate_budget = rate_budget
        self._in_flight = in_flight
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self.attempts = 0  # telemetry
        self.retries = 0

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> LLMClient:
        return self._inner

    def _cap(self) -> InFlightCap:
        return self._in_flight if self._in_flight is not None \
            else GLOBAL_IN_FLIGHT

    def complete(self, request: ChatRequest) -> ChatResponse:
        backend = getattr(self._inner, "backend_id", "") or self.name
        failure: BackendError | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if self.rate_budget is not None:
                self.rate_budget.acquire(backend=backend)
            self.attempts += 1
            try:
                with self._cap().slot():
                    return self._inner.complete(request)
            except BackendError as exc:
                if not exc.retryable:
                    raise
                failure = exc
            if attempt >= self.policy.max_attempts:
                break
            delay = self.policy.delay(attempt, self._rng)
            if isinstance(failure, BackendRateLimited) and \
                    failure.retry_after:
                delay = max(delay, failure.retry_after)
            remaining = remaining_deadline(clock=self._clock)
            if remaining is not None and delay >= remaining:
                raise BudgetExhausted(
                    f"{backend}: backoff of {delay:.2f}s would overrun "
                    f"the {max(remaining, 0.0):.2f}s deadline "
                    f"(after {attempt} attempts)",
                    backend=backend) from failure
            self.retries += 1
            self._sleep(delay)
        raise BudgetExhausted(
            f"{backend}: retry budget exhausted after "
            f"{self.policy.max_attempts} attempts: {failure}",
            backend=backend) from failure
