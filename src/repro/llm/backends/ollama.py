"""Adapter for a local Ollama server (``POST /api/chat``)."""

from __future__ import annotations

from ..base import ChatRequest, ChatResponse, Usage
from ..tokens import approx_token_count
from .base import LLMBackend
from .errors import MalformedResponseError
from .http import post_json


class OllamaBackend(LLMBackend):
    """Talk to an Ollama daemon's non-streaming chat endpoint.

    The wire shape (request ``model`` / ``messages`` / ``stream:false``
    / ``options``, reply ``message.content`` plus ``prompt_eval_count``
    / ``eval_count`` token tallies) is the one Ollama has kept stable
    across releases.  Token counts missing from a reply (some templates
    omit ``prompt_eval_count`` on a cache hit) degrade to the
    approximate tokenizer rather than zeros, so usage metering stays
    meaningful.
    """

    backend_id = "ollama"

    @classmethod
    def default_base_url(cls) -> str:
        return "http://127.0.0.1:11434"

    def complete(self, request: ChatRequest) -> ChatResponse:
        payload = {
            "model": self.model,
            "messages": self.wire_messages(request),
            "stream": False,
            "options": {
                "temperature": self.params.temperature,
                "top_p": self.params.top_p,
                "num_predict": self.params.max_tokens,
            },
        }
        reply = post_json(f"{self.base_url}/api/chat", payload,
                          timeout=self.timeout, backend=self.backend_id)
        message = reply.get("message")
        if not isinstance(message, dict) or \
                not isinstance(message.get("content"), str):
            raise MalformedResponseError(
                f"{self.backend_id}: reply has no message.content "
                f"(keys: {sorted(reply)})", backend=self.backend_id)
        text = message["content"]
        usage = Usage(
            input_tokens=_count(reply.get("prompt_eval_count"),
                                request.prompt_text),
            output_tokens=_count(reply.get("eval_count"), text))
        return ChatResponse(text=text, usage=usage,
                            model_name=str(reply.get("model", self.model)))


def _count(value, fallback_text: str) -> int:
    if isinstance(value, int) and value >= 0:
        return value
    return approx_token_count(fallback_text)
