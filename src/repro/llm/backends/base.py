"""The live-backend ABC, sampling parameters, and deadline propagation.

:class:`LLMBackend` is the abstract base every wire-attached adapter
(:mod:`~repro.llm.backends.ollama`,
:mod:`~repro.llm.backends.openai_compat`,
:mod:`~repro.llm.backends.hf_router`) extends.  It conforms to the
pipeline's :class:`~repro.llm.base.LLMClient` protocol —
``complete(ChatRequest) -> ChatResponse`` with real
:class:`~repro.llm.base.Usage` accounting — so a live adapter drops
into every call site the synthetic model serves today (workflows,
campaigns, the service) without the pipeline knowing the difference.

**Deadlines.**  A campaign item or service request owns one wall-clock
budget that must bound *everything* underneath it — every retry of
every exchange.  :func:`use_deadline` activates that budget as a
contextvar for the dynamic extent of a block; the HTTP transport and
the resilience wrapper read :func:`remaining_deadline` to clamp
per-attempt socket timeouts and to refuse backoff sleeps that would
overrun it.  Like :func:`repro.hdl.context.use_context`, activations
nest and restore, and each thread sees its own.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from ..base import ChatRequest, ChatResponse


@dataclass(frozen=True)
class SamplingParams:
    """Decoding knobs sent with every live request.

    Part of the response-cache key (see
    :mod:`repro.llm.backends.cache`): two requests with the same prompt
    but different temperatures are different requests.

    >>> SamplingParams().fingerprint()
    't=0.0,p=1.0,n=2048'
    """

    temperature: float = 0.0
    top_p: float = 1.0
    max_tokens: int = 2048

    def fingerprint(self) -> str:
        """A stable string form for cache keys."""
        return (f"t={self.temperature},p={self.top_p},"
                f"n={self.max_tokens}")


class LLMBackend(ABC):
    """Abstract base for wire-attached model adapters.

    Subclasses implement :meth:`complete` by speaking their endpoint's
    protocol through :func:`repro.llm.backends.http.post_json` and
    mapping the reply into a :class:`~repro.llm.base.ChatResponse`.
    Failures raise the typed hierarchy in
    :mod:`repro.llm.backends.errors` — never bare ``URLError``.

    ``backend_id`` identifies the *adapter kind* (``"ollama"``,
    ``"openai"``, ``"hf"``) and keys the response cache together with
    the model name; ``name`` (the :class:`~repro.llm.base.LLMClient`
    protocol surface) is the model identifier requests are sent for.
    """

    #: Adapter kind; subclasses override.
    backend_id = "abstract"

    def __init__(self, model: str, *, base_url: str = "",
                 api_key: str = "", timeout: float = 120.0,
                 params: SamplingParams | None = None):
        if not model:
            raise ValueError(f"{type(self).__name__} needs a model name")
        self.model = model
        self.base_url = (base_url or self.default_base_url()).rstrip("/")
        self.api_key = api_key
        self.timeout = float(timeout)
        self.params = params if params is not None else SamplingParams()

    @classmethod
    def default_base_url(cls) -> str:
        """The endpoint used when none is configured."""
        return ""

    @property
    def name(self) -> str:
        return self.model

    @abstractmethod
    def complete(self, request: ChatRequest) -> ChatResponse:
        """Run one chat completion against the live endpoint."""

    @staticmethod
    def wire_messages(request: ChatRequest) -> list[dict]:
        """The request's messages in the ubiquitous chat-JSON shape."""
        return [{"role": m.role, "content": m.content}
                for m in request.messages]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(model={self.model!r}, "
                f"base_url={self.base_url!r})")


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------
_deadline: ContextVar[float | None] = ContextVar(
    "repro_llm_deadline", default=None)


@contextmanager
def use_deadline(seconds: float, *, clock=time.monotonic):
    """Bound every backend call in the block to ``seconds`` from now.

    Nested activations keep the *tighter* bound, so an inner stage can
    shrink its slice of the budget but never extend it.
    """
    target = clock() + float(seconds)
    current = _deadline.get()
    if current is not None:
        target = min(target, current)
    token = _deadline.set(target)
    try:
        yield
    finally:
        _deadline.reset(token)


def remaining_deadline(*, clock=time.monotonic) -> float | None:
    """Seconds left on the active deadline, or ``None`` (unbounded).
    May be zero or negative once the budget is overrun."""
    target = _deadline.get()
    if target is None:
        return None
    return target - clock()
