"""Recorded-fixture mode: capture live exchanges, replay them offline.

``FixtureBackend.record(inner, path)`` wraps any client and writes each
exchange to the PR-6 JSONL trace format (:mod:`repro.core.trace`) as it
happens — a minimal ``session`` header plus one ``exchange`` event per
request, in the exact field shape
:meth:`~repro.core.trace.TraceSession.record_exchange` emits, extended
with a ``response_sha`` integrity fingerprint.  Because the shape is
the trace shape, the whole trace toolchain applies: ``trace report``
summarises a fixture, :func:`~repro.core.trace.load_trace` parses it,
and :class:`~repro.llm.replay.ReplayClient` replays it.

``FixtureBackend.replay(path)`` answers from such a file with no
network at all: prompts are strict-matched by SHA-256 (drift raises
:class:`~repro.llm.replay.ReplayMismatch`), responses and usage come
back byte-identical to the recording, and every ``response_sha`` is
verified at load time so a tampered fixture fails loudly
(:class:`FixtureError`) instead of replaying corrupted artifacts.

This is what keeps the live adapter code paths exercised in CI while
CI stays deterministic: record once against a real endpoint (or a stub
server), commit the fixture, and the replay drives the identical
pipeline offline.
"""

from __future__ import annotations

import os
import re
import time

from ...core.trace import TRACE_VERSION, JsonlTraceSink, load_trace
from ..base import ChatRequest, ChatResponse, LLMClient
from ..replay import ReplayClient, prompt_sha
from .errors import BackendError


class FixtureError(BackendError):
    """A fixture file is missing, unparsable, or failed its integrity
    check."""

    retryable = False


def _sanitize(part: str) -> str:
    """Path-safe form of a model / task identifier (``qwen2.5:7b`` ->
    ``qwen2.5-7b``).  Edge dots are stripped too, so no stem ever
    starts with ``.`` (hidden files, ``..`` components)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", part).strip("-.") or "_"


class FixtureStore:
    """Names fixture files under one directory.

    The layout mirrors campaign identity: one file per
    (task, method, model, seed) item, so a recorded campaign replays
    item by item.
    """

    def __init__(self, directory: str):
        if not directory:
            raise ValueError("FixtureStore needs a directory")
        self.directory = str(directory)

    def path_for(self, task_id: str, model: str, seed: int,
                 method: str = "") -> str:
        stem = ".".join(
            _sanitize(part) for part in
            ([task_id, method] if method else [task_id])
            + [model, str(seed)])
        return os.path.join(self.directory, f"{stem}.fixture.jsonl")


class FixtureBackend:
    """Record live exchanges to a trace file, or replay one offline.

    Conforms to :class:`~repro.llm.base.LLMClient`.  Build with the
    :meth:`record` / :meth:`replay` classmethods, not the constructor.
    """

    def __init__(self, *, inner: LLMClient | None = None,
                 sink: JsonlTraceSink | None = None,
                 replayer: ReplayClient | None = None):
        self._inner = inner
        self._sink = sink
        self._replayer = replayer
        self._index = 0
        self._header_written = False

    # -- construction --------------------------------------------------
    @classmethod
    def record(cls, inner: LLMClient, path: str) -> "FixtureBackend":
        """Wrap ``inner``, recording every exchange to ``path``."""
        return cls(inner=inner, sink=JsonlTraceSink(path))

    @classmethod
    def replay(cls, path: str, *, strict: bool = True) -> "FixtureBackend":
        """Answer from the fixture at ``path`` (no network)."""
        try:
            trace = load_trace(path)
        except OSError as exc:
            raise FixtureError(
                f"fixture {path!r} cannot be read: {exc}",
                backend="fixture") from None
        except ValueError as exc:  # TraceFormatError is a ValueError
            raise FixtureError(
                f"fixture {path!r} does not parse as a trace: {exc}",
                backend="fixture") from None
        exchanges = trace.exchanges()
        for entry in exchanges:
            recorded_sha = entry.get("response_sha")
            if recorded_sha is None:
                continue  # plain PR-6 traces predate the fingerprint
            actual = prompt_sha(entry.get("response", ""))
            if actual != recorded_sha:
                raise FixtureError(
                    f"fixture {path!r} exchange {entry.get('index')}: "
                    f"response does not match its recorded sha "
                    f"(recorded {str(recorded_sha)[:12]}…, actual "
                    f"{actual[:12]}…) — the fixture was modified; "
                    f"re-record it", backend="fixture")
        return cls(replayer=ReplayClient(exchanges, strict=strict))

    # -- LLMClient surface ---------------------------------------------
    @property
    def name(self) -> str:
        if self._replayer is not None:
            return self._replayer.name
        return self._inner.name

    @property
    def inner(self) -> LLMClient:
        """The wrapped live client (record) or replayer (replay)."""
        return self._inner if self._inner is not None else self._replayer

    def introspect(self, artifact_text: str):
        """Delegate fault-ledger lookups to the wrapped client (the
        synthetic model exposes one; replays and live APIs do not)."""
        hook = getattr(self._inner, "introspect", None)
        if hook is None:
            return None
        return hook(artifact_text)

    def complete(self, request: ChatRequest) -> ChatResponse:
        if self._replayer is not None:
            return self._replayer.complete(request)
        started = time.perf_counter()
        response = self._inner.complete(request)
        self._record_exchange(request, response,
                              time.perf_counter() - started)
        return response

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()

    # -- recording -----------------------------------------------------
    def _record_exchange(self, request: ChatRequest,
                         response: ChatResponse, elapsed: float) -> None:
        intent = request.intent
        if not self._header_written:
            self._sink.emit({
                "type": "session",
                "version": TRACE_VERSION,
                "fixture": True,
                "task_id": intent.task_id,
                "model": self._inner.name,
            })
            self._header_written = True
        self._sink.emit({
            "type": "exchange",
            "index": self._index,
            "kind": intent.kind,
            "task_id": intent.task_id,
            "prompt_sha": prompt_sha(request.prompt_text),
            "messages": [[m.role, m.content] for m in request.messages],
            "response": response.text,
            "response_sha": prompt_sha(response.text),
            "usage": {"input_tokens": response.usage.input_tokens,
                      "output_tokens": response.usage.output_tokens},
            "model": response.model_name,
            "elapsed_ms": round(elapsed * 1000.0, 3),
        })
        self._index += 1
