"""Backend registry: spec strings -> adapter stacks.

A *backend spec* is the string carried by
:attr:`repro.hdl.context.SimContext.llm_backend` (CLI ``--backend``,
``REPRO_LLM_BACKEND``, the service's whitelisted selector):

- ``""`` / ``"synthetic"`` — the deterministic synthetic tier (the
  default; campaigns and CI run here);
- ``"ollama"`` / ``"openai"`` / ``"hf"`` — a live adapter, wrapped in
  the full stack ``CachingBackend(ResilientBackend(adapter))`` so every
  live request gets retry/rate discipline and response caching;
- ``"fixture"`` — replay recorded fixtures from
  :attr:`~repro.hdl.context.SimContext.llm_fixture_dir` (offline);
- ``"fixture+<inner>"`` — run ``<inner>`` (an adapter or
  ``synthetic``) *and* record every exchange to the fixture directory,
  producing the files plain ``"fixture"`` replays.

:func:`resolve_llm_client` is the single construction point
:func:`repro.eval.campaign.run_one` (and therefore the CLI and the
service) calls; the grammar itself is validated by
:func:`repro.hdl.context.valid_llm_backend` where the context is
built, so a bad spec fails at configuration time, not mid-campaign.

The API key is read from ``REPRO_LLM_API_KEY`` at construction time —
deliberately *not* a :class:`~repro.hdl.context.SimContext` field, so
the secret is never pickled into work items or echoed by telemetry.
"""

from __future__ import annotations

import os

from ...hdl.context import (LLM_ADAPTERS, LLM_FIXTURE, LLM_SYNTHETIC,
                            SimContext, current_context)
from ..base import LLMClient
from .base import LLMBackend, SamplingParams
from .cache import CachingBackend
from .fixtures import FixtureBackend, FixtureStore
from .hf_router import HFRouterBackend
from .ollama import OllamaBackend
from .openai_compat import OpenAICompatBackend
from .resilience import ResilientBackend

ADAPTERS: dict[str, type[LLMBackend]] = {
    "ollama": OllamaBackend,
    "openai": OpenAICompatBackend,
    "hf": HFRouterBackend,
}

assert tuple(ADAPTERS) == LLM_ADAPTERS, \
    "adapter registry out of sync with hdl.context.LLM_ADAPTERS"


def backend_names() -> tuple[str, ...]:
    """Every plain (non-compound) backend spec."""
    return (LLM_SYNTHETIC,) + tuple(ADAPTERS) + (LLM_FIXTURE,)


def create_backend(name: str, model: str, *, base_url: str = "",
                   api_key: str = "", timeout: float = 120.0,
                   params: SamplingParams | None = None) -> LLMBackend:
    """Construct one bare adapter (no resilience / caching wrappers)."""
    try:
        adapter_cls = ADAPTERS[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}; adapters: "
                         f"{tuple(ADAPTERS)}") from None
    return adapter_cls(model, base_url=base_url, api_key=api_key,
                       timeout=timeout, params=params)


def live_stack(name: str, context: SimContext,
               profile_name: str) -> LLMClient:
    """The full wrapper stack for one live adapter.

    Cache outermost: a response-cache hit costs neither a retry attempt
    nor a rate-budget slot.
    """
    adapter = create_backend(
        name,
        model=context.llm_model or profile_name,
        base_url=context.llm_base_url,
        api_key=os.environ.get("REPRO_LLM_API_KEY", ""))
    return CachingBackend(ResilientBackend(adapter))


def is_live_backend(spec: str) -> bool:
    """Does ``spec`` reach the network?  (Campaign executors use this:
    live items fan out on threads — I/O-bound, unpicklable clients —
    where synthetic items use the process pool.)"""
    head, _, tail = spec.partition("+")
    if head in ADAPTERS:
        return True
    return head == LLM_FIXTURE and tail in ADAPTERS


def resolve_llm_client(profile_name: str, seed: int, *,
                       context: SimContext | None = None,
                       task_id: str = "", method: str = "") -> LLMClient:
    """Build the client one work item talks to.

    Dispatches on ``context.llm_backend``; the default (``""``) is the
    synthetic tier, byte-identical to the pre-backend behaviour.
    ``task_id`` / ``method`` name the fixture file for the fixture
    modes.
    """
    if context is None:
        context = current_context()
    spec = context.llm_backend or LLM_SYNTHETIC
    if spec == LLM_SYNTHETIC:
        from ..profiles import get_profile
        from ..synthetic import SyntheticLLM
        return SyntheticLLM(get_profile(profile_name), seed=seed)
    head, compound, inner_spec = spec.partition("+")
    if head != LLM_FIXTURE:
        return live_stack(head, context, profile_name)
    if not context.llm_fixture_dir:
        raise ValueError(
            f"backend {spec!r} needs a fixture directory "
            f"(--fixture-dir / REPRO_LLM_FIXTURE_DIR)")
    store = FixtureStore(context.llm_fixture_dir)
    path = store.path_for(task_id or "session",
                          context.llm_model or profile_name, seed,
                          method=method)
    if not compound:
        return FixtureBackend.replay(path)
    if inner_spec == LLM_SYNTHETIC:
        from ..profiles import get_profile
        from ..synthetic import SyntheticLLM
        inner: LLMClient = SyntheticLLM(get_profile(profile_name),
                                        seed=seed)
    else:
        inner = live_stack(inner_spec, context, profile_name)
    return FixtureBackend.record(inner, path)
