"""Stdlib-only JSON-over-HTTP transport for the live adapters.

One function, :func:`post_json`, owns everything the adapters share:
request encoding, deadline clamping, and the mapping from wire-level
failures to the typed hierarchy in :mod:`repro.llm.backends.errors`.
Built on :mod:`urllib.request` — the container images this repo targets
carry no HTTP client dependency, and none is needed for line-oriented
JSON POSTs.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

from .base import remaining_deadline
from .errors import (BackendConnectionError, BackendRateLimited,
                     BackendRequestError, BackendServerError,
                     BackendTimeout, MalformedResponseError)


def _retry_after_seconds(headers) -> float | None:
    """Parse a ``Retry-After`` header (delta-seconds form only)."""
    if headers is None:
        return None
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


def _effective_timeout(timeout: float, backend: str) -> float:
    """Clamp ``timeout`` to the propagated deadline (if any)."""
    remaining = remaining_deadline()
    if remaining is None:
        return timeout
    if remaining <= 0:
        raise BackendTimeout(
            f"{backend}: deadline exhausted before the request was sent",
            backend=backend)
    return min(timeout, remaining)


def post_json(url: str, payload: dict, *, headers: dict | None = None,
              timeout: float = 120.0, backend: str = "http") -> dict:
    """POST ``payload`` as JSON and return the decoded JSON reply.

    Every failure raises a typed :class:`~repro.llm.backends.errors.
    BackendError` subclass:

    - socket / read timeout (or an exhausted propagated deadline)
      -> :class:`BackendTimeout`;
    - unreachable endpoint -> :class:`BackendConnectionError`;
    - HTTP 429 -> :class:`BackendRateLimited` (``Retry-After`` parsed);
    - HTTP 5xx -> :class:`BackendServerError`;
    - other HTTP 4xx -> :class:`BackendRequestError` (non-retryable);
    - undecodable body -> :class:`MalformedResponseError`.
    """
    timeout = _effective_timeout(timeout, backend)
    data = json.dumps(payload).encode("utf-8")
    request_headers = {"Content-Type": "application/json"}
    if headers:
        request_headers.update(headers)
    request = urllib.request.Request(
        url, data=data, headers=request_headers, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            body = reply.read()
    except urllib.error.HTTPError as exc:
        status = exc.code
        detail = ""
        try:
            detail = exc.read().decode("utf-8", "replace")[:200]
        except OSError:  # pragma: no cover - body already gone
            pass
        message = f"{backend}: HTTP {status} from {url}" + (
            f": {detail}" if detail else "")
        if status == 429:
            raise BackendRateLimited(
                message, backend=backend, status=status,
                retry_after=_retry_after_seconds(exc.headers)) from None
        if status >= 500:
            raise BackendServerError(
                message, backend=backend, status=status) from None
        raise BackendRequestError(
            message, backend=backend, status=status) from None
    except (TimeoutError, socket.timeout):
        raise BackendTimeout(
            f"{backend}: request to {url} timed out after {timeout:.1f}s",
            backend=backend) from None
    except urllib.error.URLError as exc:
        reason = exc.reason
        if isinstance(reason, (TimeoutError, socket.timeout)):
            raise BackendTimeout(
                f"{backend}: request to {url} timed out after "
                f"{timeout:.1f}s", backend=backend) from None
        raise BackendConnectionError(
            f"{backend}: cannot reach {url}: {reason}",
            backend=backend) from None
    except (ConnectionError, OSError) as exc:
        raise BackendConnectionError(
            f"{backend}: connection to {url} failed: {exc}",
            backend=backend) from None
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedResponseError(
            f"{backend}: {url} answered 200 with an undecodable body "
            f"({exc}): {body[:120]!r}", backend=backend,
            status=200) from None
    if not isinstance(decoded, dict):
        raise MalformedResponseError(
            f"{backend}: {url} answered a JSON {type(decoded).__name__}, "
            f"expected an object", backend=backend, status=200)
    return decoded
