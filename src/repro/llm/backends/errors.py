"""Typed error taxonomy for live LLM backends.

Every failure mode a wire-attached backend can hit maps to one subclass
of :class:`BackendError`, so callers dispatch on *types* instead of
parsing exception strings.  The split that matters operationally is
``retryable``: the resilience wrapper
(:class:`repro.llm.backends.resilience.ResilientBackend`) retries
transient classes (timeouts, rate limits, 5xx, connection drops, and —
because flaky proxies truncate bodies — malformed responses) under an
exponential-backoff budget, and converts a spent budget into
:class:`BudgetExhausted`, which is terminal by construction.
"""

from __future__ import annotations


class BackendError(RuntimeError):
    """Base class for live-backend failures.

    ``backend`` names the adapter that raised (telemetry / messages);
    ``status`` carries the HTTP status when one was received.
    """

    retryable = False

    def __init__(self, message: str, *, backend: str = "",
                 status: int | None = None):
        super().__init__(message)
        self.backend = backend
        self.status = status


class BackendTimeout(BackendError):
    """The request (or the propagated deadline) ran out of time."""

    retryable = True


class BackendConnectionError(BackendError):
    """The endpoint could not be reached (DNS, refused, reset)."""

    retryable = True


class BackendRateLimited(BackendError):
    """The endpoint answered 429.  ``retry_after`` carries the server's
    requested delay in seconds when the response named one."""

    retryable = True

    def __init__(self, message: str, *, retry_after: float | None = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.retry_after = retry_after


class BackendServerError(BackendError):
    """The endpoint answered 5xx."""

    retryable = True


class BackendRequestError(BackendError):
    """The endpoint rejected the request (4xx other than 429) — a bad
    model name or API key; retrying the same request cannot help."""

    retryable = False


class MalformedResponseError(BackendError):
    """The endpoint answered 200 with a body this adapter cannot parse
    (truncated JSON, missing fields).  Retryable: real proxies truncate
    transiently, and one garbage completion must not kill a campaign."""

    retryable = True


class BudgetExhausted(BackendError):
    """A retry or rate-limit budget was spent without a success.  The
    ``__cause__`` chain preserves the last underlying failure."""

    retryable = False
