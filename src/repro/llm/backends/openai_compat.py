"""Adapter for OpenAI-compatible ``/v1/chat/completions`` endpoints.

This wire shape is the de-facto standard: OpenAI itself, vLLM, llama
.cpp's server, LM Studio, OpenRouter and Ollama's compatibility layer
all speak it.  One adapter therefore covers a whole family of
endpoints; the Hugging Face router adapter
(:mod:`repro.llm.backends.hf_router`) only changes the default base
URL.
"""

from __future__ import annotations

from ..base import ChatRequest, ChatResponse, Usage
from ..tokens import approx_token_count
from .base import LLMBackend
from .errors import MalformedResponseError
from .http import post_json


class OpenAICompatBackend(LLMBackend):
    """Talk to any OpenAI-compatible chat-completions endpoint."""

    backend_id = "openai"

    @classmethod
    def default_base_url(cls) -> str:
        return "https://api.openai.com"

    def _headers(self) -> dict:
        headers = {}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        return headers

    def complete(self, request: ChatRequest) -> ChatResponse:
        payload = {
            "model": self.model,
            "messages": self.wire_messages(request),
            "temperature": self.params.temperature,
            "top_p": self.params.top_p,
            "max_tokens": self.params.max_tokens,
            "stream": False,
        }
        reply = post_json(
            f"{self.base_url}/v1/chat/completions", payload,
            headers=self._headers(), timeout=self.timeout,
            backend=self.backend_id)
        choices = reply.get("choices")
        if not isinstance(choices, list) or not choices:
            raise MalformedResponseError(
                f"{self.backend_id}: reply has no choices "
                f"(keys: {sorted(reply)})", backend=self.backend_id)
        message = choices[0].get("message") \
            if isinstance(choices[0], dict) else None
        if not isinstance(message, dict) or \
                not isinstance(message.get("content"), str):
            raise MalformedResponseError(
                f"{self.backend_id}: choices[0] has no message.content",
                backend=self.backend_id)
        text = message["content"]
        usage = reply.get("usage") if isinstance(reply.get("usage"),
                                                 dict) else {}
        return ChatResponse(
            text=text,
            usage=Usage(
                input_tokens=_count(usage.get("prompt_tokens"),
                                    request.prompt_text),
                output_tokens=_count(usage.get("completion_tokens"),
                                     text)),
            model_name=str(reply.get("model", self.model)))


def _count(value, fallback_text: str) -> int:
    if isinstance(value, int) and value >= 0:
        return value
    return approx_token_count(fallback_text)
