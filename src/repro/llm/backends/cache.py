"""Response cache for live backends, layered into the cache registry.

Live completions are the most expensive artifact this codebase
produces; identical requests (same backend, model, prompt, and sampling
parameters) are answered from memory.  The layer registers as
``llm_responses`` in :data:`repro.core.caches.caches`, so the standard
verbs apply — ``caches.clear("llm_responses")``, ``caches.stats()`` —
and entries travel inside :class:`~repro.core.caches.CacheSnapshot`
warm-start artifacts as plain ``(text, input_tokens, output_tokens,
model_name)`` tuples.

A cache hit replays the recorded response *including its usage*,
mirroring :class:`~repro.llm.replay.ReplayClient`: metering reports
what the session would have cost, while the wire sees no request (and
the rate budget is not charged — the caching wrapper sits outside the
resilience wrapper in the stack
:func:`~repro.llm.backends.registry.resolve_llm_client` builds).

Deterministic sampling (``temperature=0``) makes caching semantically
safe; at nonzero temperatures a hit collapses would-be-different
samples, which is the standard trade every response cache makes — the
key includes the sampling fingerprint so distinct settings never alias.
"""

from __future__ import annotations

from ...core.caches import caches
from ...util import LruCache
from ..base import ChatRequest, ChatResponse, LLMClient, Usage
from ..replay import prompt_sha

#: Bounded well above one campaign's exchange count (156 tasks x a few
#: dozen exchanges) so eviction only bites truly long-lived processes.
DEFAULT_RESPONSE_CACHE_SIZE = 8192


def response_key(backend_id: str, model: str, prompt: str,
                 params_fingerprint: str) -> tuple:
    """The cache key: backend id + model + prompt SHA-256 + sampling
    parameters."""
    return (backend_id, model, prompt_sha(prompt), params_fingerprint)


def _export(cache: LruCache) -> dict:
    return {key: (response.text, response.usage.input_tokens,
                  response.usage.output_tokens, response.model_name)
            for key, response in cache.export().items()}


def _import(cache: LruCache, payload: dict) -> int:
    entries = {
        key: ChatResponse(text=text,
                          usage=Usage(input_tokens, output_tokens),
                          model_name=model_name)
        for key, (text, input_tokens, output_tokens, model_name)
        in payload.items()}
    return cache.import_entries(entries)


#: The process-wide response store (one per process, like every other
#: registered layer; the *key* carries backend identity).
_responses = LruCache(capacity=DEFAULT_RESPONSE_CACHE_SIZE)

caches.register(
    "llm_responses",
    clear=_responses.clear,
    stats=_responses.stats,
    export=lambda: _export(_responses),
    import_=lambda payload: _import(_responses, payload))


def response_cache() -> LruCache:
    """The registered ``llm_responses`` store."""
    return _responses


class CachingBackend:
    """Answer repeated requests from the ``llm_responses`` layer.

    Wraps any :class:`~repro.llm.base.LLMClient`; ``backend_id`` and
    ``params_fingerprint`` default from the wrapped adapter when it
    exposes them (a :class:`~repro.llm.backends.resilience.
    ResilientBackend` forwards to its adapter via ``inner``).
    """

    def __init__(self, inner: LLMClient, *, backend_id: str = "",
                 params_fingerprint: str = "",
                 cache: LruCache | None = None):
        self._inner = inner
        adapter = getattr(inner, "inner", inner)
        self.backend_id = backend_id or \
            getattr(adapter, "backend_id", "") or inner.name
        self.params_fingerprint = params_fingerprint or (
            adapter.params.fingerprint()
            if hasattr(adapter, "params") else "")
        self._cache = cache if cache is not None else _responses
        self.hits = 0  # telemetry (per wrapper; the store counts too)
        self.misses = 0

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> LLMClient:
        return self._inner

    def complete(self, request: ChatRequest) -> ChatResponse:
        key = response_key(self.backend_id, self._inner.name,
                           request.prompt_text, self.params_fingerprint)
        # Probe-then-insert (not get_or_create): a miss performs a
        # fallible wire call, and a raised BackendError must leave the
        # cache unchanged.
        response = self._cache.get(key)
        if response is not None:
            self.hits += 1
            return response
        self.misses += 1
        response = self._inner.complete(request)
        return self._cache.insert(key, response)
