"""``repro.llm.backends`` — live multi-LLM backend layer.

Wire-attached counterparts to the synthetic tier: pluggable adapters
(Ollama, OpenAI-compatible, Hugging Face router) behind the
:class:`~repro.llm.base.LLMClient` protocol, a typed error taxonomy, a
resilience stack (retry budgets, rate limits, deadline propagation, a
global in-flight cap), a registered response cache, and a
recorded-fixture mode that keeps CI offline while exercising the real
adapter code paths.  See ``docs/extending.md`` ("Adding an LLM
backend") for the recipe.

Everything here is stdlib-only; the synthetic profiles remain the
default deterministic tier (``SimContext.llm_backend == ""``), and this
package is only imported when a backend is actually resolved.
"""

from .base import (LLMBackend, SamplingParams, remaining_deadline,
                   use_deadline)
from .cache import (CachingBackend, DEFAULT_RESPONSE_CACHE_SIZE,
                    response_cache, response_key)
from .errors import (BackendConnectionError, BackendError,
                     BackendRateLimited, BackendRequestError,
                     BackendServerError, BackendTimeout, BudgetExhausted,
                     MalformedResponseError)
from .fanout import fan_out, iter_fan_out
from .fixtures import FixtureBackend, FixtureError, FixtureStore
from .hf_router import HFRouterBackend
from .ollama import OllamaBackend
from .openai_compat import OpenAICompatBackend
from .registry import (ADAPTERS, backend_names, create_backend,
                       is_live_backend, live_stack, resolve_llm_client)
from .resilience import (DEFAULT_MAX_IN_FLIGHT, GLOBAL_IN_FLIGHT,
                         InFlightCap, RateLimitBudget, ResilientBackend,
                         RetryPolicy, set_global_in_flight)

__all__ = [
    "ADAPTERS",
    "BackendConnectionError",
    "BackendError",
    "BackendRateLimited",
    "BackendRequestError",
    "BackendServerError",
    "BackendTimeout",
    "BudgetExhausted",
    "CachingBackend",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_RESPONSE_CACHE_SIZE",
    "FixtureBackend",
    "FixtureError",
    "FixtureStore",
    "GLOBAL_IN_FLIGHT",
    "HFRouterBackend",
    "InFlightCap",
    "LLMBackend",
    "MalformedResponseError",
    "OllamaBackend",
    "OpenAICompatBackend",
    "RateLimitBudget",
    "ResilientBackend",
    "RetryPolicy",
    "SamplingParams",
    "backend_names",
    "create_backend",
    "fan_out",
    "is_live_backend",
    "iter_fan_out",
    "live_stack",
    "remaining_deadline",
    "resolve_llm_client",
    "response_cache",
    "response_key",
    "set_global_in_flight",
    "use_deadline",
]
