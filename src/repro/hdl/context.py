"""Explicit, request-scoped simulation configuration.

Historically every execution knob was process-wide mutable state:
``set_default_engine`` / ``REPRO_SIM_ENGINE`` picked the simulator
engine, ``set_default_lexer`` / ``REPRO_LEXER`` the tokenizer,
``REPRO_JOBS`` the campaign worker count, and simulation limits were
module constants.  That shape cannot serve concurrent workloads with
different configurations: one request flipping a global reconfigures
every other request in flight.

This module replaces the globals with one immutable value object:

:class:`SimContext`
    a frozen dataclass carrying the engine, the lexer, the simulation
    limits (``max_time`` / ``max_stmts``), the differential-fuzz budget
    knobs and the worker-pool configuration (job count, start method,
    warm-start flag, template-cache capacity).  Being immutable and
    made of primitives it is hashable, comparable and picklable —
    campaign work items ship the context to pool workers as plain data.

:func:`current_context`
    the single resolution point.  Selection follows a strict order:
    **explicit argument > active context > env-seeded root context**.
    The *active* context is a :mod:`contextvars` variable, so nested
    activations restore correctly and concurrent threads / asyncio
    tasks each see their own configuration.

:func:`use_context`
    a context manager activating a context (or a derived one via
    keyword overrides) for the dynamic extent of a block::

        with use_context(engine="interpret", max_stmts=10_000):
            simulate(src, "tb")          # runs interpreted, capped

:func:`root_context` / :func:`set_root_context`
    the process-wide fallback, seeded once at import from the legacy
    ``REPRO_*`` environment variables (invalid values warn on stderr
    and fall back to the defaults).  The deprecated
    ``set_default_engine`` / ``set_default_lexer`` shims steer this
    root, so existing code keeps working while new code composes
    contexts explicitly.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

ENGINE_COMPILED = "compiled"
ENGINE_INTERPRET = "interpret"
ENGINES = (ENGINE_COMPILED, ENGINE_INTERPRET)

LEXER_MASTER = "master"
LEXER_REFERENCE = "reference"
LEXERS = (LEXER_MASTER, LEXER_REFERENCE)

#: Mutant-sweep execution strategies (see ``run_mutant_sweep``):
#: ``lockstep`` merges all same-interface DUT variants into one union
#: design and runs the shared driver once; ``per-mutant`` simulates each
#: variant separately and stays the behavioural oracle.
MUTANT_LOCKSTEP = "lockstep"
MUTANT_PER_MUTANT = "per-mutant"
MUTANT_ENGINES = (MUTANT_LOCKSTEP, MUTANT_PER_MUTANT)

#: Worker-pool start methods.  ``"default"`` defers to the platform
#: (fork on Linux); the explicit names select a multiprocessing start
#: method, whose availability is checked at pool creation time.
START_METHOD_DEFAULT = "default"
START_METHODS = (START_METHOD_DEFAULT, "fork", "spawn", "forkserver")

#: LLM backend specs (see :mod:`repro.llm.backends.registry`).  The
#: grammar is validated here — where contexts are built — so the llm
#: package never imports back into this module: a plain name, or the
#: compound record-through form ``fixture+<adapter-or-synthetic>``.
LLM_SYNTHETIC = "synthetic"
LLM_ADAPTERS = ("ollama", "openai", "hf")
LLM_FIXTURE = "fixture"
LLM_BACKENDS = (LLM_SYNTHETIC,) + LLM_ADAPTERS + (LLM_FIXTURE,)


def valid_llm_backend(spec: str) -> bool:
    """Is ``spec`` a well-formed ``llm_backend`` value?

    >>> [valid_llm_backend(s) for s in
    ...  ("", "synthetic", "ollama", "fixture+hf", "fixture+fixture")]
    [True, True, True, True, False]
    """
    if spec == "":
        return True
    head, sep, tail = spec.partition("+")
    if not sep:
        return head in LLM_BACKENDS
    return head == LLM_FIXTURE and \
        tail in (LLM_SYNTHETIC,) + LLM_ADAPTERS


DEFAULT_MAX_TIME = 2_000_000
DEFAULT_MAX_STMTS = 4_000_000
DEFAULT_JOBS = 1
DEFAULT_FUZZ_PROGRAMS = 200
DEFAULT_FUZZ_SEED = 1729
DEFAULT_TEMPLATE_CACHE_SIZE = 256
#: Global template-entry budget across all task scopes.  Per-scope LRUs
#: are bounded by ``template_cache_size``, but a worst-case workload
#: could hold ``capacity × max_scopes`` entries; the budget sheds whole
#: least-recently-used scopes once the total crosses it.  Sized so a
#: full-dataset campaign prewarm (156 tasks × a handful of templates)
#: never triggers shedding.
DEFAULT_TEMPLATE_CACHE_BUDGET = 4096


@dataclass(frozen=True, slots=True)
class SimContext:
    """One immutable bundle of execution configuration.

    Fields are validated on construction, so an invalid context fails
    at the call site that built it — not deep inside a pool worker.

    >>> SimContext().engine
    'compiled'
    >>> SimContext(engine="quantum")
    Traceback (most recent call last):
        ...
    ValueError: unknown engine 'quantum'; expected one of ('compiled', 'interpret')

    Contexts are plain immutable values: hashable, comparable and
    picklable, so batch and campaign APIs ship them to pool workers
    inside each work item.

    >>> SimContext() == SimContext()
    True
    """

    engine: str = ENGINE_COMPILED
    lexer: str = LEXER_MASTER
    #: How batched same-driver mutant sweeps execute: ``"lockstep"``
    #: (union design, one run) with automatic per-shape fallback, or
    #: ``"per-mutant"`` (one run per variant, the oracle path).
    mutant_engine: str = MUTANT_LOCKSTEP
    max_time: int = DEFAULT_MAX_TIME
    max_stmts: int = DEFAULT_MAX_STMTS
    jobs: int = DEFAULT_JOBS
    fuzz_programs: int = DEFAULT_FUZZ_PROGRAMS
    fuzz_seed: int = DEFAULT_FUZZ_SEED
    start_method: str = START_METHOD_DEFAULT
    warm_start: bool = True
    template_cache_size: int = DEFAULT_TEMPLATE_CACHE_SIZE
    template_cache_budget: int = DEFAULT_TEMPLATE_CACHE_BUDGET
    #: Directory correction-session traces are recorded into ("" = trace
    #: recording off).  A plain string so the context stays picklable and
    #: pool workers resolve the same sink their parent configured.
    trace_dir: str = ""
    #: Directory of the persistent campaign artifact store ("" = no
    #: store).  Campaigns write completed results (and a warm-start
    #: cache snapshot) here, and ``--resume`` / shard workers read them
    #: back instead of resimulating (see :mod:`repro.eval.store`).
    #: A plain string, like ``trace_dir``, so contexts stay picklable.
    store_dir: str = ""
    #: Which model tier answers LLM requests ("" = the synthetic
    #: profiles, the deterministic default).  A spec string — see
    #: :func:`valid_llm_backend` — resolved by
    #: :func:`repro.llm.backends.registry.resolve_llm_client`.
    llm_backend: str = ""
    #: Live model identifier sent to the backend ("" = the campaign's
    #: profile name doubles as the model id).
    llm_model: str = ""
    #: Endpoint base URL override ("" = the adapter's default).
    llm_base_url: str = ""
    #: Directory the fixture modes record to / replay from.
    llm_fixture_dir: str = ""

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"expected one of {ENGINES}")
        if self.lexer not in LEXERS:
            raise ValueError(f"unknown lexer {self.lexer!r}; "
                             f"expected one of {LEXERS}")
        if self.mutant_engine not in MUTANT_ENGINES:
            raise ValueError(f"unknown mutant_engine "
                             f"{self.mutant_engine!r}; "
                             f"expected one of {MUTANT_ENGINES}")
        if self.start_method not in START_METHODS:
            raise ValueError(f"unknown start_method "
                             f"{self.start_method!r}; "
                             f"expected one of {START_METHODS}")
        for name in ("max_time", "max_stmts", "jobs", "fuzz_programs",
                     "template_cache_size", "template_cache_budget"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, "
                                 f"got {value!r}")
        if not isinstance(self.fuzz_seed, int):
            raise ValueError(f"fuzz_seed must be an integer, "
                             f"got {self.fuzz_seed!r}")
        if not isinstance(self.warm_start, bool):
            raise ValueError(f"warm_start must be a bool, "
                             f"got {self.warm_start!r}")
        if not isinstance(self.trace_dir, str):
            raise ValueError(f"trace_dir must be a string path "
                             f"('' disables tracing), "
                             f"got {self.trace_dir!r}")
        if not isinstance(self.store_dir, str):
            raise ValueError(f"store_dir must be a string path "
                             f"('' disables the campaign store), "
                             f"got {self.store_dir!r}")
        if not isinstance(self.llm_backend, str) or \
                not valid_llm_backend(self.llm_backend):
            raise ValueError(
                f"unknown llm_backend {self.llm_backend!r}; expected "
                f"one of {LLM_BACKENDS}, or fixture+<name> to record "
                f"through a backend ('' = synthetic)")
        for name in ("llm_model", "llm_base_url", "llm_fixture_dir"):
            value = getattr(self, name)
            if not isinstance(value, str):
                raise ValueError(f"{name} must be a string, "
                                 f"got {value!r}")

    def evolve(self, **overrides) -> "SimContext":
        """Return a copy with ``overrides`` applied (and re-validated).

        >>> SimContext().evolve(max_stmts=10_000).max_stmts
        10000
        """
        return replace(self, **overrides)


# ----------------------------------------------------------------------
# Environment seeding (the only REPRO_* reads in the code base)
# ----------------------------------------------------------------------
def _warn_env(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _context_from_env(environ=None) -> tuple[SimContext, frozenset]:
    """Build a context from ``REPRO_*`` variables.

    Returns ``(context, seeded)`` where ``seeded`` names the fields an
    environment variable actually set.  Invalid values warn on stderr
    and leave the field at its default — a misspelt knob must degrade a
    run, never kill it (mirrors the historical ``REPRO_SIM_ENGINE``
    behaviour, now extended to every variable including ``REPRO_JOBS``).
    """
    if environ is None:
        environ = os.environ
    overrides: dict = {}
    seeded: set[str] = set()

    engine = environ.get("REPRO_SIM_ENGINE")
    if engine is not None:
        if engine in ENGINES:
            overrides["engine"] = engine
            seeded.add("engine")
        else:
            _warn_env(f"REPRO_SIM_ENGINE={engine!r} is not one of "
                      f"{ENGINES}; using {ENGINE_COMPILED!r}")

    lexer = environ.get("REPRO_LEXER")
    if lexer is not None:
        if lexer in LEXERS:
            overrides["lexer"] = lexer
            seeded.add("lexer")
        else:
            _warn_env(f"REPRO_LEXER={lexer!r} is not one of "
                      f"{LEXERS}; using {LEXER_MASTER!r}")

    mutant_engine = environ.get("REPRO_MUTANT_ENGINE")
    if mutant_engine is not None:
        if mutant_engine in MUTANT_ENGINES:
            overrides["mutant_engine"] = mutant_engine
            seeded.add("mutant_engine")
        else:
            _warn_env(f"REPRO_MUTANT_ENGINE={mutant_engine!r} is not "
                      f"one of {MUTANT_ENGINES}; using "
                      f"{MUTANT_LOCKSTEP!r}")

    jobs = environ.get("REPRO_JOBS")
    if jobs:
        try:
            value = int(jobs)
        except ValueError:
            _warn_env(f"REPRO_JOBS={jobs!r} is not an integer; "
                      f"using the default worker count")
        else:
            if value == 0:
                value = os.cpu_count() or 1
            overrides["jobs"] = max(1, value)
            seeded.add("jobs")

    start_method = environ.get("REPRO_START_METHOD")
    if start_method is not None:
        if start_method in START_METHODS:
            overrides["start_method"] = start_method
            seeded.add("start_method")
        else:
            _warn_env(f"REPRO_START_METHOD={start_method!r} is not one "
                      f"of {START_METHODS}; using "
                      f"{START_METHOD_DEFAULT!r}")

    warm = environ.get("REPRO_WARM_START")
    if warm is not None:
        lowered = warm.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            overrides["warm_start"] = True
            seeded.add("warm_start")
        elif lowered in ("0", "false", "no", "off"):
            overrides["warm_start"] = False
            seeded.add("warm_start")
        else:
            _warn_env(f"REPRO_WARM_START={warm!r} is not a boolean "
                      f"(1/0/true/false); using the default")

    trace_dir = environ.get("REPRO_TRACE_DIR")
    if trace_dir is not None:
        overrides["trace_dir"] = trace_dir
        seeded.add("trace_dir")

    store_dir = environ.get("REPRO_STORE_DIR")
    if store_dir is not None:
        overrides["store_dir"] = store_dir
        seeded.add("store_dir")

    llm_backend = environ.get("REPRO_LLM_BACKEND")
    if llm_backend is not None:
        if valid_llm_backend(llm_backend):
            overrides["llm_backend"] = llm_backend
            seeded.add("llm_backend")
        else:
            _warn_env(f"REPRO_LLM_BACKEND={llm_backend!r} is not one of "
                      f"{LLM_BACKENDS} (or fixture+<name>); using the "
                      f"synthetic tier")

    for env_name, field_name in (
            ("REPRO_LLM_MODEL", "llm_model"),
            ("REPRO_LLM_BASE_URL", "llm_base_url"),
            ("REPRO_LLM_FIXTURE_DIR", "llm_fixture_dir")):
        raw = environ.get(env_name)
        if raw is not None:
            overrides[field_name] = raw
            seeded.add(field_name)

    for env_name, field_name in (
            ("REPRO_FUZZ_PROGRAMS", "fuzz_programs"),
            ("REPRO_FUZZ_SEED", "fuzz_seed"),
            ("REPRO_TEMPLATE_CACHE_SIZE", "template_cache_size"),
            ("REPRO_TEMPLATE_CACHE_BUDGET", "template_cache_budget")):
        raw = environ.get(env_name)
        if raw is None:
            continue
        try:
            value = int(raw)
        except ValueError:
            _warn_env(f"{env_name}={raw!r} is not an integer; "
                      f"using the default")
            continue
        if field_name != "fuzz_seed" and value < 1:
            _warn_env(f"{env_name}={raw!r} must be >= 1; "
                      f"using the default")
            continue
        overrides[field_name] = value
        seeded.add(field_name)

    return SimContext(**overrides), frozenset(seeded)


_root, _env_seeded = _context_from_env()

# The active (request-scoped) context.  ``None`` means "fall through to
# the root": threads and asyncio tasks start without an activation, so
# a worker never silently inherits another request's configuration.
_active: ContextVar[SimContext | None] = ContextVar(
    "repro_sim_context", default=None)


def current_context() -> SimContext:
    """Resolve the context in effect: active if any, else the root.

    >>> current_context().engine in ENGINES
    True
    """
    context = _active.get()
    return context if context is not None else _root


def active_context() -> SimContext | None:
    """The activation in effect, or ``None`` when resolution falls
    through to the root (used by the deprecation shims to flag
    root-steering that an activation would mask)."""
    return _active.get()


def root_context() -> SimContext:
    """The process-wide fallback context (env-seeded at import)."""
    return _root


def set_root_context(context: SimContext) -> None:
    """Replace the process-wide fallback context.

    Prefer :func:`use_context` for anything request-scoped; this is for
    process setup (CLI entry points, worker initializers) and for the
    legacy ``set_default_*`` shims.
    """
    global _root
    if not isinstance(context, SimContext):
        raise TypeError(f"expected a SimContext, got {context!r}")
    _root = context


@contextmanager
def use_context(context: SimContext | None = None, **overrides):
    """Activate ``context`` (or the current one evolved with keyword
    overrides) for the duration of the ``with`` block.

    Activations nest: leaving the block restores whatever was active
    before, even under exceptions.

    >>> with use_context(max_stmts=123):
    ...     current_context().max_stmts
    123
    >>> current_context().max_stmts == 123   # restored on exit
    False
    """
    base = context if context is not None else current_context()
    if overrides:
        base = base.evolve(**overrides)
    token = _active.set(base)
    try:
        yield base
    finally:
        _active.reset(token)


# ----------------------------------------------------------------------
# Per-request resolution (the service front end)
# ----------------------------------------------------------------------
#: SimContext fields a *request* may override (service ``X-Repro-*``
#: headers / body ``"context"`` objects).  Deliberately excludes the
#: operator-owned knobs — ``jobs``, ``start_method``, ``warm_start``,
#: cache capacities, ``trace_dir`` — which shape shared process state a
#: single request must not reconfigure.
REQUEST_CONTEXT_FIELDS = ("engine", "lexer", "mutant_engine",
                          "max_time", "max_stmts")

_REQUEST_INT_FIELDS = ("max_time", "max_stmts")


def context_from_request(overrides, base: SimContext | None = None,
                         ) -> SimContext:
    """Resolve a per-request :class:`SimContext` from untrusted input.

    ``overrides`` is a mapping of field name to value, typically decoded
    from request headers or a JSON body.  Only
    :data:`REQUEST_CONTEXT_FIELDS` are accepted; integer fields coerce
    from strings (header values arrive as text).  Anything else —
    unknown fields, malformed integers, values
    :class:`SimContext.__post_init__` rejects — raises ``ValueError``
    with a message fit for a ``400`` response body.

    >>> context_from_request({"engine": "interpret",
    ...                       "max_stmts": "50000"}).engine
    'interpret'
    >>> context_from_request({"jobs": 64})
    Traceback (most recent call last):
        ...
    ValueError: unknown context field(s) ['jobs']; requests may set ('engine', 'lexer', 'mutant_engine', 'max_time', 'max_stmts')
    """
    base = base if base is not None else current_context()
    unknown = sorted(name for name in overrides
                     if name not in REQUEST_CONTEXT_FIELDS)
    if unknown:
        raise ValueError(f"unknown context field(s) {unknown}; "
                         f"requests may set {REQUEST_CONTEXT_FIELDS}")
    clean: dict = {}
    for name, value in dict(overrides).items():
        if name in _REQUEST_INT_FIELDS and isinstance(value, str):
            try:
                value = int(value)
            except ValueError:
                raise ValueError(f"{name} must be an integer, "
                                 f"got {value!r}") from None
        clean[name] = value
    if not clean:
        return base
    return base.evolve(**clean)


def resolve_jobs(default: int = 1) -> int:
    """Worker count for campaign sharding.

    An active context always wins; otherwise the root's count applies
    when it was actually configured — seeded from ``REPRO_JOBS`` or
    steered away from the built-in default via
    :func:`set_root_context` — so callers keep control of their own
    default when nobody chose a job count.
    """
    context = _active.get()
    if context is not None:
        return context.jobs
    if "jobs" in _env_seeded or _root.jobs != DEFAULT_JOBS:
        return _root.jobs
    return default
