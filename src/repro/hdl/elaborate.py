"""Design elaboration: modules + instances -> flat signals and processes.

Elaboration resolves parameters, computes signal widths, flattens the
instance hierarchy (hierarchical names use ``.`` separators) and turns
every behavioural construct into a :class:`ProcSpec` the simulator can
schedule.  Port connections become dedicated combinational binding
processes, which gives plain wire semantics without a net-resolution pass.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from . import ast
from .errors import ElaborationError
from .eval import collect_expr_reads, collect_stmt_reads, eval_expr
from .logic import Logic

MAX_SIGNAL_WIDTH = 4096
MAX_MEMORY_WORDS = 1 << 20


class Signal:
    """A flattened net or variable with its current 4-state value.

    ``waiters`` and ``combs`` are per-run scheduler state: the event
    tokens of suspended processes and the combinational processes whose
    read set includes this signal.  The simulator (re)binds both at
    instantiation time; keeping them on the signal avoids a dict lookup
    on every value change.
    """

    __slots__ = ("name", "width", "signed", "kind", "value", "waiters",
                 "combs")

    def __init__(self, name: str, width: int, signed: bool = False,
                 kind: str = "wire"):
        if width < 1 or width > MAX_SIGNAL_WIDTH:
            raise ElaborationError(
                f"signal {name!r} has unsupported width {width}")
        self.name = name
        self.width = width
        self.signed = signed
        self.kind = kind
        self.value = Logic.unknown(width)
        self.waiters: list = []   # list[WaitToken]
        self.combs: list | None = None  # list[CombProcess], set per run

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}, {self.width}, {self.value.bits()})"


class Memory:
    """A 1-D unpacked array of words (register files, small RAMs)."""

    __slots__ = ("name", "width", "signed", "lo", "hi", "words", "waiters",
                 "combs")

    def __init__(self, name: str, width: int, lo: int, hi: int,
                 signed: bool = False):
        if hi < lo:
            lo, hi = hi, lo
        if hi - lo + 1 > MAX_MEMORY_WORDS:
            raise ElaborationError(f"memory {name!r} too large")
        self.name = name
        self.width = width
        self.signed = signed
        self.lo = lo
        self.hi = hi
        self.words = [Logic.unknown(width) for _ in range(hi - lo + 1)]
        self.waiters: list = []
        self.combs: list | None = None  # list[CombProcess], set per run

    def read(self, addr: int) -> Logic:
        if addr < self.lo or addr > self.hi:
            return Logic.unknown(self.width)
        return self.words[addr - self.lo]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Memory({self.name}, {self.width}x{len(self.words)})"


@dataclass
class ProcSpec:
    """A schedulable process produced by elaboration.

    ``kind`` is one of:

    ``initial``
        runs once from time zero.
    ``always``
        the body re-runs forever; explicit event controls/delays inside the
        body (or an ``events`` sensitivity list) provide suspension points.
    ``comb``
        combinational processes (continuous assignments, ``always @(*)`` and
        port bindings); re-evaluated whenever a signal in ``reads`` changes,
        plus once at time zero.

    ``port_bind`` carries the structured form of a port-binding process
    (``("in", expr, child_signal)`` / ``("out", child_signal,
    parent_signal)``) so the compile pass can lower it without the
    ``pyfunc`` interpreter fallback.  ``compiled`` caches the *bound*
    :class:`~repro.hdl.compile.CompiledProc` for this spec (the shared
    slot-indexed program plus this elaboration's frame); it lives on the
    spec so every simulation of the same elaborated design reuses it.
    """
    kind: str
    scope: "Scope"
    body: Optional[ast.Stmt] = None
    events: Optional[tuple[ast.EventExpr, ...]] = None
    pyfunc: Optional[Callable] = None
    reads: tuple[object, ...] = ()
    label: str = ""
    port_bind: Optional[tuple] = None
    compiled: Optional[object] = field(default=None, repr=False,
                                       compare=False)


class Scope:
    """Name resolution for one elaborated module instance."""

    def __init__(self, design: "Design", prefix: str):
        self.design = design
        self.prefix = prefix
        self.names: dict[str, object] = {}   # Signal | Memory | Logic(const)

    # -- declaration ---------------------------------------------------
    def declare(self, name: str, obj: object) -> None:
        if name in self.names:
            raise ElaborationError(
                f"duplicate declaration of {name!r} in {self.prefix or 'top'}")
        self.names[name] = obj

    def lookup(self, name: str) -> object:
        try:
            return self.names[name]
        except KeyError:
            raise ElaborationError(
                f"unknown identifier {name!r} in {self.prefix or 'top'}") from None

    # -- queries used by the evaluator ----------------------------------
    def width_of_name(self, name: str) -> int:
        obj = self.lookup(name)
        if isinstance(obj, Signal):
            return obj.width
        if isinstance(obj, Logic):
            return obj.width
        if isinstance(obj, Memory):
            raise ElaborationError(
                f"memory {name!r} used without an index")
        raise ElaborationError(f"cannot size {name!r}")

    def signed_of_name(self, name: str) -> bool:
        obj = self.lookup(name)
        if isinstance(obj, (Signal, Memory)):
            return obj.signed
        return False

    def is_memory(self, name: str) -> bool:
        return isinstance(self.names.get(name), Memory)

    def memory_width(self, name: str) -> int:
        obj = self.lookup(name)
        assert isinstance(obj, Memory)
        return obj.width

    def read_name(self, name: str) -> Logic:
        obj = self.lookup(name)
        if isinstance(obj, Signal):
            return obj.value
        if isinstance(obj, Logic):
            return obj
        raise ElaborationError(f"cannot read {name!r} as a value")

    def read_memory(self, name: str, addr: int) -> Logic:
        obj = self.lookup(name)
        assert isinstance(obj, Memory)
        return obj.read(addr)

    def const_int(self, expr: ast.Expr) -> int:
        """Evaluate an elaboration-time constant to a Python int."""
        value = eval_expr(expr, self)
        result = value.to_uint()
        if result is None:
            raise ElaborationError(
                f"expression is not a defined constant in {self.prefix or 'top'}")
        return result

    # -- runtime hooks (rebound by the simulator) ------------------------
    def sim_time(self) -> int:
        return self.design.runtime_time()

    def sim_random(self) -> int:
        return self.design.runtime_random()

    def sim_fopen(self, filename: str) -> int:
        return self.design.runtime_fopen(filename)


@dataclass
class Design:
    """A fully elaborated, flattened design ready for simulation."""
    top: str
    signals: dict[str, Signal] = field(default_factory=dict)
    memories: dict[str, Memory] = field(default_factory=dict)
    processes: list[ProcSpec] = field(default_factory=list)

    # The simulator installs these hooks before running.
    runtime_time: Callable[[], int] = lambda: 0
    runtime_random: Callable[[], int] = lambda: 0
    runtime_fopen: Callable[[str], int] = lambda name: 0

    def signal(self, hier_name: str) -> Signal:
        try:
            return self.signals[hier_name]
        except KeyError:
            raise KeyError(
                f"no signal {hier_name!r}; known: "
                f"{sorted(self.signals)[:20]}") from None


class Elaborator:
    def __init__(self, source: ast.SourceFile):
        self.modules = {m.name: m for m in source.modules}

    def elaborate(self, top: str) -> Design:
        if top not in self.modules:
            raise ElaborationError(f"top module {top!r} not found")
        design = Design(top=top)
        self._elaborate_module(design, self.modules[top], prefix="",
                               param_overrides={}, depth=0)
        return design

    # ------------------------------------------------------------------
    def _elaborate_module(self, design: Design, module: ast.Module,
                          prefix: str, param_overrides: dict[str, Logic],
                          depth: int,
                          port_aliases: dict[str, Signal] | None = None,
                          ) -> Scope:
        if depth > 32:
            raise ElaborationError("instance hierarchy too deep (recursion?)")
        scope = Scope(design, prefix)

        # Parameters first: ranges may reference them.
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                if not item.local and item.name in param_overrides:
                    scope.declare(item.name, param_overrides[item.name])
                else:
                    scope.declare(item.name, eval_expr(item.value, scope))

        # Ports.  A port whose connection is a plain same-width,
        # same-signedness parent net is *aliased*: the child scope shares
        # the parent's Signal object, so no binding process (and no extra
        # delta hop) is needed for it.  This must happen before the rest
        # of the module elaborates — combinational read sets capture
        # Signal objects eagerly.
        declared_ports: dict[str, Signal] = {}
        for port in module.ports:
            if port.direction == "inout":
                raise ElaborationError(
                    f"inout port {port.name!r} is not supported")
            width = self._range_width(port.range, scope)
            alias = port_aliases.get(port.name) if port_aliases else None
            if (alias is not None and alias.width == width
                    and alias.signed == port.signed):
                design.signals[f"{prefix}{port.name}"] = alias
                scope.declare(port.name, alias)
                declared_ports[port.name] = alias
                continue
            sig = self._new_signal(design, scope, port.name, width,
                                   port.signed, "reg" if port.is_reg else "wire")
            declared_ports[port.name] = sig

        # Net/reg declarations (may refine existing port declarations).
        for item in module.items:
            if isinstance(item, ast.NetDecl):
                self._declare_nets(design, scope, item, declared_ports)

        # Behavioural items.
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._add_cont_assign(design, scope, item)
            elif isinstance(item, ast.AlwaysBlock):
                self._add_always(design, scope, item)
            elif isinstance(item, ast.InitialBlock):
                design.processes.append(ProcSpec(
                    kind="initial", scope=scope, body=item.body,
                    label=f"{prefix}initial"))
            elif isinstance(item, ast.Instance):
                self._elaborate_instance(design, scope, module, item,
                                         prefix, depth)
        return scope

    # ------------------------------------------------------------------
    def _range_width(self, rng: Optional[ast.Range], scope: Scope) -> int:
        if rng is None:
            return 1
        msb = scope.const_int(rng.msb)
        lsb = scope.const_int(rng.lsb)
        if lsb != 0:
            raise ElaborationError(
                f"only [N:0] ranges are supported, got [{msb}:{lsb}]")
        return msb - lsb + 1

    def _new_signal(self, design: Design, scope: Scope, name: str,
                    width: int, signed: bool, kind: str) -> Signal:
        hier = f"{scope.prefix}{name}"
        sig = Signal(hier, width, signed, kind)
        design.signals[hier] = sig
        scope.declare(name, sig)
        return sig

    def _declare_nets(self, design: Design, scope: Scope, item: ast.NetDecl,
                      ports: dict[str, Signal]) -> None:
        if item.kind == "integer":
            width, signed = 32, True
        else:
            width = self._range_width(item.range, scope)
            signed = item.signed

        for name, init in zip(item.names, item.inits):
            if item.array is not None:
                lo = scope.const_int(item.array.lsb)
                hi = scope.const_int(item.array.msb)
                hier = f"{scope.prefix}{name}"
                mem = Memory(hier, width, min(lo, hi), max(lo, hi), signed)
                design.memories[hier] = mem
                scope.declare(name, mem)
                continue
            if name in ports:
                # Redeclaration of a port ('output q; reg q;'): refine kind,
                # check width compatibility.
                sig = ports[name]
                if item.range is not None and sig.width != width:
                    raise ElaborationError(
                        f"port {name!r} redeclared with width {width}, "
                        f"expected {sig.width}")
                if item.kind == "reg":
                    sig.kind = "reg"
                if init is not None:
                    sig.value = eval_expr(init, scope).resize(sig.width)
                continue
            sig = self._new_signal(design, scope, name, width, signed,
                                   item.kind)
            if init is not None:
                if item.kind == "wire":
                    # `wire w = expr;` is a continuous assignment
                    # (IEEE 1364 6.1.1), not a one-time initial value.
                    self._add_cont_assign(design, scope, ast.ContinuousAssign(
                        ast.LvIdent(name), init))
                else:
                    sig.value = eval_expr(init, scope).resize(width)

    # ------------------------------------------------------------------
    def _resolve_reads(self, scope: Scope, names: set[str]) -> tuple:
        objs = []
        for name in sorted(names):
            obj = scope.names.get(name)
            if isinstance(obj, (Signal, Memory)):
                objs.append(obj)
        return tuple(objs)

    @staticmethod
    def _verify_names(scope: Scope, names: set[str], where: str) -> None:
        """Static name check so broken references fail at compile time
        (the Eval0 criterion), not at the first simulation event."""
        for name in sorted(names):
            if name not in scope.names:
                raise ElaborationError(
                    f"unknown identifier {name!r} in {where}")

    def _add_cont_assign(self, design: Design, scope: Scope,
                         item: ast.ContinuousAssign) -> None:
        reads: set[str] = set()
        collect_expr_reads(item.value, reads)
        self._verify_names(scope, reads,
                           f"{scope.prefix or 'top'} continuous assign")
        stmt = _interned_assign(item)
        if isinstance(item.target, ast.LvIndex):
            # Partial drivers read-modify-write the target.
            collect_expr_reads(item.target.index, reads)
        design.processes.append(ProcSpec(
            kind="comb", scope=scope, body=stmt,
            reads=self._resolve_reads(scope, reads),
            label=f"{scope.prefix}assign"))

    def _add_always(self, design: Design, scope: Scope,
                    item: ast.AlwaysBlock) -> None:
        body_reads: set[str] = set()
        collect_stmt_reads(item.body, body_reads)
        self._verify_names(scope, body_reads,
                           f"{scope.prefix or 'top'} always block")
        if item.events is None:
            # always @(*) — sensitivity is the static read set.
            reads: set[str] = set()
            collect_stmt_reads(item.body, reads)
            design.processes.append(ProcSpec(
                kind="comb", scope=scope, body=item.body,
                reads=self._resolve_reads(scope, reads),
                label=f"{scope.prefix}always_comb"))
            return
        if all(ev.edge == "any" for ev in item.events) and item.events:
            # Explicit combinational sensitivity list: treat like @(*) over
            # the listed signals (plus static reads keeps latches stable).
            reads = {ev.signal.name for ev in item.events
                     if isinstance(ev.signal, ast.Identifier)}
            design.processes.append(ProcSpec(
                kind="comb", scope=scope, body=item.body,
                reads=self._resolve_reads(scope, reads),
                label=f"{scope.prefix}always_list"))
            return
        design.processes.append(ProcSpec(
            kind="always", scope=scope, body=item.body, events=item.events,
            label=f"{scope.prefix}always"))

    # ------------------------------------------------------------------
    def _elaborate_instance(self, design: Design, parent: Scope,
                            parent_module: ast.Module, inst: ast.Instance,
                            prefix: str, depth: int) -> None:
        if inst.module not in self.modules:
            raise ElaborationError(
                f"unknown module {inst.module!r} instantiated as {inst.name!r}")
        child_module = self.modules[inst.module]
        overrides = {name: eval_expr(expr, parent)
                     for name, expr in inst.parameters}
        child_prefix = f"{prefix}{inst.name}."

        # Pair connections with ports.
        pairs: list[tuple[ast.Port, Optional[ast.Expr]]] = []
        if inst.connections and inst.connections[0][0] is None:
            if any(name is not None for name, _ in inst.connections):
                raise ElaborationError(
                    f"instance {inst.name!r} mixes positional and named "
                    "connections")
            if len(inst.connections) > len(child_module.ports):
                raise ElaborationError(
                    f"instance {inst.name!r} has too many connections")
            for port, (_, expr) in zip(child_module.ports, inst.connections):
                pairs.append((port, expr))
        else:
            by_name = {p.name: p for p in child_module.ports}
            seen = set()
            for pname, expr in inst.connections:
                if pname is None:
                    raise ElaborationError(
                        f"instance {inst.name!r} mixes positional and named "
                        "connections")
                if pname not in by_name:
                    raise ElaborationError(
                        f"instance {inst.name!r}: module {inst.module!r} has "
                        f"no port {pname!r}")
                if pname in seen:
                    raise ElaborationError(
                        f"instance {inst.name!r}: port {pname!r} connected "
                        "twice")
                seen.add(pname)
                pairs.append((by_name[pname], expr))

        # Alias candidates: connections that are plain parent nets.  The
        # final width/signedness check happens at port declaration time
        # (port widths may depend on the instance's parameter overrides).
        alias_candidates: dict[str, Signal] = {}
        for port, expr in pairs:
            if isinstance(expr, ast.Identifier):
                parent_obj = parent.names.get(expr.name)
                if isinstance(parent_obj, Signal):
                    alias_candidates[port.name] = parent_obj

        child_scope = self._elaborate_module(
            design, child_module, child_prefix, overrides, depth + 1,
            port_aliases=alias_candidates)

        for port, expr in pairs:
            if expr is None:
                continue
            child_sig = child_scope.lookup(port.name)
            assert isinstance(child_sig, Signal)
            if child_sig is alias_candidates.get(port.name):
                continue  # aliased: the nets are the same object
            if port.direction == "input":
                self._bind_input(design, parent, child_sig, expr, inst.name)
            else:
                self._bind_output(design, parent, child_sig, expr, inst.name)

    def _bind_input(self, design: Design, parent: Scope, child_sig: Signal,
                    expr: ast.Expr, inst_name: str) -> None:
        reads: set[str] = set()
        collect_expr_reads(expr, reads)

        def update(sim, _expr=expr, _sig=child_sig, _scope=parent):
            value = eval_expr(_expr, _scope, _sig.width).resize(_sig.width)
            sim.set_signal(_sig, value)

        design.processes.append(ProcSpec(
            kind="comb", scope=parent, pyfunc=update,
            reads=self._resolve_reads(parent, reads),
            label=f"{parent.prefix}{inst_name}.{child_sig.name}<=bind",
            port_bind=("in", expr, child_sig)))

    def _bind_output(self, design: Design, parent: Scope, child_sig: Signal,
                     expr: ast.Expr, inst_name: str) -> None:
        if not isinstance(expr, ast.Identifier):
            raise ElaborationError(
                f"instance {inst_name!r}: output ports must connect to a "
                "simple net")
        parent_sig = parent.lookup(expr.name)
        if not isinstance(parent_sig, Signal):
            raise ElaborationError(
                f"instance {inst_name!r}: {expr.name!r} is not a net")

        def update(sim, _src=child_sig, _dst=parent_sig):
            sim.set_signal(_dst, _src.value.resize(_dst.width))

        design.processes.append(ProcSpec(
            kind="comb", scope=parent, pyfunc=update, reads=(child_sig,),
            label=f"{parent.prefix}{inst_name}.{child_sig.name}=>bind",
            port_bind=("out", child_sig, parent_sig)))


# Continuous assignments lower to a synthesized ``BlockingAssign``
# statement.  The compile layer keys its shared-program cache by body
# *identity*, so the synthesized statement is interned (by structural
# equality, AST nodes are frozen/hashable) — re-elaborating the same
# source, and even structurally identical assigns in different sources,
# reuse one statement object and therefore one compiled program.
_ASSIGN_INTERN_SIZE = 4096
_assign_interned: "OrderedDict[ast.ContinuousAssign, ast.BlockingAssign]" \
    = OrderedDict()
_assign_intern_lock = threading.Lock()


def _interned_assign(item: ast.ContinuousAssign) -> ast.BlockingAssign:
    with _assign_intern_lock:
        stmt = _assign_interned.get(item)
        if stmt is None:
            stmt = ast.BlockingAssign(item.target, item.value)
            while len(_assign_interned) >= _ASSIGN_INTERN_SIZE:
                _assign_interned.popitem(last=False)
            _assign_interned[item] = stmt
        else:
            _assign_interned.move_to_end(item)
        return stmt


def elaborate(source: ast.SourceFile, top: str) -> Design:
    """Elaborate ``source`` with ``top`` as the root module."""
    return Elaborator(source).elaborate(top)
