"""Lexers for the supported Verilog subset.

Two interchangeable implementations produce **identical** token streams
and identical :class:`VerilogSyntaxError` positions:

``master`` (the default)
    a table-driven single-pass tokenizer built around one precompiled
    *master regex*: alternation over trivia (whitespace, comments,
    compiler directives), identifiers/keywords, based and unsized
    literals, system identifiers, strings, and a longest-match
    punctuation branch generated from :data:`~repro.hdl.tokens.PUNCTUATIONS`.
    Line/column pairs are derived lazily from a newline-offset table
    (monotonic sweep, no per-character bookkeeping), identifier and
    keyword texts are interned, and literal ``(width, value, xmask,
    signed)`` payloads are decoded in the match handler.
``reference``
    the original character-at-a-time lexer, kept as the behavioural
    oracle.  The lexer differential fuzz suite drives both through
    random token soups and the full golden corpus the same way
    ``engine="interpret"`` anchors the simulator.

Selection mirrors the simulator's engine knob and resolves through the
active :class:`~repro.hdl.context.SimContext`: an explicit ``lexer=``
argument to :func:`tokenize` wins, then ``use_context(lexer=...)``,
then the env-seeded root context (``REPRO_LEXER``; invalid values warn
and fall back to ``master``).  :func:`set_default_lexer` remains as a
deprecated shim steering the root context.

:func:`tokenize_cached` adds a text-keyed token-stream cache (keyed by
the active lexer so the ``reference`` CI leg genuinely re-lexes):
sources whose *parse* failed, or whose parse-cache entry was evicted,
skip the lexer entirely on re-entry.
"""

from __future__ import annotations

import re
import warnings
from sys import intern

from ..util import LruCache

# The canonical lexer names live in repro.hdl.context (alongside
# SimContext); re-exported here (redundant-alias form) for the many
# callers that import them from the lexer.
from .context import LEXER_MASTER as LEXER_MASTER
from .context import LEXER_REFERENCE as LEXER_REFERENCE
from .context import LEXERS as LEXERS
from .context import (active_context, current_context, root_context,
                      set_root_context)
from .errors import VerilogSyntaxError
from .tokens import KEYWORDS, PUNCTUATIONS, Token, TokenKind


def set_default_lexer(lexer: str) -> None:
    """Deprecated: steer the root :class:`~repro.hdl.context.SimContext`.

    Prefer ``use_context(lexer=...)`` for request-scoped selection or
    ``set_root_context`` for process setup; this shim remains so legacy
    callers keep working.
    """
    if lexer not in LEXERS:
        raise ValueError(f"unknown lexer {lexer!r}; "
                         f"expected one of {LEXERS}")
    message = ("set_default_lexer() is deprecated; use "
               "repro.hdl.use_context(lexer=...) or set_root_context()")
    if active_context() is not None:
        # Mirror set_default_engine: flag root-steering that the
        # current activation will mask (and that a pin-and-restore
        # idiom would corrupt).
        message += (" — an activated SimContext is in effect and keeps "
                    "winning over this root-context change until it "
                    "exits")
    warnings.warn(message, DeprecationWarning, stacklevel=2)
    set_root_context(root_context().evolve(lexer=lexer))


def get_default_lexer() -> str:
    """The lexer the current context resolves to (legacy accessor)."""
    return current_context().lexer


_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")

_BASE_BITS = {"b": 1, "o": 3, "d": 0, "h": 4}
_HEX_DIGITS = "0123456789abcdef"


# ======================================================================
# Reference lexer (behavioural oracle)
# ======================================================================
class ReferenceLexer:
    """Character-at-a-time lexer: the behavioural oracle.

    Kept byte-for-byte compatible with the master tokenizer; every
    intentional behaviour change must land in both implementations and
    is pinned by the differential suite in
    ``tests/hdl/test_lexer_diff_fuzz.py``.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    def _error(self, message: str) -> VerilogSyntaxError:
        return VerilogSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise VerilogSyntaxError(
                        "unterminated block comment", start_line, 0)
            elif ch == "`":
                # Compiler directives (`timescale etc.) are skipped to end
                # of line; the subset does not use macros.
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)
        ch = self.source[self.pos]

        if ch in _IDENT_START:
            return self._lex_ident(line, column)
        if ch in _DIGITS or (ch == "'"
                             and self._peek(1).lower() in tuple("sbodh")):
            return self._lex_number(line, column)
        if ch == "$":
            return self._lex_system_ident(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        for punct in PUNCTUATIONS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_system_ident(self, line: int, column: int) -> Token:
        start = self.pos
        self._advance()  # $
        if self._peek() not in _IDENT_START:
            raise self._error("expected system task name after '$'")
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        return Token(TokenKind.SYSTEM_IDENT, self.source[start:self.pos],
                     line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        out = []
        while True:
            if self.pos >= len(self.source):
                raise VerilogSyntaxError("unterminated string", line, column)
            ch = self.source[self.pos]
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                self._advance()
                out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
            elif ch == "\n":
                raise VerilogSyntaxError("newline in string", line, column)
            else:
                out.append(ch)
                self._advance()
        text = "".join(out)
        return Token(TokenKind.STRING, text, line, column, value=text)

    # ------------------------------------------------------------------
    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        width: int | None = None

        if self.source[self.pos] in _DIGITS:
            digits = self._take_while(_DIGITS | {"_"})
            digits_end = self.pos
            self._skip_spaces_within_number()
            if self._peek() != "'":
                # Trailing spaces probed for a ``'`` are trivia, not part
                # of the literal's text.
                text = self.source[start:digits_end]
                value = int(digits.replace("_", ""))
                # Unsized decimal literals are 32-bit in Verilog.
                return Token(TokenKind.NUMBER, text, line, column,
                             value=(None, value & 0xFFFFFFFF, 0, True))
            width = int(digits.replace("_", ""))
            if width < 1:
                # Report at the start of the malformed literal (the width
                # digits), not at the quote the cursor happens to sit on.
                raise VerilogSyntaxError(
                    "literal width must be >= 1", line, column)

        # Based literal: '<s>?<base><digits>
        self._advance()  # '
        signed = False
        if self._peek().lower() == "s":
            signed = True
            self._advance()
        base_ch = self._peek().lower()
        if base_ch not in _BASE_BITS:
            raise self._error(f"invalid number base {base_ch!r}")
        self._advance()
        self._skip_spaces_within_number()

        if base_ch == "d":
            digits = self._take_while(_DIGITS | {"_"})
            if not digits.replace("_", ""):
                raise self._error("missing digits in decimal literal")
            val = int(digits.replace("_", ""))
            xmask = 0
            natural = max(val.bit_length(), 1)
        else:
            allowed = set(_HEX_DIGITS[:1 << _BASE_BITS[base_ch]] if base_ch != "h"
                          else _HEX_DIGITS)
            allowed |= {c.upper() for c in allowed}
            allowed |= set("xXzZ?_")
            digits = self._take_while(allowed)
            digits = digits.replace("_", "")
            if not digits:
                raise self._error("missing digits in based literal")
            bits_per = _BASE_BITS[base_ch]
            val = 0
            xmask = 0
            for d in digits:
                val <<= bits_per
                xmask <<= bits_per
                if d in "xXzZ?":
                    xmask |= (1 << bits_per) - 1
                else:
                    val |= int(d, 16)
            natural = len(digits) * bits_per

        if width is None:
            width = max(natural, 32)
        text = self.source[start:self.pos]
        return Token(TokenKind.NUMBER, text, line, column,
                     value=(width, val, xmask, signed))

    def _take_while(self, allowed) -> str:
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in allowed:
            self._advance()
        return self.source[start:self.pos]

    def _skip_spaces_within_number(self) -> None:
        # _peek() returns "" at EOF, and "" is a substring of " \t", so the
        # emptiness check is required to terminate at end of input.
        while self._peek() and self._peek() in " \t":
            self._advance()


#: Backwards-compatible alias: external code that instantiated ``Lexer``
#: keeps getting the (reference) class it was written against.
Lexer = ReferenceLexer


# ======================================================================
# Master-regex tokenizer
# ======================================================================
# One precompiled alternation; the scan loop dispatches on
# ``match.lastgroup``.  Every match is an uncaptured *trivia prefix*
# (whitespace, comments, directives — folded into the token match so a
# typical "space then token" pair costs one scan, not two) followed by
# exactly one token alternative.  Alternative order is load-bearing:
#
# - complete token forms before their error-recovery counterparts
#   (BASED before BADBASE, STRING before BADSTRING, SYSTEM before
#   BADSYSTEM, the unterminated-comment probe before the ``/`` punct);
# - the punctuation branch preserves PUNCTUATIONS order, which is
#   longest-match (same first-match semantics as the reference loop);
# - a final any-character branch turns into "unexpected character".
#
# The based-literal digit run is deliberately *generous* (full hex +
# 4-state class for every base): the handler then computes the longest
# valid prefix for the actual base and gives the rest back to the scan
# loop, reproducing the reference's take-while semantics (``4'b12``
# lexes as NUMBER(4'b1) NUMBER(2)).
# The prefix is *possessive* (``*+``): when no token follows (trailing
# trivia at EOF) the whole match must fail rather than backtrack and
# hand trivia characters to the any-character error branch.
_TRIVIA_PATTERN = r"(?:[ \t\r\n]+|//[^\n]*|`[^\n]*|/\*[\s\S]*?\*/)*+"

_MASTER_RE = re.compile(_TRIVIA_PATTERN + "(?:" + "|".join((
    r"(?P<IDENT>[A-Za-z_][A-Za-z0-9_$]*)",
    r"(?P<BASED>(?:[0-9][0-9_]*[ \t]*)?'[sS]?[bodhBODH][ \t]*"
    r"[0-9a-fA-FxXzZ?_]*)",
    r"(?P<BADBASE>[0-9][0-9_]*[ \t]*'[sS]?|'[sS])",
    r"(?P<DEC>[0-9][0-9_]*)",
    r'(?P<STRING>"(?:[^"\\\n]|\\[\s\S])*")',
    r'(?P<BADSTRING>"(?:[^"\\\n]|\\[\s\S])*)',
    r"(?P<SYSTEM>\$[A-Za-z_][A-Za-z0-9_$]*)",
    r"(?P<BADSYSTEM>\$)",
    r"(?P<BADCOMMENT>/\*)",
    rf"(?P<PUNCT>{'|'.join(re.escape(p) for p in PUNCTUATIONS)})",
    r"(?P<BAD>[\s\S])",
)) + ")")

#: Decomposes a BASED match into width / sign / base; the digit run is
#: whatever follows the match.
_BASED_PARTS_RE = re.compile(
    r"(?:(?P<w>[0-9][0-9_]*)[ \t]*)?'(?P<s>[sS]?)(?P<b>[bodhBODH])[ \t]*")

#: Longest-valid-prefix matchers for each base's digit alphabet
#: (mirrors the reference's per-base take-while sets).
_DIGIT_PREFIX_RE = {
    "b": re.compile(r"[01xXzZ?_]*"),
    "o": re.compile(r"[0-7xXzZ?_]*"),
    "h": re.compile(r"[0-9a-fA-FxXzZ?_]*"),
    "d": re.compile(r"[0-9_]*"),
}

_BADBASE_WIDTH_RE = re.compile(r"[0-9][0-9_]*")

_INT_BASE = {1: 2, 3: 8, 4: 16}
_FOURSTATE = frozenset("xXzZ?")

_ESCAPE_RE = re.compile(r"\\([\s\S])")
_ESCAPE_MAP = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}

#: Canonical string tables: every emitted keyword/punctuation text is
#: the *same object* as the table entry, and identifier texts are
#: interned, so downstream dict lookups (elaboration scopes, parser
#: ``is_punct`` chains) compare pointers before bytes.
_KEYWORD_CANON = {intern(word): intern(word) for word in KEYWORDS}
_PUNCT_CANON = {p: intern(p) for p in PUNCTUATIONS}


def _escape_sub(match: re.Match) -> str:
    ch = match.group(1)
    return _ESCAPE_MAP.get(ch, ch)


def _decode_based_digits(digits: str, bits_per: int) -> tuple[int, int]:
    """``(value, xmask)`` for an underscore-free based digit run."""
    if not _FOURSTATE.intersection(digits):
        return int(digits, _INT_BASE[bits_per]), 0
    val = 0
    xmask = 0
    step_mask = (1 << bits_per) - 1
    for d in digits:
        val <<= bits_per
        xmask <<= bits_per
        if d in _FOURSTATE:
            xmask |= step_mask
        else:
            val |= int(d, 16)
    return val, xmask


def _master_tokenize(source: str) -> list[Token]:
    """Single-pass scan of ``source`` with the master regex.

    The hot loop anchors one ``match`` per token at the running
    offset; a token may end *before* its match end when a based
    literal's generous digit run had an invalid-for-base suffix to give
    back (rare: only malformed-ish literals like ``4'b12`` take it).
    """
    tokens: list[Token] = []
    append = tokens.append
    scan = _MASTER_RE.match
    n = len(source)

    # Newline-offset table: token positions are derived lazily by a
    # monotonic sweep instead of per-character line/column bookkeeping.
    newlines: list[int] = []
    nl_append = newlines.append
    find = source.find
    i = find("\n")
    while i != -1:
        nl_append(i)
        i = find("\n", i + 1)
    nl_count = len(newlines)
    nl_i = 0            # newlines passed so far
    line_start = 0      # offset of the current line's first character

    number_kind = TokenKind.NUMBER
    punct_kind = TokenKind.PUNCT
    ident_kind = TokenKind.IDENT
    keyword_kind = TokenKind.KEYWORD
    keyword_canon = _KEYWORD_CANON
    punct_canon = _PUNCT_CANON
    # Per-run memo: repeated identifiers (every signal name appears many
    # times) resolve to their (kind, canonical text) pair with one dict
    # probe instead of a keyword lookup plus an intern call.
    ident_memo: dict[str, tuple[TokenKind, str]] = {}

    pos = 0
    while pos < n:
        m = scan(source, pos)
        if m is None:
            # Only trailing trivia remained (the possessive prefix
            # refuses to match without a token after it).
            break
        group = m.lastgroup
        idx = m.lastindex
        # The token alternative is the tail of the match, so its
        # span end is the match end.
        start, end = m.span(idx)
        # Advance the position sweep to this token's start.
        while nl_i < nl_count and newlines[nl_i] < start:
            line_start = newlines[nl_i] + 1
            nl_i += 1
        line = nl_i + 1
        column = start - line_start + 1

        if group == "IDENT":
            text = m.group(idx)
            cached = ident_memo.get(text)
            if cached is None:
                canon = keyword_canon.get(text)
                if canon is not None:
                    cached = (keyword_kind, canon)
                else:
                    cached = (ident_kind, intern(text))
                ident_memo[text] = cached
            append(Token(cached[0], cached[1], line, column))
        elif group == "PUNCT":
            append(Token(punct_kind, punct_canon[m.group(idx)], line,
                         column))
        elif group == "DEC":
            text = m.group(idx)
            value = int(text.replace("_", "")) & 0xFFFFFFFF
            # Unsized decimal literals are 32-bit in Verilog.
            append(Token(number_kind, text, line, column,
                         value=(None, value, 0, True)))
        elif group == "BASED":
            text = m.group(idx)
            parts = _BASED_PARTS_RE.match(text)
            w = parts.group("w")
            if w is not None:
                width = int(w.replace("_", ""))
                if width < 1:
                    raise VerilogSyntaxError(
                        "literal width must be >= 1", line, column)
            else:
                width = None
            base = parts.group("b").lower()
            digits_start = start + parts.end()
            raw = text[parts.end():]
            valid = _DIGIT_PREFIX_RE[base].match(raw).group()
            clean = valid.replace("_", "")
            if not clean:
                err_line, err_col = _position_at(
                    newlines, nl_i, line_start, digits_start + len(valid))
                raise VerilogSyntaxError(
                    "missing digits in decimal literal" if base == "d"
                    else "missing digits in based literal",
                    err_line, err_col)
            if base == "d":
                val = int(clean)
                xmask = 0
                natural = max(val.bit_length(), 1)
            else:
                bits_per = _BASE_BITS[base]
                val, xmask = _decode_based_digits(clean, bits_per)
                natural = len(clean) * bits_per
            if width is None:
                width = max(natural, 32)
            token_end = digits_start + len(valid)
            append(Token(number_kind, source[start:token_end], line,
                         column, value=(width, val, xmask,
                                        parts.group("s") != "")))
            end = token_end
        elif group == "STRING":
            body = source[start + 1:end - 1]
            if "\\" in body:
                body = _ESCAPE_RE.sub(_escape_sub, body)
            append(Token(TokenKind.STRING, body, line, column, value=body))
        elif group == "SYSTEM":
            append(Token(TokenKind.SYSTEM_IDENT, intern(m.group(idx)),
                         line, column))
        elif group == "BADBASE":
            text = m.group(idx)
            wm = _BADBASE_WIDTH_RE.match(text)
            if wm is not None and int(wm.group().replace("_", "")) < 1:
                raise VerilogSyntaxError(
                    "literal width must be >= 1", line, column)
            base_ch = source[end:end + 1].lower()
            err_line, err_col = _position_at(
                newlines, nl_i, line_start, end)
            raise VerilogSyntaxError(
                f"invalid number base {base_ch!r}", err_line, err_col)
        elif group == "BADSTRING":
            message = ("newline in string" if source[end:end + 1] == "\n"
                       else "unterminated string")
            raise VerilogSyntaxError(message, line, column)
        elif group == "BADSYSTEM":
            err_line, err_col = _position_at(
                newlines, nl_i, line_start, end)
            raise VerilogSyntaxError(
                "expected system task name after '$'", err_line, err_col)
        elif group == "BADCOMMENT":
            raise VerilogSyntaxError("unterminated block comment", line, 0)
        else:  # BAD
            raise VerilogSyntaxError(
                f"unexpected character {m.group(idx)!r}", line, column)
        pos = end

    while nl_i < nl_count and newlines[nl_i] < n:
        line_start = newlines[nl_i] + 1
        nl_i += 1
    append(Token(TokenKind.EOF, "", nl_i + 1, n - line_start + 1))
    return tokens


def _position_at(newlines: list[int], nl_i: int, line_start: int,
                 offset: int) -> tuple[int, int]:
    """(line, column) of ``offset``, resuming the sweep at ``nl_i``.

    Only used on error paths, where the offset of interest (end of a
    digit run, character after a match) may lie ahead of the token
    start the main sweep stopped at.
    """
    nl_count = len(newlines)
    while nl_i < nl_count and newlines[nl_i] < offset:
        line_start = newlines[nl_i] + 1
        nl_i += 1
    return nl_i + 1, offset - line_start + 1


# ======================================================================
# Public entry points
# ======================================================================
def tokenize(source: str, lexer: str | None = None) -> list[Token]:
    """Tokenize Verilog source text, raising :class:`VerilogSyntaxError`.

    ``lexer`` selects the implementation (``"master"`` /
    ``"reference"``); ``None`` resolves through the active
    :class:`~repro.hdl.context.SimContext`.
    """
    name = lexer or current_context().lexer
    if name == LEXER_REFERENCE:
        return ReferenceLexer(source).tokenize()
    if name != LEXER_MASTER:
        # Mirror set_default_lexer: a mistyped explicit name must not
        # silently fall back to the master implementation (it would turn
        # the differential suite into master-vs-master).
        raise ValueError(f"unknown lexer {name!r}; "
                         f"expected one of {LEXERS}")
    return _master_tokenize(source)


#: Token streams are picklable plain data, so this cache participates
#: in warm-start snapshots (see :mod:`repro.core.caches`).
_tokenize_cache = LruCache(capacity=512)


def tokenize_cached(source: str,
                    lexer: str | None = None) -> tuple[Token, ...]:
    """Text-keyed token-stream cache (context-resolved lexer).

    Token objects are immutable by convention, so sharing one stream is
    safe.  The main beneficiaries are sources that lex but fail to
    *parse* (the parse cache cannot memoise those, so every
    ``syntax_ok`` retry re-enters here) — hence the cache is kept much
    smaller than the parse cache: a successfully parsed source is
    served from its cached AST and never reads its token stream again.
    Lexing *errors* are not cached — a failing text re-raises on every
    call (the elaboration-failure cache in :mod:`repro.core.simulation`
    sits above this and absorbs those).  The key includes the resolved
    lexer so flipping the context's lexer never serves a stream
    produced by the other implementation.
    """
    key = (source, lexer or current_context().lexer)
    return _tokenize_cache.get_or_create(
        key, lambda: tuple(tokenize(key[0], key[1])))


def clear_tokenize_cache() -> None:
    _tokenize_cache.clear()


def tokenize_cache_stats() -> dict:
    return _tokenize_cache.stats()


def export_tokenize_cache() -> dict:
    """Snapshot payload: ``{(source, lexer): token_stream}``."""
    return _tokenize_cache.export()


def import_tokenize_cache(entries: dict) -> int:
    """Absorb a snapshot payload; returns the number of streams added."""
    return _tokenize_cache.import_entries(entries)
