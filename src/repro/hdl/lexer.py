"""Lexer for the supported Verilog subset."""

from __future__ import annotations

from .errors import VerilogSyntaxError
from .tokens import KEYWORDS, PUNCTUATIONS, Token, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")

_BASE_BITS = {"b": 1, "o": 3, "d": 0, "h": 4}
_HEX_DIGITS = "0123456789abcdef"


class Lexer:
    """Converts Verilog source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    def _error(self, message: str) -> VerilogSyntaxError:
        return VerilogSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise VerilogSyntaxError(
                        "unterminated block comment", start_line, 0)
            elif ch == "`":
                # Compiler directives (`timescale etc.) are skipped to end
                # of line; the subset does not use macros.
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)
        ch = self.source[self.pos]

        if ch in _IDENT_START:
            return self._lex_ident(line, column)
        if ch in _DIGITS or (ch == "'"
                             and self._peek(1).lower() in tuple("sbodh")):
            return self._lex_number(line, column)
        if ch == "$":
            return self._lex_system_ident(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        for punct in PUNCTUATIONS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_system_ident(self, line: int, column: int) -> Token:
        start = self.pos
        self._advance()  # $
        if self._peek() not in _IDENT_START:
            raise self._error("expected system task name after '$'")
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        return Token(TokenKind.SYSTEM_IDENT, self.source[start:self.pos],
                     line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        out = []
        while True:
            if self.pos >= len(self.source):
                raise VerilogSyntaxError("unterminated string", line, column)
            ch = self.source[self.pos]
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                self._advance()
                out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
            elif ch == "\n":
                raise VerilogSyntaxError("newline in string", line, column)
            else:
                out.append(ch)
                self._advance()
        text = "".join(out)
        return Token(TokenKind.STRING, text, line, column, value=text)

    # ------------------------------------------------------------------
    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        width: int | None = None

        if self.source[self.pos] in _DIGITS:
            digits = self._take_while(_DIGITS | {"_"})
            self._skip_spaces_within_number()
            if self._peek() != "'":
                text = self.source[start:self.pos]
                value = int(digits.replace("_", ""))
                # Unsized decimal literals are 32-bit in Verilog.
                return Token(TokenKind.NUMBER, text, line, column,
                             value=(None, value & 0xFFFFFFFF, 0, True))
            width = int(digits.replace("_", ""))
            if width < 1:
                raise self._error("literal width must be >= 1")

        # Based literal: '<s>?<base><digits>
        self._advance()  # '
        signed = False
        if self._peek().lower() == "s":
            signed = True
            self._advance()
        base_ch = self._peek().lower()
        if base_ch not in _BASE_BITS:
            raise self._error(f"invalid number base {base_ch!r}")
        self._advance()
        self._skip_spaces_within_number()

        if base_ch == "d":
            digits = self._take_while(_DIGITS | {"_"})
            if not digits.replace("_", ""):
                raise self._error("missing digits in decimal literal")
            val = int(digits.replace("_", ""))
            xmask = 0
            natural = max(val.bit_length(), 1)
        else:
            allowed = set(_HEX_DIGITS[:1 << _BASE_BITS[base_ch]] if base_ch != "h"
                          else _HEX_DIGITS)
            allowed |= {c.upper() for c in allowed}
            allowed |= set("xXzZ?_")
            digits = self._take_while(allowed)
            digits = digits.replace("_", "")
            if not digits:
                raise self._error("missing digits in based literal")
            bits_per = _BASE_BITS[base_ch]
            val = 0
            xmask = 0
            for d in digits:
                val <<= bits_per
                xmask <<= bits_per
                if d in "xXzZ?":
                    xmask |= (1 << bits_per) - 1
                else:
                    val |= int(d, 16)
            natural = len(digits) * bits_per

        if width is None:
            width = max(natural, 32)
        text = self.source[start:self.pos]
        return Token(TokenKind.NUMBER, text, line, column,
                     value=(width, val, xmask, signed))

    def _take_while(self, allowed) -> str:
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in allowed:
            self._advance()
        return self.source[start:self.pos]

    def _skip_spaces_within_number(self) -> None:
        # _peek() returns "" at EOF, and "" is a substring of " \t", so the
        # emptiness check is required to terminate at end of input.
        while self._peek() and self._peek() in " \t":
            self._advance()


def tokenize(source: str) -> list[Token]:
    """Tokenize Verilog source text, raising :class:`VerilogSyntaxError`."""
    return Lexer(source).tokenize()
