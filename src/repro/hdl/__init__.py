"""``repro.hdl`` — Verilog subset front end and event-driven simulator.

This package replaces the Icarus Verilog dependency of the original
CorrectBench system.  It provides:

- :func:`parse_source` / :func:`parse_module` — syntax checking and AST,
- :func:`compile_design` — parse + elaborate (the Eval0 "compiles" check),
- :func:`simulate` — run a design whose testbench calls ``$finish``,
- :class:`Logic` — 4-state fixed-width vectors,
- :mod:`repro.hdl.unparse` — AST back to source (used by the mutation
  engine).
"""

from .errors import (ElaborationError, HdlError, SimulationError,
                     SimulationLimit, VerilogSyntaxError)
from .logic import Logic
from .parser import parse_module, parse_source
from .simulator import (SimulationResult, Simulator, compile_design,
                        simulate)
from .unparse import unparse_expr, unparse_module, unparse_source

__all__ = [
    "ElaborationError",
    "HdlError",
    "Logic",
    "SimulationError",
    "SimulationLimit",
    "SimulationResult",
    "Simulator",
    "VerilogSyntaxError",
    "compile_design",
    "parse_module",
    "parse_source",
    "simulate",
    "unparse_expr",
    "unparse_module",
    "unparse_source",
]
