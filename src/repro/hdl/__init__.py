"""``repro.hdl`` — Verilog subset front end and event-driven simulator.

This package replaces the Icarus Verilog dependency of the original
CorrectBench system.  Execution is a four-stage pipeline::

    source text --parse--> AST --elaborate--> Design --compile--> closures --run--> SimulationResult

**parse** (:mod:`repro.hdl.lexer` + :mod:`repro.hdl.parser`)
    Lexes and parses the supported Verilog subset into immutable
    (frozen-dataclass) AST nodes.  Lexing runs through a single-pass
    *master-regex* tokenizer by default; the original
    character-at-a-time lexer is kept as a behavioural oracle
    (``use_context(lexer="reference")`` or the ``REPRO_LEXER`` root
    seed), and the lexer differential fuzz suite pins both to identical
    token streams and error positions.  :func:`parse_source_cached` is the
    text-keyed parse cache: identical source text is parsed once
    process-wide, and the shared AST is safe because nodes are
    immutable.  A token-stream cache sits underneath it, so sources
    that lex but fail to parse skip the lexer on re-entry.

**elaborate** (:mod:`repro.hdl.elaborate`)
    Resolves parameters, flattens the instance hierarchy and produces a
    :class:`Design`: flat ``Signal``/``Memory`` objects plus a list of
    ``ProcSpec`` processes.  Port connections to plain same-width parent
    nets are *aliased* (child and parent share one ``Signal``), so no
    binding process or extra delta hop exists for them; mismatched or
    expression-valued connections fall back to combinational binding
    processes.

**compile** (:mod:`repro.hdl.compile`)
    Lowers each process body once into *slot-indexed* Python closures:
    expressions through :mod:`repro.hdl.eval` (widths, signedness and
    constant indices resolved at compile time, no-op resizes elided),
    statement sequences into flat op lists whose generators only yield
    at real suspension points, format strings into pre-parsed segments.
    Closures reference runtime objects through integer slots into a
    per-elaboration ``frame`` tuple, so programs are scope-polymorphic:
    they are cached globally by AST identity + structural signature and
    merely re-*bound* (a cheap slot-table build) for each new
    elaboration — pairing one driver with N DUT designs compiles it
    once.  The bound program is then cached on the ``ProcSpec``, so
    re-simulating the same elaborated design skips binding too.

**run** (:mod:`repro.hdl.simulator`)
    A three-region (active / inactive / NBA) event scheduler per the
    simplified IEEE 1364 model.  Two engines share it: ``compiled``
    (default) executes the closure programs; ``interpret`` re-walks the
    AST per statement and is kept as the behavioural reference — the
    golden-equivalence test suite asserts identical results on the whole
    fixture corpus and every benchmark problem.

One layer up, :mod:`repro.core.simulation` adds design-level reuse: an
elaboration cache keyed by source text that stamps fresh runtime state
per run, and batched driver/testbench execution APIs.

Public surface:

- :func:`parse_source` / :func:`parse_module` — syntax checking and AST,
- :func:`compile_design` — parse + elaborate (the Eval0 "compiles" check),
- :func:`simulate` — run a design whose testbench calls ``$finish``,
- :class:`SimContext` / :func:`use_context` / :func:`current_context` —
  the request-scoped configuration API (engine, lexer, limits, jobs);
  resolution order is explicit argument > active context > env-seeded
  root context,
- :class:`Logic` — 4-state fixed-width vectors,
- :mod:`repro.hdl.unparse` — AST back to source (used by the mutation
  engine).
"""

from .context import (MUTANT_ENGINES, MUTANT_LOCKSTEP, MUTANT_PER_MUTANT,
                      SimContext, current_context, resolve_jobs,
                      root_context, set_root_context, use_context)
from .errors import (ElaborationError, HdlError, SimulationError,
                     SimulationLimit, VerilogSyntaxError)
from .lexer import (LEXER_MASTER, LEXER_REFERENCE, LEXERS,
                    get_default_lexer, set_default_lexer, tokenize,
                    tokenize_cached)
from .logic import Logic
from .parser import parse_module, parse_source, parse_source_cached
from .simulator import (ENGINE_COMPILED, ENGINE_INTERPRET, ENGINES,
                        SimulationResult, Simulator, compile_design,
                        simulate)
from .unparse import unparse_expr, unparse_module, unparse_source

__all__ = [
    "ENGINE_COMPILED",
    "ENGINE_INTERPRET",
    "ENGINES",
    "LEXER_MASTER",
    "LEXER_REFERENCE",
    "LEXERS",
    "MUTANT_ENGINES",
    "MUTANT_LOCKSTEP",
    "MUTANT_PER_MUTANT",
    "ElaborationError",
    "HdlError",
    "Logic",
    "SimContext",
    "SimulationError",
    "SimulationLimit",
    "SimulationResult",
    "Simulator",
    "VerilogSyntaxError",
    "compile_design",
    "current_context",
    "get_default_lexer",
    "parse_module",
    "parse_source",
    "parse_source_cached",
    "resolve_jobs",
    "root_context",
    "set_default_lexer",
    "set_root_context",
    "simulate",
    "use_context",
    "tokenize",
    "tokenize_cached",
    "unparse_expr",
    "unparse_module",
    "unparse_source",
]
