"""Expression evaluation with Verilog width/sign semantics.

The evaluator implements the pragmatic core of IEEE 1364 expression
semantics: context-determined widths for arithmetic/bitwise operators,
self-determined widths for shifts amounts, concatenations and comparisons,
signedness propagation (an expression is signed only when all of its
operands are signed), and pessimistic X-propagation via :class:`Logic`.

Two execution strategies share these semantics:

- :func:`eval_expr` walks the AST on every evaluation (the interpreter);
- :func:`compile_expr` lowers an expression *once* into a tree of Python
  closures with all name lookups, widths, signedness flags and constant
  indices resolved at compile time.  Compiled closures are memoised per
  scope (the compiled-expression cache), so shared subtrees and repeated
  compilations of the same node are free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import ast
from .errors import ElaborationError, HdlError, SimulationError
from .logic import Logic

if TYPE_CHECKING:  # pragma: no cover
    from .elaborate import Scope


# ----------------------------------------------------------------------
# Width and sign inference
# ----------------------------------------------------------------------
_CTX_ARITH = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "^~", "~^"})
_COMPARE = frozenset({"==", "!=", "===", "!==", "<", "<=", ">", ">="})
_LOGICAL = frozenset({"&&", "||"})
_SHIFTS = frozenset({"<<", ">>", "<<<", ">>>"})


def width_of(expr: ast.Expr, scope: "Scope") -> int:
    """Self-determined bit width of an expression."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.width is not None else 32
    if isinstance(expr, ast.Identifier):
        return scope.width_of_name(expr.name)
    if isinstance(expr, ast.StringLit):
        return max(8 * len(expr.text), 8)
    if isinstance(expr, ast.Unary):
        if expr.op in ("!", "&", "~&", "|", "~|", "^", "~^", "^~"):
            return 1
        return width_of(expr.operand, scope)
    if isinstance(expr, ast.Binary):
        if expr.op in _COMPARE or expr.op in _LOGICAL:
            return 1
        if expr.op in _SHIFTS or expr.op == "**":
            return width_of(expr.left, scope)
        return max(width_of(expr.left, scope), width_of(expr.right, scope))
    if isinstance(expr, ast.Ternary):
        return max(width_of(expr.then, scope), width_of(expr.other, scope))
    if isinstance(expr, ast.Concat):
        return sum(width_of(p, scope) for p in expr.parts)
    if isinstance(expr, ast.Replicate):
        count = scope.const_int(expr.count)
        return count * width_of(expr.value, scope)
    if isinstance(expr, ast.Index):
        if scope.is_memory(expr.base):
            return scope.memory_width(expr.base)
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = scope.const_int(expr.msb)
        lsb = scope.const_int(expr.lsb)
        if msb < lsb:
            raise ElaborationError(
                f"reversed part select [{msb}:{lsb}] on {expr.base}")
        return msb - lsb + 1
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned"):
            return width_of(expr.args[0], scope)
        if expr.name == "$time":
            return 64
        if expr.name == "$clog2":
            return 32
        return 32
    raise ElaborationError(f"cannot size expression {expr!r}")


def signed_of(expr: ast.Expr, scope: "Scope") -> bool:
    """True when the expression is signed under Verilog propagation rules."""
    if isinstance(expr, ast.Number):
        return expr.signed
    if isinstance(expr, ast.Identifier):
        return scope.signed_of_name(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op in ("+", "-", "~"):
            return signed_of(expr.operand, scope)
        return False
    if isinstance(expr, ast.Binary):
        if expr.op in _CTX_ARITH:
            return signed_of(expr.left, scope) and signed_of(expr.right, scope)
        if expr.op in _SHIFTS or expr.op == "**":
            return signed_of(expr.left, scope)
        return False
    if isinstance(expr, ast.Ternary):
        return signed_of(expr.then, scope) and signed_of(expr.other, scope)
    if isinstance(expr, ast.SystemCall):
        if expr.name == "$signed":
            return True
        return False
    return False


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def eval_expr(expr: ast.Expr, scope: "Scope",
              ctx_width: int | None = None) -> Logic:
    """Evaluate ``expr`` in ``scope``.

    ``ctx_width`` is the assignment/expression context width used to widen
    context-determined operands (e.g. so ``{cout, s} = a + b`` keeps the
    carry bit).
    """
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else 32
        return Logic(width, expr.val, expr.xmask)

    if isinstance(expr, ast.Identifier):
        return scope.read_name(expr.name)

    if isinstance(expr, ast.StringLit):
        data = expr.text.encode("latin-1", "replace")
        val = int.from_bytes(data, "big") if data else 0
        return Logic(max(8 * len(data), 8), val, 0)

    if isinstance(expr, ast.Unary):
        return _eval_unary(expr, scope, ctx_width)

    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, scope, ctx_width)

    if isinstance(expr, ast.Ternary):
        w = max(width_of(expr, scope), ctx_width or 0)
        cond = eval_expr(expr.cond, scope).truth()
        if cond is True:
            return eval_expr(expr.then, scope, w).resize(
                w, signed_of(expr.then, scope))
        if cond is False:
            return eval_expr(expr.other, scope, w).resize(
                w, signed_of(expr.other, scope))
        # Unknown select: bitwise merge; agreeing bits survive.
        a = eval_expr(expr.then, scope, w).resize(w, signed_of(expr.then, scope))
        b = eval_expr(expr.other, scope, w).resize(w, signed_of(expr.other, scope))
        agree = ~(a.val ^ b.val) & ~a.xmask & ~b.xmask
        return Logic(w, a.val & agree, ((1 << w) - 1) & ~agree)

    if isinstance(expr, ast.Concat):
        return Logic.concat([eval_expr(p, scope) for p in expr.parts])

    if isinstance(expr, ast.Replicate):
        count = scope.const_int(expr.count)
        if count < 1:
            raise SimulationError(f"replication count {count} must be >= 1")
        return eval_expr(expr.value, scope).replicate(count)

    if isinstance(expr, ast.Index):
        index = eval_expr(expr.index, scope)
        if scope.is_memory(expr.base):
            addr = index.to_uint()
            if addr is None:
                return Logic.unknown(scope.memory_width(expr.base))
            return scope.read_memory(expr.base, addr)
        base = scope.read_name(expr.base)
        idx = index.to_uint()
        if idx is None:
            return Logic.unknown(1)
        return base.bit(idx)

    if isinstance(expr, ast.PartSelect):
        base = scope.read_name(expr.base)
        msb = scope.const_int(expr.msb)
        lsb = scope.const_int(expr.lsb)
        return base.part(msb, lsb)

    if isinstance(expr, ast.SystemCall):
        return _eval_system_call(expr, scope)

    raise SimulationError(f"cannot evaluate expression {expr!r}")


def _eval_unary(expr: ast.Unary, scope: "Scope",
                ctx_width: int | None) -> Logic:
    op = expr.op
    if op == "!":
        return eval_expr(expr.operand, scope).lnot()
    if op == "&":
        return eval_expr(expr.operand, scope).reduce_and()
    if op == "~&":
        return eval_expr(expr.operand, scope).reduce_nand()
    if op == "|":
        return eval_expr(expr.operand, scope).reduce_or()
    if op == "~|":
        return eval_expr(expr.operand, scope).reduce_nor()
    if op in ("^",):
        return eval_expr(expr.operand, scope).reduce_xor()
    if op in ("~^", "^~"):
        return eval_expr(expr.operand, scope).reduce_xnor()

    w = max(width_of(expr.operand, scope), ctx_width or 0)
    signed = signed_of(expr.operand, scope)
    value = eval_expr(expr.operand, scope, w).resize(w, signed)
    if op == "~":
        return value.bnot()
    if op == "-":
        return value.neg(w)
    if op == "+":
        return value
    raise SimulationError(f"unsupported unary operator {op!r}")


def _eval_binary(expr: ast.Binary, scope: "Scope",
                 ctx_width: int | None) -> Logic:
    op = expr.op

    if op in _LOGICAL:
        left = eval_expr(expr.left, scope)
        right = eval_expr(expr.right, scope)
        return left.land(right) if op == "&&" else left.lor(right)

    if op in _COMPARE:
        w = max(width_of(expr.left, scope), width_of(expr.right, scope))
        signed = (signed_of(expr.left, scope)
                  and signed_of(expr.right, scope))
        left = eval_expr(expr.left, scope, w).resize(w, signed)
        right = eval_expr(expr.right, scope, w).resize(w, signed)
        if op == "==":
            return left.eq(right)
        if op == "!=":
            return left.neq(right)
        if op == "===":
            return left.case_eq(right)
        if op == "!==":
            return left.case_neq(right)
        if op == "<":
            return left.lt(right, signed)
        if op == "<=":
            return left.le(right, signed)
        if op == ">":
            return left.gt(right, signed)
        return left.ge(right, signed)

    if op in _SHIFTS:
        w = max(width_of(expr.left, scope), ctx_width or 0)
        signed = signed_of(expr.left, scope)
        left = eval_expr(expr.left, scope, w).resize(w, signed)
        amount = eval_expr(expr.right, scope)
        if op == "<<" or op == "<<<":
            return left.shl(amount, w)
        if op == ">>":
            return left.shr(amount, w)
        # Arithmetic right shift only fills sign when the value is signed.
        return left.ashr(amount, w) if signed else left.shr(amount, w)

    # Context-determined arithmetic / bitwise operators.
    w = max(width_of(expr.left, scope), width_of(expr.right, scope),
            ctx_width or 0)
    l_signed = signed_of(expr.left, scope)
    r_signed = signed_of(expr.right, scope)
    both_signed = l_signed and r_signed
    left = eval_expr(expr.left, scope, w).resize(w, both_signed)
    right = eval_expr(expr.right, scope, w).resize(w, both_signed)
    if op == "+":
        return left.add(right, w)
    if op == "-":
        return left.sub(right, w)
    if op == "*":
        return left.mul(right, w)
    if op == "/":
        return left.div(right, w, both_signed)
    if op == "%":
        return left.mod(right, w, both_signed)
    if op == "&":
        return left.band(right)
    if op == "|":
        return left.bor(right)
    if op == "^":
        return left.bxor(right)
    if op in ("^~", "~^"):
        return left.bxnor(right)
    if op == "**":
        return left.pow(right, w)
    raise SimulationError(f"unsupported binary operator {op!r}")


def _eval_system_call(expr: ast.SystemCall, scope: "Scope") -> Logic:
    name = expr.name
    if name == "$time":
        return Logic.from_int(scope.sim_time(), 64)
    if name == "$signed":
        return eval_expr(expr.args[0], scope)
    if name == "$unsigned":
        return eval_expr(expr.args[0], scope)
    if name in ("$random", "$urandom"):
        return Logic.from_int(scope.sim_random(), 32)
    if name == "$clog2":
        value = eval_expr(expr.args[0], scope).to_uint()
        if value is None:
            return Logic.unknown(32)
        return Logic.from_int(max(value - 1, 0).bit_length(), 32)
    if name == "$fopen":
        filename = expr.args[0]
        if not isinstance(filename, ast.StringLit):
            raise SimulationError("$fopen expects a string literal")
        return Logic.from_int(scope.sim_fopen(filename.text), 32)
    raise SimulationError(f"unsupported system function {name!r}")


# ----------------------------------------------------------------------
# Case-label matching (shared by the interpreter and compiled engine)
# ----------------------------------------------------------------------
def case_match(kind: str, subject: Logic, label: Logic) -> bool:
    """``case``/``casez``/``casex`` label comparison semantics."""
    w = max(subject.width, label.width)
    s, l = subject.resize(w), label.resize(w)
    if kind == "case":
        return s.val == l.val and s.xmask == l.xmask
    wildcard = l.xmask
    if kind == "casex":
        wildcard |= s.xmask
    elif s.xmask & ~wildcard:
        return False  # casez: unknown subject bits never match
    mask = ((1 << w) - 1) & ~wildcard
    return (s.val & mask) == (l.val & mask)


# ----------------------------------------------------------------------
# Expression compilation (closure trees + per-scope cache)
# ----------------------------------------------------------------------
def compile_expr(expr: ast.Expr, scope: "Scope",
                 ctx_width: int | None = None):
    """Compile ``expr`` to a zero-argument closure returning :class:`Logic`.

    The closure is the compiled counterpart of
    ``eval_expr(expr, scope, ctx_width)``: widths, signedness, name
    bindings and elaboration-time constants are resolved now, so each
    invocation only performs :class:`Logic` arithmetic.  Results are
    memoised in a per-scope cache keyed by ``(id(expr), ctx_width)`` —
    valid because AST nodes are retained by the design's process specs
    for as long as the scope is alive.
    """
    cache = scope.__dict__.setdefault("_expr_cache", {})
    key = (id(expr), ctx_width)
    fn = cache.get(key)
    if fn is None:
        fn = _compile_expr(expr, scope, ctx_width)
        cache[key] = fn
    return fn


_Signal = None  # resolved lazily; eval <-> elaborate import cycle


def _signal_type():
    global _Signal
    if _Signal is None:
        from .elaborate import Signal
        _Signal = Signal
    return _Signal


def _read_closure(name: str, scope: "Scope"):
    """Compiled counterpart of ``scope.read_name``."""
    obj = scope.lookup(name)
    if isinstance(obj, Logic):
        return lambda: obj
    if isinstance(obj, _signal_type()):
        return lambda: obj.value
    raise ElaborationError(f"cannot read {name!r} as a value")


_REDUCTIONS = frozenset({"!", "&", "~&", "|", "~|", "^", "~^", "^~"})


def _result_width(expr: ast.Expr, scope: "Scope",
                  ctx_width: int | None) -> int:
    """Static width of ``compile_expr(expr, scope, ctx_width)()``.

    Mirrors what :func:`eval_expr` returns for each node kind: operators
    with context-determined operands widen to ``max(self, ctx)``, all
    others are self-determined.  Used to elide no-op ``resize`` calls at
    compile time.
    """
    if isinstance(expr, ast.Unary):
        if expr.op in _REDUCTIONS:
            return 1
        return max(width_of(expr.operand, scope), ctx_width or 0)
    if isinstance(expr, ast.Binary):
        op = expr.op
        if op in _LOGICAL or op in _COMPARE:
            return 1
        if op in _SHIFTS:
            return max(width_of(expr.left, scope), ctx_width or 0)
        return max(width_of(expr.left, scope),
                   width_of(expr.right, scope), ctx_width or 0)
    if isinstance(expr, ast.Ternary):
        return max(width_of(expr, scope), ctx_width or 0)
    return width_of(expr, scope)


def compile_coerced(expr: ast.Expr, scope: "Scope", width: int,
                    signed: bool):
    """Compile ``eval_expr(expr, scope, width).resize(width, signed)``.

    The trailing resize is elided when the compiled closure is statically
    known to produce ``width``-bit values already (``resize`` to the same
    width is the identity).
    """
    fn = compile_expr(expr, scope, width)
    if _result_width(expr, scope, width) == width:
        return fn
    return lambda: fn().resize(width, signed)


def compile_expr_deferred(expr: ast.Expr, scope: "Scope",
                          ctx_width: int | None = None):
    """Like :func:`compile_expr`, but a compile-time :class:`HdlError`
    becomes a closure that re-raises when *evaluated*.

    Used where the interpreter evaluates an expression conditionally
    (case labels, unselected ternary branches): the compiled engine must
    not fail on a branch the interpreter would never reach.
    """
    try:
        return compile_expr(expr, scope, ctx_width)
    except HdlError as exc:
        def raise_deferred(_exc=exc):
            raise _exc
        return raise_deferred


def _coerced_deferred(expr: ast.Expr, scope: "Scope", width: int,
                      signed: bool):
    try:
        return compile_coerced(expr, scope, width, signed)
    except HdlError as exc:
        def raise_deferred(_exc=exc):
            raise _exc
        return raise_deferred


def _compile_expr(expr: ast.Expr, scope: "Scope", ctx_width: int | None):
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else 32
        const = Logic(width, expr.val, expr.xmask)
        return lambda: const

    if isinstance(expr, ast.Identifier):
        return _read_closure(expr.name, scope)

    if isinstance(expr, ast.StringLit):
        data = expr.text.encode("latin-1", "replace")
        val = int.from_bytes(data, "big") if data else 0
        const = Logic(max(8 * len(data), 8), val, 0)
        return lambda: const

    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, scope, ctx_width)

    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, scope, ctx_width)

    if isinstance(expr, ast.Ternary):
        w = max(width_of(expr, scope), ctx_width or 0)
        cond = compile_expr(expr.cond, scope)
        # Branches compile deferred: the interpreter only evaluates the
        # selected branch, so a broken unselected branch must not fail
        # until (unless) it is actually chosen.
        then = _coerced_deferred(expr.then, scope, w,
                                 signed_of(expr.then, scope))
        other = _coerced_deferred(expr.other, scope, w,
                                  signed_of(expr.other, scope))
        full = (1 << w) - 1

        def ternary():
            sel = cond().truth()
            if sel is True:
                return then()
            if sel is False:
                return other()
            a = then()
            b = other()
            agree = ~(a.val ^ b.val) & ~a.xmask & ~b.xmask
            return Logic(w, a.val & agree, full & ~agree)
        return ternary

    if isinstance(expr, ast.Concat):
        fns = tuple(compile_expr(p, scope) for p in expr.parts)
        return lambda: Logic.concat([f() for f in fns])

    if isinstance(expr, ast.Replicate):
        count = scope.const_int(expr.count)
        if count < 1:
            raise SimulationError(f"replication count {count} must be >= 1")
        value = compile_expr(expr.value, scope)
        return lambda: value().replicate(count)

    if isinstance(expr, ast.Index):
        index = compile_expr(expr.index, scope)
        if scope.is_memory(expr.base):
            mem = scope.lookup(expr.base)
            unknown = Logic.unknown(mem.width)

            def read_word():
                addr = index().to_uint()
                if addr is None:
                    return unknown
                return mem.read(addr)
            return read_word
        base = _read_closure(expr.base, scope)
        unknown_bit = Logic.unknown(1)

        def read_bit():
            value = base()
            idx = index().to_uint()
            if idx is None:
                return unknown_bit
            return value.bit(idx)
        return read_bit

    if isinstance(expr, ast.PartSelect):
        base = _read_closure(expr.base, scope)
        msb = scope.const_int(expr.msb)
        lsb = scope.const_int(expr.lsb)
        return lambda: base().part(msb, lsb)

    if isinstance(expr, ast.SystemCall):
        return _compile_system_call(expr, scope)

    raise SimulationError(f"cannot evaluate expression {expr!r}")


def _compile_unary(expr: ast.Unary, scope: "Scope", ctx_width: int | None):
    op = expr.op
    if op in ("!", "&", "~&", "|", "~|", "^", "~^", "^~"):
        operand = compile_expr(expr.operand, scope)
        method = {
            "!": Logic.lnot, "&": Logic.reduce_and, "~&": Logic.reduce_nand,
            "|": Logic.reduce_or, "~|": Logic.reduce_nor,
            "^": Logic.reduce_xor, "~^": Logic.reduce_xnor,
            "^~": Logic.reduce_xnor,
        }[op]
        return lambda: method(operand())

    w = max(width_of(expr.operand, scope), ctx_width or 0)
    signed = signed_of(expr.operand, scope)
    operand = compile_coerced(expr.operand, scope, w, signed)
    if op == "~":
        return lambda: operand().bnot()
    if op == "-":
        return lambda: operand().neg(w)
    if op == "+":
        return operand
    raise SimulationError(f"unsupported unary operator {op!r}")


def _compile_binary(expr: ast.Binary, scope: "Scope", ctx_width: int | None):
    op = expr.op

    if op in _LOGICAL:
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        if op == "&&":
            return lambda: left().land(right())
        return lambda: left().lor(right())

    if op in _COMPARE:
        w = max(width_of(expr.left, scope), width_of(expr.right, scope))
        signed = (signed_of(expr.left, scope)
                  and signed_of(expr.right, scope))
        left = compile_coerced(expr.left, scope, w, signed)
        right = compile_coerced(expr.right, scope, w, signed)
        if op == "==":
            return lambda: left().eq(right())
        if op == "!=":
            return lambda: left().neq(right())
        if op == "===":
            return lambda: left().case_eq(right())
        if op == "!==":
            return lambda: left().case_neq(right())
        method = {"<": Logic.lt, "<=": Logic.le,
                  ">": Logic.gt, ">=": Logic.ge}[op]
        return lambda: method(left(), right(), signed)

    if op in _SHIFTS:
        w = max(width_of(expr.left, scope), ctx_width or 0)
        signed = signed_of(expr.left, scope)
        left = compile_coerced(expr.left, scope, w, signed)
        amount = compile_expr(expr.right, scope)
        if op in ("<<", "<<<"):
            return lambda: left().shl(amount(), w)
        if op == ">>":
            return lambda: left().shr(amount(), w)
        if signed:
            return lambda: left().ashr(amount(), w)
        return lambda: left().shr(amount(), w)

    # Context-determined arithmetic / bitwise operators.
    w = max(width_of(expr.left, scope), width_of(expr.right, scope),
            ctx_width or 0)
    both = (signed_of(expr.left, scope) and signed_of(expr.right, scope))
    left = compile_coerced(expr.left, scope, w, both)
    right = compile_coerced(expr.right, scope, w, both)
    if op == "+":
        return lambda: left().add(right(), w)
    if op == "-":
        return lambda: left().sub(right(), w)
    if op == "*":
        return lambda: left().mul(right(), w)
    if op == "/":
        return lambda: left().div(right(), w, both)
    if op == "%":
        return lambda: left().mod(right(), w, both)
    if op == "&":
        return lambda: left().band(right())
    if op == "|":
        return lambda: left().bor(right())
    if op == "^":
        return lambda: left().bxor(right())
    if op in ("^~", "~^"):
        return lambda: left().bxnor(right())
    if op == "**":
        return lambda: left().pow(right(), w)
    raise SimulationError(f"unsupported binary operator {op!r}")


def _compile_system_call(expr: ast.SystemCall, scope: "Scope"):
    name = expr.name
    if name == "$time":
        return lambda: Logic.from_int(scope.sim_time(), 64)
    if name in ("$signed", "$unsigned"):
        return compile_expr(expr.args[0], scope)
    if name in ("$random", "$urandom"):
        return lambda: Logic.from_int(scope.sim_random(), 32)
    if name == "$clog2":
        arg = compile_expr(expr.args[0], scope)
        unknown = Logic.unknown(32)

        def clog2():
            value = arg().to_uint()
            if value is None:
                return unknown
            return Logic.from_int(max(value - 1, 0).bit_length(), 32)
        return clog2
    if name == "$fopen":
        filename = expr.args[0]
        if not isinstance(filename, ast.StringLit):
            raise SimulationError("$fopen expects a string literal")
        text = filename.text
        return lambda: Logic.from_int(scope.sim_fopen(text), 32)
    raise SimulationError(f"unsupported system function {name!r}")


# ----------------------------------------------------------------------
# Static read-set collection (for @(*) and continuous assignments)
# ----------------------------------------------------------------------
def collect_expr_reads(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.Identifier):
        out.add(expr.name)
    elif isinstance(expr, (ast.Number, ast.StringLit)):
        pass
    elif isinstance(expr, ast.Unary):
        collect_expr_reads(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        collect_expr_reads(expr.left, out)
        collect_expr_reads(expr.right, out)
    elif isinstance(expr, ast.Ternary):
        collect_expr_reads(expr.cond, out)
        collect_expr_reads(expr.then, out)
        collect_expr_reads(expr.other, out)
    elif isinstance(expr, ast.Concat):
        for p in expr.parts:
            collect_expr_reads(p, out)
    elif isinstance(expr, ast.Replicate):
        collect_expr_reads(expr.count, out)
        collect_expr_reads(expr.value, out)
    elif isinstance(expr, ast.Index):
        out.add(expr.base)
        collect_expr_reads(expr.index, out)
    elif isinstance(expr, ast.PartSelect):
        out.add(expr.base)
        collect_expr_reads(expr.msb, out)
        collect_expr_reads(expr.lsb, out)
    elif isinstance(expr, ast.SystemCall):
        for a in expr.args:
            collect_expr_reads(a, out)


def _collect_lvalue_reads(lv: ast.LValue, out: set[str]) -> None:
    if isinstance(lv, ast.LvIndex):
        collect_expr_reads(lv.index, out)
    elif isinstance(lv, ast.LvPart):
        collect_expr_reads(lv.msb, out)
        collect_expr_reads(lv.lsb, out)
    elif isinstance(lv, ast.LvConcat):
        for p in lv.parts:
            _collect_lvalue_reads(p, out)


def collect_stmt_reads(stmt: ast.Stmt, out: set[str]) -> None:
    """Read set of a statement for ``always @(*)`` sensitivity."""
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            collect_stmt_reads(s, out)
    elif isinstance(stmt, ast.If):
        collect_expr_reads(stmt.cond, out)
        collect_stmt_reads(stmt.then, out)
        if stmt.other is not None:
            collect_stmt_reads(stmt.other, out)
    elif isinstance(stmt, ast.Case):
        collect_expr_reads(stmt.subject, out)
        for item in stmt.items:
            for label in item.labels:
                collect_expr_reads(label, out)
            collect_stmt_reads(item.body, out)
    elif isinstance(stmt, ast.For):
        collect_expr_reads(stmt.init.value, out)
        collect_expr_reads(stmt.cond, out)
        collect_expr_reads(stmt.step.value, out)
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, (ast.While, ast.Repeat)):
        collect_expr_reads(stmt.cond if isinstance(stmt, ast.While)
                           else stmt.count, out)
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, ast.Forever):
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
        collect_expr_reads(stmt.value, out)
        _collect_lvalue_reads(stmt.target, out)
    elif isinstance(stmt, ast.DelayStmt):
        if stmt.stmt is not None:
            collect_stmt_reads(stmt.stmt, out)
    elif isinstance(stmt, ast.EventControl):
        if stmt.stmt is not None:
            collect_stmt_reads(stmt.stmt, out)
    elif isinstance(stmt, ast.SysTaskCall):
        for a in stmt.args:
            collect_expr_reads(a, out)
