"""Expression evaluation with Verilog width/sign semantics.

The evaluator implements the pragmatic core of IEEE 1364 expression
semantics: context-determined widths for arithmetic/bitwise operators,
self-determined widths for shifts amounts, concatenations and comparisons,
signedness propagation (an expression is signed only when all of its
operands are signed), and pessimistic X-propagation via :class:`Logic`.

Two execution strategies share these semantics:

- :func:`eval_expr` walks the AST on every evaluation (the interpreter);
- :func:`compile_expr` lowers an expression *once* into a tree of Python
  closures with all widths, signedness flags and constant indices
  resolved at compile time.  Runtime objects (signals, memories) are
  referenced through integer *slots* into a per-elaboration ``frame``
  tuple, allocated by a :class:`LowerCtx`, so the compiled closure tree
  is scope-polymorphic: one program is shared by every elaboration whose
  structural signature matches (see :mod:`repro.hdl.compile`).  Closures
  are memoised per lowering context, so shared subtrees and repeated
  compilations of the same node are free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import ast
from .errors import ElaborationError, HdlError, SimulationError
from .logic import Logic

if TYPE_CHECKING:  # pragma: no cover
    from .elaborate import Scope


# ----------------------------------------------------------------------
# Width and sign inference
# ----------------------------------------------------------------------
_CTX_ARITH = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "^~", "~^"})
_COMPARE = frozenset({"==", "!=", "===", "!==", "<", "<=", ">", ">="})
_LOGICAL = frozenset({"&&", "||"})
_SHIFTS = frozenset({"<<", ">>", "<<<", ">>>"})


def width_of(expr: ast.Expr, scope: "Scope") -> int:
    """Self-determined bit width of an expression."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.width is not None else 32
    if isinstance(expr, ast.Identifier):
        return scope.width_of_name(expr.name)
    if isinstance(expr, ast.StringLit):
        return max(8 * len(expr.text), 8)
    if isinstance(expr, ast.Unary):
        if expr.op in ("!", "&", "~&", "|", "~|", "^", "~^", "^~"):
            return 1
        return width_of(expr.operand, scope)
    if isinstance(expr, ast.Binary):
        if expr.op in _COMPARE or expr.op in _LOGICAL:
            return 1
        if expr.op in _SHIFTS or expr.op == "**":
            return width_of(expr.left, scope)
        return max(width_of(expr.left, scope), width_of(expr.right, scope))
    if isinstance(expr, ast.Ternary):
        return max(width_of(expr.then, scope), width_of(expr.other, scope))
    if isinstance(expr, ast.Concat):
        return sum(width_of(p, scope) for p in expr.parts)
    if isinstance(expr, ast.Replicate):
        count = scope.const_int(expr.count)
        return count * width_of(expr.value, scope)
    if isinstance(expr, ast.Index):
        if scope.is_memory(expr.base):
            return scope.memory_width(expr.base)
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = scope.const_int(expr.msb)
        lsb = scope.const_int(expr.lsb)
        if msb < lsb:
            raise ElaborationError(
                f"reversed part select [{msb}:{lsb}] on {expr.base}")
        return msb - lsb + 1
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned"):
            return width_of(expr.args[0], scope)
        if expr.name == "$time":
            return 64
        if expr.name == "$clog2":
            return 32
        return 32
    raise ElaborationError(f"cannot size expression {expr!r}")


def signed_of(expr: ast.Expr, scope: "Scope") -> bool:
    """True when the expression is signed under Verilog propagation rules."""
    if isinstance(expr, ast.Number):
        return expr.signed
    if isinstance(expr, ast.Identifier):
        return scope.signed_of_name(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op in ("+", "-", "~"):
            return signed_of(expr.operand, scope)
        return False
    if isinstance(expr, ast.Binary):
        if expr.op in _CTX_ARITH:
            return signed_of(expr.left, scope) and signed_of(expr.right, scope)
        if expr.op in _SHIFTS or expr.op == "**":
            return signed_of(expr.left, scope)
        return False
    if isinstance(expr, ast.Ternary):
        return signed_of(expr.then, scope) and signed_of(expr.other, scope)
    if isinstance(expr, ast.SystemCall):
        if expr.name == "$signed":
            return True
        return False
    return False


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def eval_expr(expr: ast.Expr, scope: "Scope",
              ctx_width: int | None = None) -> Logic:
    """Evaluate ``expr`` in ``scope``.

    ``ctx_width`` is the assignment/expression context width used to widen
    context-determined operands (e.g. so ``{cout, s} = a + b`` keeps the
    carry bit).
    """
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else 32
        return Logic(width, expr.val, expr.xmask)

    if isinstance(expr, ast.Identifier):
        return scope.read_name(expr.name)

    if isinstance(expr, ast.StringLit):
        data = expr.text.encode("latin-1", "replace")
        val = int.from_bytes(data, "big") if data else 0
        return Logic(max(8 * len(data), 8), val, 0)

    if isinstance(expr, ast.Unary):
        return _eval_unary(expr, scope, ctx_width)

    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, scope, ctx_width)

    if isinstance(expr, ast.Ternary):
        w = max(width_of(expr, scope), ctx_width or 0)
        cond = eval_expr(expr.cond, scope).truth()
        if cond is True:
            return eval_expr(expr.then, scope, w).resize(
                w, signed_of(expr.then, scope))
        if cond is False:
            return eval_expr(expr.other, scope, w).resize(
                w, signed_of(expr.other, scope))
        # Unknown select: bitwise merge; agreeing bits survive.
        a = eval_expr(expr.then, scope, w).resize(w, signed_of(expr.then, scope))
        b = eval_expr(expr.other, scope, w).resize(w, signed_of(expr.other, scope))
        agree = ~(a.val ^ b.val) & ~a.xmask & ~b.xmask
        return Logic(w, a.val & agree, ((1 << w) - 1) & ~agree)

    if isinstance(expr, ast.Concat):
        return Logic.concat([eval_expr(p, scope) for p in expr.parts])

    if isinstance(expr, ast.Replicate):
        count = scope.const_int(expr.count)
        if count < 1:
            raise SimulationError(f"replication count {count} must be >= 1")
        return eval_expr(expr.value, scope).replicate(count)

    if isinstance(expr, ast.Index):
        index = eval_expr(expr.index, scope)
        if scope.is_memory(expr.base):
            addr = index.to_uint()
            if addr is None:
                return Logic.unknown(scope.memory_width(expr.base))
            return scope.read_memory(expr.base, addr)
        base = scope.read_name(expr.base)
        idx = index.to_uint()
        if idx is None:
            return Logic.unknown(1)
        return base.bit(idx)

    if isinstance(expr, ast.PartSelect):
        base = scope.read_name(expr.base)
        msb = scope.const_int(expr.msb)
        lsb = scope.const_int(expr.lsb)
        return base.part(msb, lsb)

    if isinstance(expr, ast.SystemCall):
        return _eval_system_call(expr, scope)

    raise SimulationError(f"cannot evaluate expression {expr!r}")


def _eval_unary(expr: ast.Unary, scope: "Scope",
                ctx_width: int | None) -> Logic:
    op = expr.op
    if op == "!":
        return eval_expr(expr.operand, scope).lnot()
    if op == "&":
        return eval_expr(expr.operand, scope).reduce_and()
    if op == "~&":
        return eval_expr(expr.operand, scope).reduce_nand()
    if op == "|":
        return eval_expr(expr.operand, scope).reduce_or()
    if op == "~|":
        return eval_expr(expr.operand, scope).reduce_nor()
    if op in ("^",):
        return eval_expr(expr.operand, scope).reduce_xor()
    if op in ("~^", "^~"):
        return eval_expr(expr.operand, scope).reduce_xnor()

    w = max(width_of(expr.operand, scope), ctx_width or 0)
    signed = signed_of(expr.operand, scope)
    value = eval_expr(expr.operand, scope, w).resize(w, signed)
    if op == "~":
        return value.bnot()
    if op == "-":
        return value.neg(w)
    if op == "+":
        return value
    raise SimulationError(f"unsupported unary operator {op!r}")


def _eval_binary(expr: ast.Binary, scope: "Scope",
                 ctx_width: int | None) -> Logic:
    op = expr.op

    if op in _LOGICAL:
        left = eval_expr(expr.left, scope)
        right = eval_expr(expr.right, scope)
        return left.land(right) if op == "&&" else left.lor(right)

    if op in _COMPARE:
        w = max(width_of(expr.left, scope), width_of(expr.right, scope))
        signed = (signed_of(expr.left, scope)
                  and signed_of(expr.right, scope))
        left = eval_expr(expr.left, scope, w).resize(w, signed)
        right = eval_expr(expr.right, scope, w).resize(w, signed)
        if op == "==":
            return left.eq(right)
        if op == "!=":
            return left.neq(right)
        if op == "===":
            return left.case_eq(right)
        if op == "!==":
            return left.case_neq(right)
        if op == "<":
            return left.lt(right, signed)
        if op == "<=":
            return left.le(right, signed)
        if op == ">":
            return left.gt(right, signed)
        return left.ge(right, signed)

    if op in _SHIFTS:
        w = max(width_of(expr.left, scope), ctx_width or 0)
        signed = signed_of(expr.left, scope)
        left = eval_expr(expr.left, scope, w).resize(w, signed)
        amount = eval_expr(expr.right, scope)
        if op == "<<" or op == "<<<":
            return left.shl(amount, w)
        if op == ">>":
            return left.shr(amount, w)
        # Arithmetic right shift only fills sign when the value is signed.
        return left.ashr(amount, w) if signed else left.shr(amount, w)

    # Context-determined arithmetic / bitwise operators.
    w = max(width_of(expr.left, scope), width_of(expr.right, scope),
            ctx_width or 0)
    l_signed = signed_of(expr.left, scope)
    r_signed = signed_of(expr.right, scope)
    both_signed = l_signed and r_signed
    left = eval_expr(expr.left, scope, w).resize(w, both_signed)
    right = eval_expr(expr.right, scope, w).resize(w, both_signed)
    if op == "+":
        return left.add(right, w)
    if op == "-":
        return left.sub(right, w)
    if op == "*":
        return left.mul(right, w)
    if op == "/":
        return left.div(right, w, both_signed)
    if op == "%":
        return left.mod(right, w, both_signed)
    if op == "&":
        return left.band(right)
    if op == "|":
        return left.bor(right)
    if op == "^":
        return left.bxor(right)
    if op in ("^~", "~^"):
        return left.bxnor(right)
    if op == "**":
        return left.pow(right, w)
    raise SimulationError(f"unsupported binary operator {op!r}")


def _eval_system_call(expr: ast.SystemCall, scope: "Scope") -> Logic:
    name = expr.name
    if name == "$time":
        return Logic.from_int(scope.sim_time(), 64)
    if name == "$signed":
        return eval_expr(expr.args[0], scope)
    if name == "$unsigned":
        return eval_expr(expr.args[0], scope)
    if name in ("$random", "$urandom"):
        return Logic.from_int(scope.sim_random(), 32)
    if name == "$clog2":
        value = eval_expr(expr.args[0], scope).to_uint()
        if value is None:
            return Logic.unknown(32)
        return Logic.from_int(max(value - 1, 0).bit_length(), 32)
    if name == "$fopen":
        filename = expr.args[0]
        if not isinstance(filename, ast.StringLit):
            raise SimulationError("$fopen expects a string literal")
        return Logic.from_int(scope.sim_fopen(filename.text), 32)
    raise SimulationError(f"unsupported system function {name!r}")


# ----------------------------------------------------------------------
# Case-label matching (shared by the interpreter and compiled engine)
# ----------------------------------------------------------------------
def case_match(kind: str, subject: Logic, label: Logic) -> bool:
    """``case``/``casez``/``casex`` label comparison semantics."""
    w = max(subject.width, label.width)
    s, lab = subject.resize(w), label.resize(w)
    if kind == "case":
        return s.val == lab.val and s.xmask == lab.xmask
    wildcard = lab.xmask
    if kind == "casex":
        wildcard |= s.xmask
    elif s.xmask & ~wildcard:
        return False  # casez: unknown subject bits never match
    mask = ((1 << w) - 1) & ~wildcard
    return (s.val & mask) == (lab.val & mask)


# ----------------------------------------------------------------------
# Lowering context: slot allocation + structural signatures
# ----------------------------------------------------------------------
_Signal = None  # resolved lazily; eval <-> elaborate import cycle
_Memory = None


def _signal_type():
    global _Signal
    if _Signal is None:
        from .elaborate import Signal
        _Signal = Signal
    return _Signal


def _memory_type():
    global _Memory
    if _Memory is None:
        from .elaborate import Memory
        _Memory = Memory
    return _Memory


# Slot descriptor tags (the bind-time recipe of a shared program).
SLOT_OBJ = "obj"        # ("obj", name)    -> scope.names[name]
SLOT_LIT = "lit"        # ("lit", payload) -> payload verbatim
SLOT_REQ = "req"        # ("req", ((edge, slot_idx), ...)) -> wait request
SLOT_DESIGN = "design"  # ("design",)      -> scope.design (runtime hooks)
SLOT_SINK = "sink"      # ("sink",)        -> port-bind sink signal


def structural_fact(scope: "Scope", name: str, tag: str = "") -> tuple:
    """The structural fact ``name`` resolves to in ``scope``.

    Facts are what a shared program's signature records per referenced
    name; another elaboration may reuse the program iff every recorded
    fact recomputes identically in its scope.  ``tag`` selects the
    strength: ``"sigval"`` (a signal whose *elaboration-time value* was
    baked into the program via constant evaluation) also captures the
    value, everything else only shape.
    """
    obj = scope.names.get(name)
    if obj is None:
        return ("missing",)
    if isinstance(obj, _signal_type()):
        if tag == "sigval":
            return ("sigval", obj.width, obj.signed,
                    obj.value.val, obj.value.xmask)
        return ("sig", obj.width, obj.signed)
    if isinstance(obj, _memory_type()):
        return ("mem", obj.width, obj.lo, obj.hi, obj.signed)
    # Logic constant (parameter / localparam).
    return ("const", obj.width, obj.val, obj.xmask)


class LowerCtx:
    """Compile-time context for lowering one process to a shared program.

    Quacks like :class:`~repro.hdl.elaborate.Scope` for every
    compile-time query (width/signedness inference, constant
    evaluation), while additionally:

    - allocating *frame slots* for each runtime object the compiled
      closures touch (signals, memories, prebuilt wait/delay requests,
      the owning design).  Closures index an immutable per-elaboration
      ``frame`` tuple instead of capturing ``Signal`` objects, which is
      what makes a compiled program scope-polymorphic;
    - recording a structural fact for every name it resolves.  The facts
      form the program's signature: a different elaboration reuses the
      program iff each recorded name resolves to a structurally
      identical object there (see :func:`structural_fact`).
    """

    def __init__(self, scope: "Scope"):
        self.scope = scope
        self.slot_specs: list[tuple] = []
        self.facts: dict[str, tuple] = {}
        # Cleared by lowerings that bake non-relocatable state into the
        # closures (elaboration-time memory contents, runtime hooks
        # evaluated at compile time, foreign-scope signal objects).
        self.shareable = True
        # Deferred compile errors embed this scope's prefix in their
        # message; such programs only transfer between equal prefixes.
        self.prefix_sensitive = False
        self._obj_slots: dict[str, int] = {}
        self._lit_slots: dict = {}
        self._design_slot: int | None = None
        self._sink_slot: int | None = None
        self._expr_cache: dict = {}

    # -- slot allocation ------------------------------------------------
    def _new_slot(self, spec: tuple) -> int:
        self.slot_specs.append(spec)
        return len(self.slot_specs) - 1

    def obj_slot(self, name: str) -> int:
        idx = self._obj_slots.get(name)
        if idx is None:
            idx = self._obj_slots[name] = self._new_slot((SLOT_OBJ, name))
        return idx

    def lit_slot(self, payload) -> int:
        key = (SLOT_LIT, payload)
        idx = self._lit_slots.get(key)
        if idx is None:
            idx = self._lit_slots[key] = self._new_slot(key)
        return idx

    def request_slot(self, pairs: tuple) -> int:
        """Slot for a prebuilt ``("wait", ...)`` request over signal
        slots allocated earlier (``pairs`` is ``((edge, slot_idx), ...)``)."""
        key = (SLOT_REQ, pairs)
        idx = self._lit_slots.get(key)
        if idx is None:
            idx = self._lit_slots[key] = self._new_slot(key)
        return idx

    def design_slot(self) -> int:
        if self._design_slot is None:
            self._design_slot = self._new_slot((SLOT_DESIGN,))
        return self._design_slot

    def sink_slot(self) -> int:
        if self._sink_slot is None:
            self._sink_slot = self._new_slot((SLOT_SINK,))
        return self._sink_slot

    def note_deferred(self) -> None:
        """Record that a compile error was deferred into the program."""
        self.prefix_sensitive = True

    def signature(self) -> tuple:
        return tuple(sorted(self.facts.items()))

    # -- fact recording -------------------------------------------------
    def _touch(self, name: str) -> None:
        if name not in self.facts:
            self.facts[name] = structural_fact(self.scope, name)

    # -- Scope protocol (compile-time queries) --------------------------
    @property
    def prefix(self) -> str:
        return self.scope.prefix

    @property
    def names(self) -> dict:
        return self.scope.names

    def lookup(self, name: str):
        self._touch(name)
        return self.scope.lookup(name)

    def width_of_name(self, name: str) -> int:
        self._touch(name)
        return self.scope.width_of_name(name)

    def signed_of_name(self, name: str) -> bool:
        self._touch(name)
        return self.scope.signed_of_name(name)

    def is_memory(self, name: str) -> bool:
        self._touch(name)
        return self.scope.is_memory(name)

    def memory_width(self, name: str) -> int:
        self._touch(name)
        return self.scope.memory_width(name)

    def read_name(self, name: str) -> Logic:
        # Constant evaluation reading a signal's elaboration-time value
        # bakes that value into the program, so record it in the fact.
        if isinstance(self.scope.names.get(name), _signal_type()):
            self.facts[name] = structural_fact(self.scope, name, "sigval")
        else:
            self._touch(name)
        return self.scope.read_name(name)

    def read_memory(self, name: str, addr: int) -> Logic:
        # Elaboration-time memory contents are not part of the
        # signature; a program whose compilation read them is unsafe to
        # transfer to another elaboration.
        self.shareable = False
        return self.scope.read_memory(name, addr)

    def const_int(self, expr: ast.Expr) -> int:
        value = eval_expr(expr, self)
        result = value.to_uint()
        if result is None:
            raise ElaborationError(
                "expression is not a defined constant in "
                f"{self.scope.prefix or 'top'}")
        return result

    # -- runtime hooks reached during constant evaluation ----------------
    def sim_time(self) -> int:
        self.shareable = False
        return self.scope.sim_time()

    def sim_random(self) -> int:
        self.shareable = False
        return self.scope.sim_random()

    def sim_fopen(self, filename: str) -> int:
        self.shareable = False
        return self.scope.sim_fopen(filename)


# ----------------------------------------------------------------------
# Expression compilation (slot-indexed closure trees + per-program cache)
# ----------------------------------------------------------------------
def compile_expr(expr: ast.Expr, ctx: LowerCtx,
                 ctx_width: int | None = None):
    """Compile ``expr`` to a closure ``fn(frame) -> Logic``.

    The closure is the compiled counterpart of
    ``eval_expr(expr, scope, ctx_width)``: widths, signedness and
    elaboration-time constants are resolved now, and every runtime
    object is referenced through an integer slot into the bind-time
    ``frame`` tuple — the same compiled program runs against any
    elaboration whose frame it is bound to.  Results are memoised per
    lowering context, keyed by ``(id(expr), ctx_width)`` (valid because
    AST nodes are pinned by the program cache for the program's
    lifetime).
    """
    cache = ctx._expr_cache
    key = (id(expr), ctx_width)
    fn = cache.get(key)
    if fn is None:
        fn = _compile_expr(expr, ctx, ctx_width)
        cache[key] = fn
    return fn


def _read_closure(name: str, ctx: LowerCtx):
    """Compiled counterpart of ``scope.read_name``."""
    obj = ctx.lookup(name)
    if isinstance(obj, Logic):
        return lambda frame: obj
    if isinstance(obj, _signal_type()):
        i = ctx.obj_slot(name)
        return lambda frame: frame[i].value
    raise ElaborationError(f"cannot read {name!r} as a value")


_REDUCTIONS = frozenset({"!", "&", "~&", "|", "~|", "^", "~^", "^~"})


def _result_width(expr: ast.Expr, scope: "Scope",
                  ctx_width: int | None) -> int:
    """Static width of ``compile_expr(expr, scope, ctx_width)()``.

    Mirrors what :func:`eval_expr` returns for each node kind: operators
    with context-determined operands widen to ``max(self, ctx)``, all
    others are self-determined.  Used to elide no-op ``resize`` calls at
    compile time.
    """
    if isinstance(expr, ast.Unary):
        if expr.op in _REDUCTIONS:
            return 1
        return max(width_of(expr.operand, scope), ctx_width or 0)
    if isinstance(expr, ast.Binary):
        op = expr.op
        if op in _LOGICAL or op in _COMPARE:
            return 1
        if op in _SHIFTS:
            return max(width_of(expr.left, scope), ctx_width or 0)
        return max(width_of(expr.left, scope),
                   width_of(expr.right, scope), ctx_width or 0)
    if isinstance(expr, ast.Ternary):
        return max(width_of(expr, scope), ctx_width or 0)
    return width_of(expr, scope)


def compile_coerced(expr: ast.Expr, ctx: LowerCtx, width: int,
                    signed: bool):
    """Compile ``eval_expr(expr, scope, width).resize(width, signed)``.

    The trailing resize is elided when the compiled closure is statically
    known to produce ``width``-bit values already (``resize`` to the same
    width is the identity).
    """
    fn = compile_expr(expr, ctx, width)
    if _result_width(expr, ctx, width) == width:
        return fn
    return lambda frame: fn(frame).resize(width, signed)


def compile_expr_deferred(expr: ast.Expr, ctx: LowerCtx,
                          ctx_width: int | None = None):
    """Like :func:`compile_expr`, but a compile-time :class:`HdlError`
    becomes a closure that re-raises when *evaluated*.

    Used where the interpreter evaluates an expression conditionally
    (case labels, unselected ternary branches): the compiled engine must
    not fail on a branch the interpreter would never reach.
    """
    try:
        return compile_expr(expr, ctx, ctx_width)
    except HdlError as exc:
        ctx.note_deferred()

        def raise_deferred(frame, _exc=exc):
            # Shared instance: shed the previous raise's traceback so
            # repeated evaluations don't chain frames forever.
            _exc.__traceback__ = None
            _exc.__context__ = None
            raise _exc
        return raise_deferred


def _coerced_deferred(expr: ast.Expr, ctx: LowerCtx, width: int,
                      signed: bool):
    try:
        return compile_coerced(expr, ctx, width, signed)
    except HdlError as exc:
        ctx.note_deferred()

        def raise_deferred(frame, _exc=exc):
            _exc.__traceback__ = None
            _exc.__context__ = None
            raise _exc
        return raise_deferred


def _compile_expr(expr: ast.Expr, ctx: LowerCtx, ctx_width: int | None):
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else 32
        const = Logic(width, expr.val, expr.xmask)
        return lambda frame: const

    if isinstance(expr, ast.Identifier):
        return _read_closure(expr.name, ctx)

    if isinstance(expr, ast.StringLit):
        data = expr.text.encode("latin-1", "replace")
        val = int.from_bytes(data, "big") if data else 0
        const = Logic(max(8 * len(data), 8), val, 0)
        return lambda frame: const

    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, ctx, ctx_width)

    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, ctx, ctx_width)

    if isinstance(expr, ast.Ternary):
        w = max(width_of(expr, ctx), ctx_width or 0)
        cond = compile_expr(expr.cond, ctx)
        # Branches compile deferred: the interpreter only evaluates the
        # selected branch, so a broken unselected branch must not fail
        # until (unless) it is actually chosen.
        then = _coerced_deferred(expr.then, ctx, w,
                                 signed_of(expr.then, ctx))
        other = _coerced_deferred(expr.other, ctx, w,
                                  signed_of(expr.other, ctx))
        full = (1 << w) - 1

        def ternary(frame):
            sel = cond(frame).truth()
            if sel is True:
                return then(frame)
            if sel is False:
                return other(frame)
            a = then(frame)
            b = other(frame)
            agree = ~(a.val ^ b.val) & ~a.xmask & ~b.xmask
            return Logic(w, a.val & agree, full & ~agree)
        return ternary

    if isinstance(expr, ast.Concat):
        fns = tuple(compile_expr(p, ctx) for p in expr.parts)
        return lambda frame: Logic.concat([f(frame) for f in fns])

    if isinstance(expr, ast.Replicate):
        count = ctx.const_int(expr.count)
        if count < 1:
            raise SimulationError(f"replication count {count} must be >= 1")
        value = compile_expr(expr.value, ctx)
        return lambda frame: value(frame).replicate(count)

    if isinstance(expr, ast.Index):
        index = compile_expr(expr.index, ctx)
        if ctx.is_memory(expr.base):
            width = ctx.memory_width(expr.base)
            ctx.lookup(expr.base)
            i = ctx.obj_slot(expr.base)
            unknown = Logic.unknown(width)

            def read_word(frame):
                addr = index(frame).to_uint()
                if addr is None:
                    return unknown
                return frame[i].read(addr)
            return read_word
        base = _read_closure(expr.base, ctx)
        unknown_bit = Logic.unknown(1)

        def read_bit(frame):
            value = base(frame)
            idx = index(frame).to_uint()
            if idx is None:
                return unknown_bit
            return value.bit(idx)
        return read_bit

    if isinstance(expr, ast.PartSelect):
        base = _read_closure(expr.base, ctx)
        msb = ctx.const_int(expr.msb)
        lsb = ctx.const_int(expr.lsb)
        return lambda frame: base(frame).part(msb, lsb)

    if isinstance(expr, ast.SystemCall):
        return _compile_system_call(expr, ctx)

    raise SimulationError(f"cannot evaluate expression {expr!r}")


def _compile_unary(expr: ast.Unary, ctx: LowerCtx, ctx_width: int | None):
    op = expr.op
    if op in ("!", "&", "~&", "|", "~|", "^", "~^", "^~"):
        operand = compile_expr(expr.operand, ctx)
        method = {
            "!": Logic.lnot, "&": Logic.reduce_and, "~&": Logic.reduce_nand,
            "|": Logic.reduce_or, "~|": Logic.reduce_nor,
            "^": Logic.reduce_xor, "~^": Logic.reduce_xnor,
            "^~": Logic.reduce_xnor,
        }[op]
        return lambda frame: method(operand(frame))

    w = max(width_of(expr.operand, ctx), ctx_width or 0)
    signed = signed_of(expr.operand, ctx)
    operand = compile_coerced(expr.operand, ctx, w, signed)
    if op == "~":
        return lambda frame: operand(frame).bnot()
    if op == "-":
        return lambda frame: operand(frame).neg(w)
    if op == "+":
        return operand
    raise SimulationError(f"unsupported unary operator {op!r}")


def _compile_binary(expr: ast.Binary, ctx: LowerCtx, ctx_width: int | None):
    op = expr.op

    if op in _LOGICAL:
        left = compile_expr(expr.left, ctx)
        right = compile_expr(expr.right, ctx)
        if op == "&&":
            return lambda frame: left(frame).land(right(frame))
        return lambda frame: left(frame).lor(right(frame))

    if op in _COMPARE:
        w = max(width_of(expr.left, ctx), width_of(expr.right, ctx))
        signed = (signed_of(expr.left, ctx)
                  and signed_of(expr.right, ctx))
        left = compile_coerced(expr.left, ctx, w, signed)
        right = compile_coerced(expr.right, ctx, w, signed)
        if op == "==":
            return lambda frame: left(frame).eq(right(frame))
        if op == "!=":
            return lambda frame: left(frame).neq(right(frame))
        if op == "===":
            return lambda frame: left(frame).case_eq(right(frame))
        if op == "!==":
            return lambda frame: left(frame).case_neq(right(frame))
        method = {"<": Logic.lt, "<=": Logic.le,
                  ">": Logic.gt, ">=": Logic.ge}[op]
        return lambda frame: method(left(frame), right(frame), signed)

    if op in _SHIFTS:
        w = max(width_of(expr.left, ctx), ctx_width or 0)
        signed = signed_of(expr.left, ctx)
        left = compile_coerced(expr.left, ctx, w, signed)
        amount = compile_expr(expr.right, ctx)
        if op in ("<<", "<<<"):
            return lambda frame: left(frame).shl(amount(frame), w)
        if op == ">>":
            return lambda frame: left(frame).shr(amount(frame), w)
        if signed:
            return lambda frame: left(frame).ashr(amount(frame), w)
        return lambda frame: left(frame).shr(amount(frame), w)

    # Context-determined arithmetic / bitwise operators.
    w = max(width_of(expr.left, ctx), width_of(expr.right, ctx),
            ctx_width or 0)
    both = (signed_of(expr.left, ctx) and signed_of(expr.right, ctx))
    left = compile_coerced(expr.left, ctx, w, both)
    right = compile_coerced(expr.right, ctx, w, both)
    if op == "+":
        return lambda frame: left(frame).add(right(frame), w)
    if op == "-":
        return lambda frame: left(frame).sub(right(frame), w)
    if op == "*":
        return lambda frame: left(frame).mul(right(frame), w)
    if op == "/":
        return lambda frame: left(frame).div(right(frame), w, both)
    if op == "%":
        return lambda frame: left(frame).mod(right(frame), w, both)
    if op == "&":
        return lambda frame: left(frame).band(right(frame))
    if op == "|":
        return lambda frame: left(frame).bor(right(frame))
    if op == "^":
        return lambda frame: left(frame).bxor(right(frame))
    if op in ("^~", "~^"):
        return lambda frame: left(frame).bxnor(right(frame))
    if op == "**":
        return lambda frame: left(frame).pow(right(frame), w)
    raise SimulationError(f"unsupported binary operator {op!r}")


def _compile_system_call(expr: ast.SystemCall, ctx: LowerCtx):
    name = expr.name
    if name == "$time":
        j = ctx.design_slot()
        return lambda frame: Logic.from_int(frame[j].runtime_time(), 64)
    if name in ("$signed", "$unsigned"):
        return compile_expr(expr.args[0], ctx)
    if name in ("$random", "$urandom"):
        j = ctx.design_slot()
        return lambda frame: Logic.from_int(frame[j].runtime_random(), 32)
    if name == "$clog2":
        arg = compile_expr(expr.args[0], ctx)
        unknown = Logic.unknown(32)

        def clog2(frame):
            value = arg(frame).to_uint()
            if value is None:
                return unknown
            return Logic.from_int(max(value - 1, 0).bit_length(), 32)
        return clog2
    if name == "$fopen":
        filename = expr.args[0]
        if not isinstance(filename, ast.StringLit):
            raise SimulationError("$fopen expects a string literal")
        text = filename.text
        j = ctx.design_slot()
        return lambda frame: Logic.from_int(frame[j].runtime_fopen(text), 32)
    raise SimulationError(f"unsupported system function {name!r}")


# ----------------------------------------------------------------------
# Static read-set collection (for @(*) and continuous assignments)
# ----------------------------------------------------------------------
def collect_expr_reads(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.Identifier):
        out.add(expr.name)
    elif isinstance(expr, (ast.Number, ast.StringLit)):
        pass
    elif isinstance(expr, ast.Unary):
        collect_expr_reads(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        collect_expr_reads(expr.left, out)
        collect_expr_reads(expr.right, out)
    elif isinstance(expr, ast.Ternary):
        collect_expr_reads(expr.cond, out)
        collect_expr_reads(expr.then, out)
        collect_expr_reads(expr.other, out)
    elif isinstance(expr, ast.Concat):
        for p in expr.parts:
            collect_expr_reads(p, out)
    elif isinstance(expr, ast.Replicate):
        collect_expr_reads(expr.count, out)
        collect_expr_reads(expr.value, out)
    elif isinstance(expr, ast.Index):
        out.add(expr.base)
        collect_expr_reads(expr.index, out)
    elif isinstance(expr, ast.PartSelect):
        out.add(expr.base)
        collect_expr_reads(expr.msb, out)
        collect_expr_reads(expr.lsb, out)
    elif isinstance(expr, ast.SystemCall):
        for a in expr.args:
            collect_expr_reads(a, out)


def _collect_lvalue_reads(lv: ast.LValue, out: set[str]) -> None:
    if isinstance(lv, ast.LvIndex):
        collect_expr_reads(lv.index, out)
    elif isinstance(lv, ast.LvPart):
        collect_expr_reads(lv.msb, out)
        collect_expr_reads(lv.lsb, out)
    elif isinstance(lv, ast.LvConcat):
        for p in lv.parts:
            _collect_lvalue_reads(p, out)


def collect_stmt_reads(stmt: ast.Stmt, out: set[str]) -> None:
    """Read set of a statement for ``always @(*)`` sensitivity."""
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            collect_stmt_reads(s, out)
    elif isinstance(stmt, ast.If):
        collect_expr_reads(stmt.cond, out)
        collect_stmt_reads(stmt.then, out)
        if stmt.other is not None:
            collect_stmt_reads(stmt.other, out)
    elif isinstance(stmt, ast.Case):
        collect_expr_reads(stmt.subject, out)
        for item in stmt.items:
            for label in item.labels:
                collect_expr_reads(label, out)
            collect_stmt_reads(item.body, out)
    elif isinstance(stmt, ast.For):
        collect_expr_reads(stmt.init.value, out)
        collect_expr_reads(stmt.cond, out)
        collect_expr_reads(stmt.step.value, out)
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, (ast.While, ast.Repeat)):
        collect_expr_reads(stmt.cond if isinstance(stmt, ast.While)
                           else stmt.count, out)
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, ast.Forever):
        collect_stmt_reads(stmt.body, out)
    elif isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
        collect_expr_reads(stmt.value, out)
        _collect_lvalue_reads(stmt.target, out)
    elif isinstance(stmt, ast.DelayStmt):
        if stmt.stmt is not None:
            collect_stmt_reads(stmt.stmt, out)
    elif isinstance(stmt, ast.EventControl):
        if stmt.stmt is not None:
            collect_stmt_reads(stmt.stmt, out)
    elif isinstance(stmt, ast.SysTaskCall):
        for a in stmt.args:
            collect_expr_reads(a, out)
