"""Recursive-descent parser for the supported Verilog subset."""

from __future__ import annotations

from typing import Sequence

from ..util import LruCache
from . import ast
from .errors import VerilogSyntaxError
from .lexer import tokenize, tokenize_cached
from .tokens import Token, TokenKind

# Binary operator precedence, lowest first.  The ternary operator is handled
# separately above level 0.
_BINARY_LEVELS: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^", "^~", "~^"),
    ("&",),
    ("==", "!=", "===", "!=="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", "<<<", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
    ("**",),
)

#: Operator -> precedence level, for the precedence-climbing expression
#: parser (one loop instead of one recursive call per level).
_BINARY_LEVEL: dict[str, int] = {
    op: level for level, ops in enumerate(_BINARY_LEVELS) for op in ops
}
_MAX_BINARY_LEVEL = len(_BINARY_LEVELS)

_UNARY_OPS = frozenset(
    ("!", "~", "&", "~&", "|", "~|", "^", "~^", "^~", "+", "-"))

# Bound once: TokenKind attribute lookups add up in the token helpers,
# which run once or more per token on the cold-parse path.
_PUNCT = TokenKind.PUNCT
_KEYWORD = TokenKind.KEYWORD
_IDENT = TokenKind.IDENT
_EOF = TokenKind.EOF


class Parser:
    def __init__(self, tokens: Sequence[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    # ``self.pos`` never passes the trailing EOF token (_advance stops
    # there), so the zero-offset peek — the overwhelmingly common case —
    # can index directly without clamping.
    def _peek(self, offset: int = 0) -> Token:
        if offset:
            i = min(self.pos + offset, len(self.tokens) - 1)
            return self.tokens[i]
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not _EOF:
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Token | None = None) -> VerilogSyntaxError:
        tok = tok or self._peek()
        return VerilogSyntaxError(message, tok.line, tok.column)

    def _expect_punct(self, text: str) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not _PUNCT or tok.text != text:
            raise self._error(f"expected {text!r}, found {tok.text!r}")
        self.pos += 1
        return tok

    def _expect_keyword(self, word: str) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not _KEYWORD or tok.text != word:
            raise self._error(f"expected {word!r}, found {tok.text!r}")
        self.pos += 1
        return tok

    def _expect_ident(self) -> str:
        tok = self.tokens[self.pos]
        if tok.kind is not _IDENT:
            raise self._error(f"expected identifier, found {tok.text!r}")
        self.pos += 1
        return tok.text

    def _accept_punct(self, text: str) -> bool:
        tok = self.tokens[self.pos]
        if tok.kind is _PUNCT and tok.text == text:
            self.pos += 1
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        tok = self.tokens[self.pos]
        if tok.kind is _KEYWORD and tok.text == word:
            self.pos += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_source(self) -> ast.SourceFile:
        modules = []
        while self._peek().kind is not TokenKind.EOF:
            modules.append(self.parse_module())
        return ast.SourceFile(tuple(modules))

    def parse_module(self) -> ast.Module:
        self._expect_keyword("module")
        name = self._expect_ident()
        ports: list[ast.Port] = []
        header_names: list[str] = []
        items: list[ast.ModuleItem] = []

        if self._accept_punct("("):
            if not self._peek().is_punct(")"):
                if self._peek().is_keyword("input") or \
                        self._peek().is_keyword("output") or \
                        self._peek().is_keyword("inout"):
                    ports.extend(self._parse_ansi_ports())
                else:
                    header_names.append(self._expect_ident())
                    while self._accept_punct(","):
                        header_names.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_punct(";")

        port_map = {p.name: p for p in ports}
        while not self._peek().is_keyword("endmodule"):
            items.extend(self._parse_module_item(port_map, header_names))
        self._expect_keyword("endmodule")

        if header_names:
            ordered = []
            for pname in header_names:
                if pname not in port_map:
                    raise self._error(
                        f"port {pname!r} has no direction declaration")
                ordered.append(port_map[pname])
            ports = ordered
        return ast.Module(name, tuple(ports), tuple(items))

    def _parse_ansi_ports(self) -> list[ast.Port]:
        ports: list[ast.Port] = []
        direction = None
        is_reg = False
        signed = False
        rng = None
        while True:
            tok = self._peek()
            if tok.is_keyword("input") or tok.is_keyword("output") or \
                    tok.is_keyword("inout"):
                direction = self._advance().text
                is_reg = False
                signed = False
                rng = None
                if self._accept_keyword("wire"):
                    pass
                elif self._accept_keyword("reg"):
                    is_reg = True
                if self._accept_keyword("signed"):
                    signed = True
                if self._peek().is_punct("["):
                    rng = self._parse_range()
            if direction is None:
                raise self._error("expected port direction")
            pname = self._expect_ident()
            ports.append(ast.Port(direction, pname, rng, is_reg, signed))
            if not self._accept_punct(","):
                return ports

    # ------------------------------------------------------------------
    # Module items
    # ------------------------------------------------------------------
    def _parse_module_item(self, port_map: dict[str, ast.Port],
                           header_names: list[str]) -> list[ast.ModuleItem]:
        tok = self._peek()

        if tok.is_keyword("input") or tok.is_keyword("output") or \
                tok.is_keyword("inout"):
            self._parse_body_port_decl(port_map)
            return []
        if tok.is_keyword("wire") or tok.is_keyword("reg") or \
                tok.is_keyword("integer"):
            return [self._parse_net_decl()]
        if tok.is_keyword("parameter") or tok.is_keyword("localparam"):
            return self._parse_param_decl()
        if tok.is_keyword("assign"):
            return [self._parse_continuous_assign()]
        if tok.is_keyword("always"):
            return [self._parse_always()]
        if tok.is_keyword("initial"):
            self._advance()
            return [ast.InitialBlock(self.parse_statement())]
        if tok.kind is TokenKind.IDENT:
            return [self._parse_instance()]
        raise self._error(f"unexpected token {tok.text!r} in module body")

    def _parse_body_port_decl(self, port_map: dict[str, ast.Port]) -> None:
        direction = self._advance().text
        is_reg = False
        signed = False
        if self._accept_keyword("wire"):
            pass
        elif self._accept_keyword("reg"):
            is_reg = True
        if self._accept_keyword("signed"):
            signed = True
        rng = self._parse_range() if self._peek().is_punct("[") else None
        names = [self._expect_ident()]
        while self._accept_punct(","):
            names.append(self._expect_ident())
        self._expect_punct(";")
        for name in names:
            port_map[name] = ast.Port(direction, name, rng, is_reg, signed)

    def _parse_net_decl(self) -> ast.NetDecl:
        kind = self._advance().text
        signed = False
        rng = None
        if kind != "integer":
            if self._accept_keyword("signed"):
                signed = True
            if self._peek().is_punct("["):
                rng = self._parse_range()
        names: list[str] = []
        inits: list[ast.Expr | None] = []
        array = None
        while True:
            names.append(self._expect_ident())
            if self._peek().is_punct("["):
                array = self._parse_range()
            if self._accept_punct("="):
                inits.append(self.parse_expression())
            else:
                inits.append(None)
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if array is not None and len(names) > 1:
            raise self._error("array declarations must declare one name")
        return ast.NetDecl(kind, tuple(names), rng, signed, array,
                           tuple(inits))

    def _parse_param_decl(self) -> list[ast.ParamDecl]:
        local = self._advance().text == "localparam"
        if self._peek().is_punct("["):
            self._parse_range()  # parameter ranges are ignored
        decls = []
        while True:
            name = self._expect_ident()
            self._expect_punct("=")
            decls.append(ast.ParamDecl(name, self.parse_expression(), local))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return decls

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        self._expect_keyword("assign")
        target = self.parse_lvalue()
        self._expect_punct("=")
        value = self.parse_expression()
        self._expect_punct(";")
        return ast.ContinuousAssign(target, value)

    def _parse_always(self) -> ast.AlwaysBlock:
        self._expect_keyword("always")
        events: tuple[ast.EventExpr, ...] | None = ()
        if self._accept_punct("@"):
            events = self._parse_event_list()
        body = self.parse_statement()
        return ast.AlwaysBlock(events, body)

    def _parse_event_list(self) -> tuple[ast.EventExpr, ...] | None:
        """Parse the event list after ``@``; returns ``None`` for ``@*``."""
        if self._accept_punct("*"):
            return None
        self._expect_punct("(")
        if self._accept_punct("*"):
            self._expect_punct(")")
            return None
        events = [self._parse_event_expr()]
        while True:
            if self._accept_punct(","):
                events.append(self._parse_event_expr())
            elif self._accept_keyword("or"):
                events.append(self._parse_event_expr())
            else:
                break
        self._expect_punct(")")
        return tuple(events)

    def _parse_event_expr(self) -> ast.EventExpr:
        if self._accept_keyword("posedge"):
            return ast.EventExpr("pos", self.parse_expression())
        if self._accept_keyword("negedge"):
            return ast.EventExpr("neg", self.parse_expression())
        return ast.EventExpr("any", self.parse_expression())

    def _parse_instance(self) -> ast.Instance:
        module = self._expect_ident()
        parameters: list[tuple[str, ast.Expr]] = []
        if self._accept_punct("#"):
            self._expect_punct("(")
            while not self._peek().is_punct(")"):
                self._expect_punct(".")
                pname = self._expect_ident()
                self._expect_punct("(")
                parameters.append((pname, self.parse_expression()))
                self._expect_punct(")")
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        name = self._expect_ident()
        self._expect_punct("(")
        connections: list[tuple[str | None, ast.Expr | None]] = []
        if not self._peek().is_punct(")"):
            while True:
                if self._accept_punct("."):
                    pname = self._expect_ident()
                    self._expect_punct("(")
                    if self._peek().is_punct(")"):
                        connections.append((pname, None))
                    else:
                        connections.append((pname, self.parse_expression()))
                    self._expect_punct(")")
                else:
                    connections.append((None, self.parse_expression()))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Instance(module, name, tuple(connections),
                            tuple(parameters))

    def _parse_range(self) -> ast.Range:
        self._expect_punct("[")
        msb = self.parse_expression()
        self._expect_punct(":")
        lsb = self.parse_expression()
        self._expect_punct("]")
        return ast.Range(msb, lsb)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()

        if tok.is_keyword("begin"):
            self._advance()
            name = None
            if self._accept_punct(":"):
                name = self._expect_ident()
            stmts = []
            while not self._peek().is_keyword("end"):
                if self._peek().kind is TokenKind.EOF:
                    raise self._error("unterminated begin/end block")
                stmts.append(self.parse_statement())
            self._advance()
            return ast.Block(tuple(stmts), name)

        if tok.is_keyword("if"):
            self._advance()
            self._expect_punct("(")
            cond = self.parse_expression()
            self._expect_punct(")")
            then = self.parse_statement()
            other = None
            if self._accept_keyword("else"):
                other = self.parse_statement()
            return ast.If(cond, then, other)

        if tok.is_keyword("case") or tok.is_keyword("casez") or \
                tok.is_keyword("casex"):
            return self._parse_case()

        if tok.is_keyword("for"):
            self._advance()
            self._expect_punct("(")
            init = self._parse_plain_assign()
            self._expect_punct(";")
            cond = self.parse_expression()
            self._expect_punct(";")
            step = self._parse_plain_assign()
            self._expect_punct(")")
            return ast.For(init, cond, step, self.parse_statement())

        if tok.is_keyword("while"):
            self._advance()
            self._expect_punct("(")
            cond = self.parse_expression()
            self._expect_punct(")")
            return ast.While(cond, self.parse_statement())

        if tok.is_keyword("repeat"):
            self._advance()
            self._expect_punct("(")
            count = self.parse_expression()
            self._expect_punct(")")
            return ast.Repeat(count, self.parse_statement())

        if tok.is_keyword("forever"):
            self._advance()
            return ast.Forever(self.parse_statement())

        if tok.is_punct("#"):
            self._advance()
            amount = self._parse_delay_amount()
            if self._accept_punct(";"):
                return ast.DelayStmt(amount, None)
            return ast.DelayStmt(amount, self.parse_statement())

        if tok.is_punct("@"):
            self._advance()
            events = self._parse_event_list()
            if self._accept_punct(";"):
                return ast.EventControl(events, None)
            return ast.EventControl(events, self.parse_statement())

        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_task()

        if tok.is_punct(";"):
            self._advance()
            return ast.NullStmt()

        # Assignment statement.
        assign = self._parse_assign()
        self._expect_punct(";")
        return assign

    def _parse_delay_amount(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            width, val, xmask, signed = tok.value  # type: ignore[misc]
            return ast.Number(width, val, xmask, signed)
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(tok.text)
        raise self._error("expected delay amount")

    def _parse_case(self) -> ast.Case:
        kind = self._advance().text
        self._expect_punct("(")
        subject = self.parse_expression()
        self._expect_punct(")")
        items: list[ast.CaseItem] = []
        while not self._peek().is_keyword("endcase"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unterminated case statement")
            if self._accept_keyword("default"):
                self._accept_punct(":")
                items.append(ast.CaseItem((), self.parse_statement()))
                continue
            labels = [self.parse_expression()]
            while self._accept_punct(","):
                labels.append(self.parse_expression())
            self._expect_punct(":")
            items.append(ast.CaseItem(tuple(labels), self.parse_statement()))
        self._advance()
        return ast.Case(kind, subject, tuple(items))

    def _parse_plain_assign(self) -> ast.BlockingAssign:
        target = self.parse_lvalue()
        self._expect_punct("=")
        return ast.BlockingAssign(target, self.parse_expression())

    def _parse_assign(self) -> ast.Stmt:
        target = self.parse_lvalue()
        if self._accept_punct("<="):
            return ast.NonblockingAssign(target, self.parse_expression())
        self._expect_punct("=")
        if self._peek().is_punct("#"):
            # Intra-assignment delay: treated as delay-then-assign, which is
            # equivalent for the driver templates that use it.
            self._advance()
            amount = self._parse_delay_amount()
            return ast.DelayStmt(
                amount, ast.BlockingAssign(target, self.parse_expression()))
        return ast.BlockingAssign(target, self.parse_expression())

    def _parse_system_task(self) -> ast.SysTaskCall:
        tok = self._advance()
        args: list[ast.Expr] = []
        if self._accept_punct("("):
            if not self._peek().is_punct(")"):
                args.append(self.parse_expression())
                while self._accept_punct(","):
                    args.append(self.parse_expression())
            self._expect_punct(")")
        self._expect_punct(";")
        return ast.SysTaskCall(tok.text, tuple(args))

    # ------------------------------------------------------------------
    # L-values
    # ------------------------------------------------------------------
    def parse_lvalue(self) -> ast.LValue:
        if self._accept_punct("{"):
            parts = [self.parse_lvalue()]
            while self._accept_punct(","):
                parts.append(self.parse_lvalue())
            self._expect_punct("}")
            return ast.LvConcat(tuple(parts))
        name = self._expect_ident()
        if self._accept_punct("["):
            first = self.parse_expression()
            if self._accept_punct(":"):
                second = self.parse_expression()
                self._expect_punct("]")
                return ast.LvPart(name, first, second)
            self._expect_punct("]")
            return ast.LvIndex(name, first)
        return ast.LvIdent(name)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self._parse_ternary()
            self._expect_punct(":")
            other = self._parse_ternary()
            return ast.Ternary(cond, then, other)
        return cond

    def _parse_binary(self, min_level: int) -> ast.Expr:
        # Precedence climbing: equivalent tree shape to the classic
        # one-method-per-level cascade, but each operand costs one call
        # instead of one call per precedence level.
        left = self._parse_unary()
        tokens = self.tokens
        levels = _BINARY_LEVEL
        punct = TokenKind.PUNCT
        while True:
            tok = tokens[self.pos]
            if tok.kind is not punct:
                return left
            level = levels.get(tok.text)
            if level is None or level < min_level:
                return left
            self.pos += 1
            right = self._parse_binary(level + 1)
            left = ast.Binary(tok.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _UNARY_OPS:
            self._advance()
            return ast.Unary(tok.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()

        if tok.kind is TokenKind.NUMBER:
            self._advance()
            width, val, xmask, signed = tok.value  # type: ignore[misc]
            return ast.Number(width, val, xmask, signed)

        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(tok.text)

        if tok.kind is TokenKind.SYSTEM_IDENT:
            self._advance()
            args: list[ast.Expr] = []
            if self._accept_punct("("):
                if not self._peek().is_punct(")"):
                    args.append(self.parse_expression())
                    while self._accept_punct(","):
                        args.append(self.parse_expression())
                self._expect_punct(")")
            return ast.SystemCall(tok.text, tuple(args))

        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr

        if tok.is_punct("{"):
            self._advance()
            first = self.parse_expression()
            if self._accept_punct("{"):
                # Replication: {N{value}}
                value = self.parse_expression()
                self._expect_punct("}")
                self._expect_punct("}")
                return ast.Replicate(first, value)
            parts = [first]
            while self._accept_punct(","):
                parts.append(self.parse_expression())
            self._expect_punct("}")
            return ast.Concat(tuple(parts))

        if tok.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._accept_punct("["):
                first = self.parse_expression()
                if self._accept_punct(":"):
                    second = self.parse_expression()
                    self._expect_punct("]")
                    return ast.PartSelect(name, first, second)
                self._expect_punct("]")
                return ast.Index(name, first)
            return ast.Identifier(name)

        raise self._error(f"unexpected token {tok.text!r} in expression")


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    parser = Parser(tokenize(source))
    return parser.parse_source()


#: ASTs are immutable picklable dataclass trees, so this cache
#: participates in warm-start snapshots (see :mod:`repro.core.caches`).
_parse_cache = LruCache(capacity=4096)


def parse_source_cached(source: str) -> ast.SourceFile:
    """Text-keyed parse cache.

    The AST is immutable (frozen dataclasses), so sharing one tree
    between callers is safe.  Evaluation pipelines re-parse the same
    driver/DUT text thousands of times (validator R/S matrices, AutoEval
    mutant runs); this cache makes re-parsing free.  Parse *errors* are
    not cached — a failing text re-raises on every call — but the
    token-stream cache underneath (:func:`~repro.hdl.lexer.tokenize_cached`)
    still absorbs the lexing half of those retries, so a source that
    *lexes* but does not parse skips the tokenizer on re-entry.
    """
    return _parse_cache.get_or_create(
        source, lambda: Parser(tokenize_cached(source)).parse_source())


def clear_parse_cache() -> None:
    _parse_cache.clear()


def parse_cache_stats() -> dict:
    return _parse_cache.stats()


def export_parse_cache() -> dict:
    """Snapshot payload: ``{source_text: SourceFile}``."""
    return _parse_cache.export()


def import_parse_cache(entries: dict) -> int:
    """Absorb a snapshot payload; returns the number of ASTs added."""
    return _parse_cache.import_entries(entries)


def parse_module(source: str) -> ast.Module:
    """Parse source expected to contain exactly one module."""
    sf = parse_source(source)
    if len(sf.modules) != 1:
        raise VerilogSyntaxError(
            f"expected exactly one module, found {len(sf.modules)}")
    return sf.modules[0]
