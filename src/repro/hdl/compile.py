"""Compile pass: ``ProcSpec`` bodies -> shared slot-indexed programs.

This is the second execution engine of :mod:`repro.hdl`.  The original
engine (:meth:`Simulator._exec`) re-walks the statement AST with
``isinstance`` dispatch on every executed statement; this module lowers
each process body *once*:

- expressions are compiled through :mod:`repro.hdl.eval` (widths,
  signedness and constant part-select bounds are all resolved at compile
  time),
- pure statements (no suspension point in their subtree) become plain
  callables ``run(sim, frame)``,
- statement sequences that do suspend become flat *op lists* executed by
  a single driver generator, so a body like ``@(posedge clk); #1;``
  yields its precomputed suspension requests directly instead of
  creating a nested generator per statement,
- ``$display`` format strings are pre-parsed into segment lists and
  event sensitivity lists are resolved to signal slots up front.

**Scope polymorphism.**  Compiled closures never capture ``Signal`` or
``Memory`` objects.  Every runtime object is reached through an integer
slot into a per-elaboration ``frame`` tuple; the
:class:`~repro.hdl.eval.LowerCtx` allocates the slots during lowering
and records, for each name it resolves, a structural *fact* (kind,
width, signedness, bounds).  The resulting :class:`SharedProgram` is
cached globally, keyed by the identity of the (parse-cached, hence
shared) AST body, and is reused by any later elaboration whose scope
matches the recorded signature — so a testbench driver compiled once is
re-*bound* (a cheap slot-table build) rather than re-*compiled* for
every DUT design it is paired with.  :func:`program_cache_stats` exposes
the compile/share/bind counters.

The statement budget (``sim._tick``) is charged at loop back-edges and
suspension points rather than per straight-line statement: loops are the
only unbounded constructs, so the budget still cuts off every runaway
program, while the hot straight-line path stays free of bookkeeping.

Laziness parity: the interpreter only discovers errors on the executed
path, so statement compilation is guarded — a statement whose lowering
raises an :class:`HdlError` is replaced by a closure that re-raises that
same error when (and only when) the statement executes.  Deferred errors
embed the elaboration prefix in their message, so such programs are only
shared between scopes with equal prefixes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Callable

from . import ast
from .elaborate import Memory, ProcSpec, Signal
from .errors import FinishRequest, HdlError, SimulationError
from .eval import (SLOT_DESIGN, SLOT_LIT, SLOT_OBJ, SLOT_REQ, LowerCtx,
                   case_match, compile_coerced, compile_expr,
                   compile_expr_deferred, signed_of, structural_fact)
from .logic import Logic

# Op codes for flattened suspendable statement sequences.
_OP_CALL = 0     # (0, fn)      -> fn(sim, frame)
_OP_YIELD = 1    # (1, idx)     -> yield the prebuilt request frame[idx]
_OP_DELAY = 2    # (2, amt_fn)  -> evaluate the delay amount, then yield
_OP_GEN = 3      # (3, genfn)   -> yield from genfn(sim, frame)


class CompiledProc:
    """A compiled process program bound to one elaboration.

    ``kind`` mirrors the spec's kind.  For ``comb`` processes ``run`` is
    a plain callable ``run(sim)``; for ``initial``/``always`` it is a
    generator function ``run(sim)`` yielding the simulator's suspension
    requests (``("delay", n)`` / ``("wait", resolved_events)``).
    """

    __slots__ = ("kind", "run")

    def __init__(self, kind: str, run: Callable):
        self.kind = kind
        self.run = run


# ----------------------------------------------------------------------
# Shared program cache
# ----------------------------------------------------------------------
_PROGRAM_CACHE_SIZE = 1024
_MAX_VARIANTS_PER_KEY = 8

# key -> list[SharedProgram]; keys embed ``id()`` of parse-cached AST
# nodes, which each cached program pins via ``_refs`` (an evicted entry
# releases them together, so a recycled id can never hit a stale value).
# The lock guards the scan/evict/insert sequences: concurrent
# DesignTemplate runs in threads reach compile_spec concurrently.
_program_cache: "OrderedDict[tuple, list]" = OrderedDict()
_program_lock = threading.Lock()
_stats = {"programs_compiled": 0, "programs_shared": 0, "specs_bound": 0,
          "warm_start_compiled": 0}

# Compiled closures cannot travel inside a CacheSnapshot, so warm-start
# imports *re-derive* them by re-elaborating the snapshot's template
# signatures locally.  This flag marks that phase so the stats separate
# "compiled because a request needed it" from "compiled ahead of time
# by a warm-start import" — the latter is the work a warmed worker no
# longer pays at first-batch time.
_warm_start_depth = 0


def program_cache_stats() -> dict:
    """Counters for the shared-program layer (telemetry and tests).

    ``warm_start_compiled`` counts the subset of ``programs_compiled``
    lowered during a snapshot import (ahead of any simulation request).
    """
    with _program_lock:
        return {"size": len(_program_cache), **_stats}


def clear_program_cache() -> None:
    """Drop all shared programs (benchmark cold starts)."""
    with _program_lock:
        _program_cache.clear()


def begin_warm_start() -> None:
    """Mark the start of a snapshot import (nests; see module note)."""
    global _warm_start_depth
    with _program_lock:
        _warm_start_depth += 1


def end_warm_start() -> None:
    """Unmark a snapshot import begun with :func:`begin_warm_start`."""
    global _warm_start_depth
    with _program_lock:
        _warm_start_depth = max(0, _warm_start_depth - 1)


class SharedProgram:
    """A scope-polymorphic compiled process program.

    ``run`` takes ``(sim, frame)``; :meth:`bind` materialises the frame
    for one elaboration (signals/memories resolved by name, wait
    requests prebuilt over them) and returns the bound
    :class:`CompiledProc`.  :meth:`matches` decides whether a given
    spec's scope satisfies the structural signature recorded while the
    program was lowered.
    """

    __slots__ = ("kind", "run", "slot_specs", "signature", "prefix",
                 "sink_width", "shareable", "_refs")

    def __init__(self, kind: str, run: Callable, ctx: LowerCtx,
                 spec: ProcSpec, refs: tuple):
        self.kind = kind
        self.run = run
        self.slot_specs = tuple(ctx.slot_specs)
        self.signature = ctx.signature()
        self.prefix = ctx.scope.prefix if ctx.prefix_sensitive else None
        self.sink_width = (spec.port_bind[2].width
                          if spec.port_bind is not None else None)
        self.shareable = ctx.shareable
        self._refs = refs

    def matches(self, spec: ProcSpec) -> bool:
        scope = spec.scope
        if self.prefix is not None and scope.prefix != self.prefix:
            return False
        if (self.sink_width is not None
                and spec.port_bind[2].width != self.sink_width):
            return False
        for name, fact in self.signature:
            if structural_fact(scope, name, fact[0]) != fact:
                return False
        return True

    def bind(self, spec: ProcSpec) -> CompiledProc:
        with _program_lock:
            _stats["specs_bound"] += 1
        names = spec.scope.names
        frame: list = []
        for slot in self.slot_specs:
            tag = slot[0]
            if tag == SLOT_OBJ:
                frame.append(names[slot[1]])
            elif tag == SLOT_LIT:
                frame.append(slot[1])
            elif tag == SLOT_REQ:
                frame.append(("wait", tuple((edge, frame[i])
                                            for edge, i in slot[1])))
            elif tag == SLOT_DESIGN:
                frame.append(spec.scope.design)
            else:  # SLOT_SINK
                frame.append(spec.port_bind[2])
        bound = tuple(frame)
        run = self.run
        return CompiledProc(self.kind, lambda sim: run(sim, bound))


def _program_key(spec: ProcSpec):
    """Cache key for a spec's program, or ``None`` when uncacheable.

    Keys lean on AST identity: module bodies come from the text-keyed
    parse cache, so the same driver source pairs every DUT with the
    *same* statement objects.
    """
    if spec.port_bind is not None:
        direction = spec.port_bind[0]
        if direction == "out":
            return None  # a single closure over two signals; see below
        return ("bind_in", id(spec.port_bind[1]))
    if spec.body is None:
        return None  # opaque elaborator-provided pyfunc
    return (spec.kind, id(spec.body), id(spec.events))


def compile_spec(spec: ProcSpec) -> CompiledProc:
    """Compile (or reuse) the shared program for one elaborated process
    and bind it to the spec's scope.  The bound program is cached on the
    spec, so re-simulations of the same elaborated design skip both the
    lookup and the bind."""
    if spec.compiled is not None:
        return spec.compiled
    program = _shared_program(spec)
    bound = program.bind(spec)
    spec.compiled = bound
    return bound


def _shared_program(spec: ProcSpec) -> SharedProgram:
    key = _program_key(spec)
    if key is not None:
        with _program_lock:
            variants = _program_cache.get(key)
            if variants is not None:
                for program in variants:
                    if program.matches(spec):
                        _program_cache.move_to_end(key)
                        _stats["programs_shared"] += 1
                        return program
    # Lowering happens outside the lock (it can be slow); a concurrent
    # thread compiling the same program just adds a duplicate variant,
    # which the per-key cap bounds.
    program = _lower_spec(spec)
    with _program_lock:
        _stats["programs_compiled"] += 1
        if _warm_start_depth:
            _stats["warm_start_compiled"] += 1
        if key is not None and program.shareable:
            variants = _program_cache.get(key)
            if variants is None:
                while len(_program_cache) >= _PROGRAM_CACHE_SIZE:
                    _program_cache.popitem(last=False)
                variants = _program_cache[key] = []
            if len(variants) < _MAX_VARIANTS_PER_KEY:
                variants.append(program)
    return program


def _lower_spec(spec: ProcSpec) -> SharedProgram:
    ctx = LowerCtx(spec.scope)
    refs = (spec.body, spec.events)
    if spec.kind == "comb":
        if spec.port_bind is not None:
            run = _compile_port_bind(spec, ctx)
            refs = (spec.port_bind[1],)
        elif spec.body is None:
            # Elaborator-provided Python callable with no AST body.
            assert spec.pyfunc is not None
            pyfunc = spec.pyfunc
            ctx.shareable = False

            def run(sim, frame, _fn=pyfunc):
                _fn(sim)
        else:
            run = _compile_comb_body(spec, ctx)
    elif spec.kind == "initial":
        assert spec.body is not None
        run = _compile_initial(spec, ctx)
    elif spec.kind == "always":
        run = _compile_always(spec, ctx)
    else:  # pragma: no cover - elaborator invariant
        raise SimulationError(f"unknown process kind {spec.kind!r}")
    return SharedProgram(spec.kind, run, ctx, spec, refs)


# ----------------------------------------------------------------------
# L-value helpers
# ----------------------------------------------------------------------
def _lvalue_width(target: ast.LValue, ctx: LowerCtx) -> int:
    if isinstance(target, ast.LvIdent):
        obj = ctx.lookup(target.name)
        if isinstance(obj, Signal):
            return obj.width
        raise SimulationError(f"cannot size lvalue {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = ctx.lookup(target.name)
        if isinstance(obj, Memory):
            return obj.width
        return 1
    if isinstance(target, ast.LvPart):
        msb = ctx.const_int(target.msb)
        lsb = ctx.const_int(target.lsb)
        return msb - lsb + 1
    if isinstance(target, ast.LvConcat):
        return sum(_lvalue_width(p, ctx) for p in target.parts)
    raise SimulationError(f"unsupported lvalue {target!r}")


def _compile_store(target: ast.LValue, ctx: LowerCtx):
    """Compile a blocking-assignment store: ``store(sim, frame, value)``.

    The incoming value is always pre-coerced to the lvalue's width (the
    assignment compiles its right-hand side with the target width as
    context), so whole-signal and single-bit stores skip the defensive
    resizes the interpreter performs per execution.
    """
    if isinstance(target, ast.LvIdent):
        obj = ctx.lookup(target.name)
        if isinstance(obj, Signal):
            i = ctx.obj_slot(target.name)
            return lambda sim, frame, value: sim.set_signal(frame[i], value)
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = ctx.lookup(target.name)
        index = compile_expr(target.index, ctx)
        if isinstance(obj, Memory):
            i = ctx.obj_slot(target.name)

            def store_word(sim, frame, value):
                addr = index(frame).to_uint()
                if addr is None:
                    return  # write to unknown index is discarded
                sim.write_memory(frame[i], addr, value)
            return store_word
        if isinstance(obj, Signal):
            i = ctx.obj_slot(target.name)
            width = obj.width

            def store_bit(sim, frame, value):
                idx = index(frame).to_uint()
                if idx is None or idx >= width:
                    return
                sig = frame[i]
                sim.set_signal(sig, sig.value.set_part(idx, idx, value))
            return store_bit
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvPart):
        obj = ctx.lookup(target.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot assign to {target.name!r}")
        i = ctx.obj_slot(target.name)
        msb = ctx.const_int(target.msb)
        lsb = ctx.const_int(target.lsb)

        def store_part(sim, frame, value):
            sig = frame[i]
            sim.set_signal(sig, sig.value.set_part(msb, lsb, value))
        return store_part
    if isinstance(target, ast.LvConcat):
        parts = []
        offset = 0
        for part in reversed(target.parts):
            width = _lvalue_width(part, ctx)
            parts.append((_compile_store(part, ctx),
                          offset + width - 1, offset))
            offset += width

        def store_concat(sim, frame, value):
            for store, hi, lo in parts:
                store(sim, frame, value.part(hi, lo))
        return store_concat
    raise SimulationError(f"unsupported lvalue {target!r}")


def _compile_nba_store(target: ast.LValue, ctx: LowerCtx):
    """Compile a non-blocking store: resolve the address at schedule time,
    append the update to ``sim.nba`` (applied in the NBA region)."""
    if isinstance(target, ast.LvIdent):
        obj = ctx.lookup(target.name)
        if isinstance(obj, Signal):
            i = ctx.obj_slot(target.name)
            return lambda sim, frame, value: sim.nba.append(
                ("sig", frame[i], value))
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = ctx.lookup(target.name)
        index = compile_expr(target.index, ctx)
        if isinstance(obj, Memory):
            i = ctx.obj_slot(target.name)

            def sched_word(sim, frame, value):
                addr = index(frame).to_uint()
                if addr is None:
                    return
                sim.nba.append(("mem", frame[i], addr, value))
            return sched_word
        if isinstance(obj, Signal):
            i = ctx.obj_slot(target.name)

            def sched_bit(sim, frame, value):
                idx = index(frame).to_uint()
                if idx is None:
                    return
                sim.nba.append(("part", frame[i], idx, idx, value))
            return sched_bit
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvPart):
        obj = ctx.lookup(target.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot assign to {target.name!r}")
        i = ctx.obj_slot(target.name)
        msb = ctx.const_int(target.msb)
        lsb = ctx.const_int(target.lsb)
        return lambda sim, frame, value: sim.nba.append(
            ("part", frame[i], msb, lsb, value))
    if isinstance(target, ast.LvConcat):
        parts = []
        offset = 0
        for part in reversed(target.parts):
            width = _lvalue_width(part, ctx)
            parts.append((_compile_nba_store(part, ctx),
                          offset + width - 1, offset))
            offset += width

        def sched_concat(sim, frame, value):
            for sched, hi, lo in parts:
                sched(sim, frame, value.part(hi, lo))
        return sched_concat
    raise SimulationError(f"unsupported lvalue {target!r}")


# ----------------------------------------------------------------------
# Event resolution (static: sensitivity lists name plain signals)
# ----------------------------------------------------------------------
def resolve_event_slots(events: tuple[ast.EventExpr, ...],
                        ctx: LowerCtx) -> tuple[tuple[str, int], ...]:
    """Resolve a sensitivity list to ``(edge, signal_slot)`` pairs."""
    resolved = []
    for ev in events:
        if not isinstance(ev.signal, ast.Identifier):
            raise SimulationError(
                "event controls must reference simple signals")
        obj = ctx.lookup(ev.signal.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot wait on {ev.signal.name!r}")
        resolved.append((ev.edge, ctx.obj_slot(ev.signal.name)))
    return tuple(resolved)


# ----------------------------------------------------------------------
# Format strings ($display and friends), pre-parsed into segments
# ----------------------------------------------------------------------
@lru_cache(maxsize=4096)
def _format_segments(fmt: str) -> tuple:
    """Pre-scan a format string into ``("lit", text)`` / ``("arg", spec)``
    segments.  Cached globally by text: drivers repeat the same handful
    of format strings hundreds of times across designs."""
    segments: list[tuple[str, str]] = []
    literal: list[str] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            literal.append(ch)
            i += 1
            continue
        i += 1
        # Skip width/zero-pad modifiers: %0d, %2d, ...
        while i < len(fmt) and fmt[i].isdigit():
            i += 1
        if i >= len(fmt):
            raise SimulationError("dangling % in format string")
        spec = fmt[i]
        i += 1
        if spec == "%":
            literal.append("%")
            continue
        if spec not in "dDbBhHxXtTcsS":
            raise SimulationError(f"unsupported format %{spec}")
        if literal:
            segments.append(("lit", "".join(literal)))
            literal.clear()
        segments.append(("arg", spec))
    if literal:
        segments.append(("lit", "".join(literal)))
    return tuple(segments)


def _compile_format(fmt: str, args: tuple[ast.Expr, ...], ctx: LowerCtx):
    pieces: list[tuple] = []
    literal: list[str] = []

    def flush() -> None:
        if literal:
            pieces.append(("lit", "".join(literal)))
            literal.clear()

    arg_iter = iter(args)
    for kind, payload in _format_segments(fmt):
        if kind == "lit":
            literal.append(payload)
            continue
        spec = payload
        try:
            arg = next(arg_iter)
        except StopIteration:
            raise SimulationError(
                f"missing argument for %{spec} in {fmt!r}") from None
        if spec in ("d", "D"):
            flush()
            pieces.append(("d", compile_expr(arg, ctx),
                           signed_of(arg, ctx)))
        elif spec in ("b", "B"):
            flush()
            pieces.append(("b", compile_expr(arg, ctx)))
        elif spec in ("h", "H", "x", "X"):
            flush()
            pieces.append(("h", compile_expr(arg, ctx)))
        elif spec in ("t", "T"):
            flush()
            pieces.append(("t", compile_expr(arg, ctx)))
        elif spec == "c":
            flush()
            pieces.append(("c", compile_expr(arg, ctx)))
        else:  # "s" / "S"
            if isinstance(arg, ast.StringLit):
                literal.append(arg.text)
            else:
                flush()
                pieces.append(("s", compile_expr(arg, ctx)))
    flush()
    frozen = tuple(pieces)

    def render(frame) -> str:
        out = []
        for piece in frozen:
            kind = piece[0]
            if kind == "lit":
                out.append(piece[1])
            elif kind == "d":
                out.append(piece[1](frame).format_decimal(signed=piece[2]))
            elif kind == "b":
                out.append(piece[1](frame).format_binary())
            elif kind == "h":
                out.append(piece[1](frame).format_hex())
            elif kind == "t":
                out.append(piece[1](frame).format_decimal())
            elif kind == "c":
                u = piece[1](frame).to_uint()
                out.append(chr(u & 0xFF) if u is not None else "x")
            else:  # "s"
                value = piece[1](frame)
                u = value.to_uint() or 0
                raw = u.to_bytes((value.width + 7) // 8, "big")
                out.append(raw.decode("latin-1").lstrip("\x00"))
        return "".join(out)
    return render


def _compile_format_args(args: tuple[ast.Expr, ...], ctx: LowerCtx):
    if not args:
        return lambda frame: ""
    first = args[0]
    if isinstance(first, ast.StringLit):
        return _compile_format(first.text, args[1:], ctx)
    fns = tuple(compile_expr(a, ctx) for a in args)
    return lambda frame: " ".join(fn(frame).format_decimal() for fn in fns)


# ----------------------------------------------------------------------
# Statement compilation
# ----------------------------------------------------------------------
# A compiled statement is ``(suspends, run, ops)``:
#   - pure statements: ``run(sim, frame)`` is a plain callable,
#     ``ops == ((_OP_CALL, run),)``;
#   - suspendable statements: ``run(sim, frame)`` is a generator function
#     and ``ops`` is the flattened op sequence, so enclosing blocks/loops
#     can splice it without an extra generator layer.


def _ops_genfunc(ops):
    """Generator function executing a flattened op sequence.

    This is the suspendable-path driver: one generator per execution of
    the whole sequence, however many suspension points it contains.
    """
    if len(ops) == 1 and ops[0][0] == _OP_GEN:
        return ops[0][1]

    def run(sim, frame):
        for op in ops:
            kind = op[0]
            if kind == _OP_CALL:
                op[1](sim, frame)
            elif kind == _OP_YIELD:
                sim._tick()
                yield frame[op[1]]
            elif kind == _OP_DELAY:
                sim._tick()
                amount = op[1](frame).to_uint()
                if amount is None:
                    raise SimulationError("delay amount is unknown (x)")
                yield ("delay", amount)
            else:
                yield from op[1](sim, frame)
    return run


def compile_stmt(stmt: ast.Stmt, ctx: LowerCtx):
    """Compile one statement; returns ``(suspends, run, ops)``.

    Compilation errors are deferred: the returned closure re-raises them
    at execution time, matching the interpreter's executed-path-only
    laziness.
    """
    try:
        return _compile_stmt(stmt, ctx)
    except HdlError as exc:
        ctx.note_deferred()

        def raise_deferred(sim, frame, _exc=exc):
            # The instance is shared across executions (and pinned by
            # the program cache): shed the previous raise's traceback so
            # repeated executions don't chain frames forever.
            _exc.__traceback__ = None
            _exc.__context__ = None
            raise _exc
        return False, raise_deferred, ((_OP_CALL, raise_deferred),)


def _pure(run):
    return False, run, ((_OP_CALL, run),)


def _compile_stmt(stmt: ast.Stmt, ctx: LowerCtx):
    if isinstance(stmt, ast.Block):
        return _compile_block(stmt, ctx)

    if isinstance(stmt, ast.BlockingAssign):
        width = _lvalue_width(stmt.target, ctx)
        value = compile_coerced(stmt.value, ctx, width,
                                signed_of(stmt.value, ctx))
        store = _compile_store(stmt.target, ctx)
        return _pure(lambda sim, frame: store(sim, frame, value(frame)))

    if isinstance(stmt, ast.NonblockingAssign):
        width = _lvalue_width(stmt.target, ctx)
        value = compile_coerced(stmt.value, ctx, width,
                                signed_of(stmt.value, ctx))
        sched = _compile_nba_store(stmt.target, ctx)
        return _pure(lambda sim, frame: sched(sim, frame, value(frame)))

    if isinstance(stmt, ast.If):
        return _compile_if(stmt, ctx)

    if isinstance(stmt, ast.Case):
        return _compile_case(stmt, ctx)

    if isinstance(stmt, ast.For):
        return _compile_for(stmt, ctx)

    if isinstance(stmt, ast.While):
        return _compile_while(stmt, ctx)

    if isinstance(stmt, ast.Repeat):
        return _compile_repeat(stmt, ctx)

    if isinstance(stmt, ast.Forever):
        return _compile_forever(stmt, ctx)

    if isinstance(stmt, ast.DelayStmt):
        inner_ops = ()
        if stmt.stmt is not None:
            _, _, inner_ops = compile_stmt(stmt.stmt, ctx)
        const = _const_delay_request(stmt.amount)
        if const is not None:
            ops = ((_OP_YIELD, ctx.lit_slot(const)),) + inner_ops
        else:
            amount = compile_expr(stmt.amount, ctx)
            ops = ((_OP_DELAY, amount),) + inner_ops
        return True, _ops_genfunc(ops), ops

    if isinstance(stmt, ast.EventControl):
        if stmt.events is None:
            raise SimulationError(
                "@(*) is not supported as a procedural statement")
        request = ctx.request_slot(resolve_event_slots(stmt.events, ctx))
        inner_ops = ()
        if stmt.stmt is not None:
            _, _, inner_ops = compile_stmt(stmt.stmt, ctx)
        ops = ((_OP_YIELD, request),) + inner_ops
        return True, _ops_genfunc(ops), ops

    if isinstance(stmt, ast.SysTaskCall):
        return _pure(_compile_sys_task(stmt, ctx))

    if isinstance(stmt, ast.NullStmt):
        return _pure(lambda sim, frame: None)

    raise SimulationError(f"cannot execute statement {stmt!r}")


def _const_delay_request(amount: ast.Expr):
    """``("delay", n)`` when the delay amount is a defined constant."""
    if isinstance(amount, ast.Number):
        value = Logic(amount.width if amount.width is not None else 32,
                      amount.val, amount.xmask).to_uint()
        if value is not None:
            return ("delay", value)
    return None


def _compile_block(stmt: ast.Block, ctx: LowerCtx):
    children = tuple(compile_stmt(s, ctx) for s in stmt.stmts)
    if len(children) == 1:
        return children[0]
    if not any(susp for susp, _, _ in children):
        fns = tuple(run for _, run, _ in children)
        if not fns:
            return _pure(lambda sim, frame: None)

        def run_pure(sim, frame):
            for fn in fns:
                fn(sim, frame)
        return _pure(run_pure)

    # Splice child op sequences into one flat program: consecutive leaf
    # suspensions cost zero generator creations.
    ops: list[tuple] = []
    for _, _, child_ops in children:
        ops.extend(child_ops)
    frozen = tuple(ops)
    return True, _ops_genfunc(frozen), frozen


def _compile_if(stmt: ast.If, ctx: LowerCtx):
    cond = compile_expr(stmt.cond, ctx)
    t_susp, t_run, _ = compile_stmt(stmt.then, ctx)
    if stmt.other is not None:
        e_susp, e_run, _ = compile_stmt(stmt.other, ctx)
    else:
        e_susp, e_run = False, None

    if not t_susp and not e_susp:
        def run_pure(sim, frame):
            if cond(frame).truth() is True:
                t_run(sim, frame)
            elif e_run is not None:
                e_run(sim, frame)
        return _pure(run_pure)

    def run_mixed(sim, frame):
        if cond(frame).truth() is True:
            if t_susp:
                yield from t_run(sim, frame)
            else:
                t_run(sim, frame)
        elif e_run is not None:
            if e_susp:
                yield from e_run(sim, frame)
            else:
                e_run(sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_case(stmt: ast.Case, ctx: LowerCtx):
    kind = stmt.kind
    subject = compile_expr(stmt.subject, ctx)
    entries: list[tuple] = []
    default = None
    for item in stmt.items:
        body = compile_stmt(item.body, ctx)
        if not item.labels:
            default = body  # like the interpreter: the last default wins
            continue
        # Deferred label compilation: the interpreter evaluates labels
        # in order only until one matches, so a broken label after the
        # match point must not fail the whole case statement.
        labels = tuple(compile_expr_deferred(label, ctx)
                       for label in item.labels)
        entries.append((labels, body))
    frozen = tuple(entries)
    suspends = (any(body[0] for _, body in frozen)
                or (default is not None and default[0]))

    if not suspends:
        def run_pure(sim, frame):
            value = subject(frame)
            for labels, (_, body, _) in frozen:
                for label in labels:
                    if case_match(kind, value, label(frame)):
                        body(sim, frame)
                        return
            if default is not None:
                default[1](sim, frame)
        return _pure(run_pure)

    def run_mixed(sim, frame):
        value = subject(frame)
        for labels, (b_susp, body, _) in frozen:
            for label in labels:
                if case_match(kind, value, label(frame)):
                    if b_susp:
                        yield from body(sim, frame)
                    else:
                        body(sim, frame)
                    return
        if default is not None:
            if default[0]:
                yield from default[1](sim, frame)
            else:
                default[1](sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_for(stmt: ast.For, ctx: LowerCtx):
    _, init, _ = compile_stmt(stmt.init, ctx)
    _, step, _ = compile_stmt(stmt.step, ctx)
    cond = compile_expr(stmt.cond, ctx)
    b_susp, body, body_ops = compile_stmt(stmt.body, ctx)

    if not b_susp:
        def run_pure(sim, frame):
            init(sim, frame)
            while cond(frame).truth() is True:
                sim._tick()
                body(sim, frame)
                step(sim, frame)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim, frame):
        init(sim, frame)
        while cond(frame).truth() is True:
            sim._tick()
            yield from body_run(sim, frame)
            step(sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_while(stmt: ast.While, ctx: LowerCtx):
    cond = compile_expr(stmt.cond, ctx)
    b_susp, body, body_ops = compile_stmt(stmt.body, ctx)

    if not b_susp:
        def run_pure(sim, frame):
            while cond(frame).truth() is True:
                sim._tick()
                body(sim, frame)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim, frame):
        while cond(frame).truth() is True:
            sim._tick()
            yield from body_run(sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_repeat(stmt: ast.Repeat, ctx: LowerCtx):
    count = compile_expr(stmt.count, ctx)
    b_susp, body, body_ops = compile_stmt(stmt.body, ctx)

    if not b_susp:
        def run_pure(sim, frame):
            for _ in range(count(frame).to_uint() or 0):
                sim._tick()
                body(sim, frame)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim, frame):
        for _ in range(count(frame).to_uint() or 0):
            sim._tick()
            yield from body_run(sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_forever(stmt: ast.Forever, ctx: LowerCtx):
    b_susp, body, body_ops = compile_stmt(stmt.body, ctx)

    if not b_susp:
        def run_pure(sim, frame):
            while True:
                sim._tick()
                body(sim, frame)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim, frame):
        while True:
            sim._tick()
            yield from body_run(sim, frame)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_sys_task(stmt: ast.SysTaskCall, ctx: LowerCtx):
    name = stmt.name
    if name in ("$finish", "$stop"):
        def run_finish(sim, frame):
            raise FinishRequest()
        return run_finish
    if name in ("$display", "$write"):
        render = _compile_format_args(stmt.args, ctx)
        return lambda sim, frame: sim.stdout.append(render(frame))
    if name in ("$fdisplay", "$fwrite"):
        if not stmt.args:
            raise SimulationError(f"{name} requires a descriptor")
        fd_expr = compile_expr(stmt.args[0], ctx)
        render = _compile_format_args(stmt.args[1:], ctx)
        is_display = name == "$fdisplay"

        def run_fwrite(sim, frame):
            fd = fd_expr(frame).to_uint()
            if fd is None or fd not in sim._fd_lines:
                raise SimulationError(f"{name}: invalid file descriptor")
            text = render(frame)
            if is_display:
                line = sim._fd_partial[fd] + text
                sim._fd_partial[fd] = ""
                sim._fd_lines[fd].append(line)
            else:
                sim._fd_partial[fd] += text
        return run_fwrite
    if name in ("$fclose", "$dumpfile", "$dumpvars", "$timeformat",
                "$monitor", "$fflush"):
        return lambda sim, frame: None
    raise SimulationError(f"unsupported system task {name!r}")


# ----------------------------------------------------------------------
# Process compilation
# ----------------------------------------------------------------------
def _compile_comb_body(spec: ProcSpec, ctx: LowerCtx):
    suspends, body, _ = compile_stmt(spec.body, ctx)
    if not suspends:
        return body
    # The guard message embeds the process label (prefix + construct
    # suffix); a program carrying it only transfers between scopes with
    # equal prefixes — which, for the same AST body, implies equal labels.
    ctx.note_deferred()
    label = spec.label

    def run_guarded(sim, frame):
        for _ in body(sim, frame):
            raise SimulationError(
                "delay/event control inside combinational block "
                f"{label!r}")
    return run_guarded


def _compile_port_bind(spec: ProcSpec, ctx: LowerCtx):
    direction, source, sink = spec.port_bind
    if direction == "in":
        # Parent expression drives the child port signal (the sink slot
        # is filled from the spec at bind time; its width is part of the
        # program's match criteria).
        si = ctx.sink_slot()
        value = compile_coerced(source, ctx, sink.width, False)
        return lambda sim, frame: sim.set_signal(frame[si], value(frame))
    # Output binds connect two concrete Signal objects — the child's
    # port signal lives outside the parent scope, so there is no name to
    # rebind by.  The whole program is a single closure; compiling it
    # per elaboration costs the same as binding would.
    ctx.shareable = False
    width = sink.width
    if source.width == width:
        return lambda sim, frame: sim.set_signal(sink, source.value)
    return lambda sim, frame: sim.set_signal(sink,
                                             source.value.resize(width))


def _compile_initial(spec: ProcSpec, ctx: LowerCtx):
    suspends, run, ops = compile_stmt(spec.body, ctx)
    if suspends:
        return _ops_genfunc(ops)

    def gen(sim, frame):
        run(sim, frame)
        return
        yield  # pragma: no cover - makes this a generator function
    return gen


def _compile_always(spec: ProcSpec, ctx: LowerCtx):
    assert spec.body is not None
    events = spec.events or ()
    pairs = resolve_event_slots(events, ctx) if events else ()
    req_idx = ctx.request_slot(pairs) if pairs else None
    suspends, body, body_ops = compile_stmt(spec.body, ctx)

    if pairs and not suspends:
        k = req_idx

        def run_clocked(sim, frame):
            request = frame[k]
            while True:
                sim._tick()
                yield request
                body(sim, frame)
        return run_clocked

    if suspends:
        # Per-clock-edge hot path (e.g. `always #5 clk = ~clk`): the
        # op-dispatch loop from _ops_genfunc is inlined on purpose so no
        # body generator is created per iteration, forever.  Keep the
        # dispatch in sync with _ops_genfunc; the golden-equivalence and
        # differential-fuzz suites pin the semantics.
        k = req_idx

        def run_mixed_always(sim, frame):
            request = frame[k] if k is not None else None
            while True:
                sim._tick()
                if request is not None:
                    yield request
                for op in body_ops:
                    kind = op[0]
                    if kind == _OP_CALL:
                        op[1](sim, frame)
                    elif kind == _OP_YIELD:
                        sim._tick()
                        yield frame[op[1]]
                    elif kind == _OP_DELAY:
                        sim._tick()
                        amount = op[1](frame).to_uint()
                        if amount is None:
                            raise SimulationError(
                                "delay amount is unknown (x)")
                        yield ("delay", amount)
                    else:
                        yield from op[1](sim, frame)
        return run_mixed_always

    def run_free(sim, frame):
        # No suspension points at all: the statement budget is the only
        # brake, exactly like the interpreted engine.
        while True:
            sim._tick()
            body(sim, frame)
        yield  # pragma: no cover - unreachable; makes this a generator
    return run_free
