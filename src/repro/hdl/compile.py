"""Compile pass: ``ProcSpec`` bodies -> precompiled Python closure trees.

This is the second execution engine of :mod:`repro.hdl`.  The original
engine (:meth:`Simulator._exec`) re-walks the statement AST with
``isinstance`` dispatch on every executed statement; this module lowers
each process body *once*:

- expressions are compiled through the per-scope compiled-expression
  cache in :mod:`repro.hdl.eval` (name bindings, widths, signedness and
  constant part-select bounds are all resolved at compile time),
- pure statements (no suspension point in their subtree) become plain
  callables ``run(sim)``,
- statement sequences that do suspend become flat *op lists* executed by
  a single driver generator, so a body like ``@(posedge clk); #1;``
  yields its precomputed suspension requests directly instead of
  creating a nested generator per statement,
- ``$display`` format strings are pre-parsed into segment lists and
  event sensitivity lists are resolved to signal objects up front.

Compiled programs are cached on the ``ProcSpec`` (``spec.compiled``), so
a design elaborated once — e.g. via the elaboration cache in
:mod:`repro.core.simulation` — pays the compile cost once and every
subsequent :class:`Simulator` run reuses the closures.

The statement budget (``sim._tick``) is charged at loop back-edges and
suspension points rather than per straight-line statement: loops are the
only unbounded constructs, so the budget still cuts off every runaway
program, while the hot straight-line path stays free of bookkeeping.

Laziness parity: the interpreter only discovers errors on the executed
path, so statement compilation is guarded — a statement whose lowering
raises an :class:`HdlError` is replaced by a closure that re-raises that
same error when (and only when) the statement executes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from . import ast
from .elaborate import Memory, ProcSpec, Scope, Signal
from .errors import FinishRequest, HdlError, SimulationError
from .eval import (case_match, compile_coerced, compile_expr,
                   compile_expr_deferred, signed_of)
from .logic import Logic

# Op codes for flattened suspendable statement sequences.
_OP_CALL = 0     # (0, fn)      -> fn(sim)
_OP_YIELD = 1    # (1, request) -> yield the precomputed request tuple
_OP_DELAY = 2    # (2, amt_fn)  -> evaluate the delay amount, then yield
_OP_GEN = 3      # (3, genfn)   -> yield from genfn(sim)


class CompiledProc:
    """A compiled process program.

    ``kind`` mirrors the spec's kind.  For ``comb`` processes ``run`` is
    a plain callable ``run(sim)``; for ``initial``/``always`` it is a
    generator function ``run(sim)`` yielding the simulator's suspension
    requests (``("delay", n)`` / ``("wait", resolved_events)``).
    """

    __slots__ = ("kind", "run")

    def __init__(self, kind: str, run: Callable):
        self.kind = kind
        self.run = run


# ----------------------------------------------------------------------
# L-value helpers
# ----------------------------------------------------------------------
def _lvalue_width(target: ast.LValue, scope: Scope) -> int:
    if isinstance(target, ast.LvIdent):
        obj = scope.lookup(target.name)
        if isinstance(obj, Signal):
            return obj.width
        raise SimulationError(f"cannot size lvalue {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = scope.lookup(target.name)
        if isinstance(obj, Memory):
            return obj.width
        return 1
    if isinstance(target, ast.LvPart):
        msb = scope.const_int(target.msb)
        lsb = scope.const_int(target.lsb)
        return msb - lsb + 1
    if isinstance(target, ast.LvConcat):
        return sum(_lvalue_width(p, scope) for p in target.parts)
    raise SimulationError(f"unsupported lvalue {target!r}")


def _compile_store(target: ast.LValue, scope: Scope):
    """Compile a blocking-assignment store: ``store(sim, value)``.

    The incoming value is always pre-coerced to the lvalue's width (the
    assignment compiles its right-hand side with the target width as
    context), so whole-signal and single-bit stores skip the defensive
    resizes the interpreter performs per execution.
    """
    if isinstance(target, ast.LvIdent):
        obj = scope.lookup(target.name)
        if isinstance(obj, Signal):
            return lambda sim, value: sim.set_signal(obj, value)
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = scope.lookup(target.name)
        index = compile_expr(target.index, scope)
        if isinstance(obj, Memory):
            def store_word(sim, value):
                addr = index().to_uint()
                if addr is None:
                    return  # write to unknown index is discarded
                sim.write_memory(obj, addr, value)
            return store_word
        if isinstance(obj, Signal):
            def store_bit(sim, value):
                idx = index().to_uint()
                if idx is None or idx >= obj.width:
                    return
                sim.set_signal(
                    obj, obj.value.set_part(idx, idx, value))
            return store_bit
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvPart):
        obj = scope.lookup(target.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot assign to {target.name!r}")
        msb = scope.const_int(target.msb)
        lsb = scope.const_int(target.lsb)
        return lambda sim, value: sim.set_signal(
            obj, obj.value.set_part(msb, lsb, value))
    if isinstance(target, ast.LvConcat):
        parts = []
        offset = 0
        for part in reversed(target.parts):
            width = _lvalue_width(part, scope)
            parts.append((_compile_store(part, scope),
                          offset + width - 1, offset))
            offset += width

        def store_concat(sim, value):
            for store, hi, lo in parts:
                store(sim, value.part(hi, lo))
        return store_concat
    raise SimulationError(f"unsupported lvalue {target!r}")


def _compile_nba_store(target: ast.LValue, scope: Scope):
    """Compile a non-blocking store: resolve the address at schedule time,
    append the update to ``sim.nba`` (applied in the NBA region)."""
    if isinstance(target, ast.LvIdent):
        obj = scope.lookup(target.name)
        if isinstance(obj, Signal):
            return lambda sim, value: sim.nba.append(("sig", obj, value))
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvIndex):
        obj = scope.lookup(target.name)
        index = compile_expr(target.index, scope)
        if isinstance(obj, Memory):
            def sched_word(sim, value):
                addr = index().to_uint()
                if addr is None:
                    return
                sim.nba.append(("mem", obj, addr, value))
            return sched_word
        if isinstance(obj, Signal):
            def sched_bit(sim, value):
                idx = index().to_uint()
                if idx is None:
                    return
                sim.nba.append(("part", obj, idx, idx, value))
            return sched_bit
        raise SimulationError(f"cannot assign to {target.name!r}")
    if isinstance(target, ast.LvPart):
        obj = scope.lookup(target.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot assign to {target.name!r}")
        msb = scope.const_int(target.msb)
        lsb = scope.const_int(target.lsb)
        return lambda sim, value: sim.nba.append(
            ("part", obj, msb, lsb, value))
    if isinstance(target, ast.LvConcat):
        parts = []
        offset = 0
        for part in reversed(target.parts):
            width = _lvalue_width(part, scope)
            parts.append((_compile_nba_store(part, scope),
                          offset + width - 1, offset))
            offset += width

        def sched_concat(sim, value):
            for sched, hi, lo in parts:
                sched(sim, value.part(hi, lo))
        return sched_concat
    raise SimulationError(f"unsupported lvalue {target!r}")


# ----------------------------------------------------------------------
# Event resolution (static: sensitivity lists name plain signals)
# ----------------------------------------------------------------------
def resolve_events(events: tuple[ast.EventExpr, ...],
                   scope: Scope) -> tuple[tuple[str, Signal], ...]:
    resolved = []
    for ev in events:
        if not isinstance(ev.signal, ast.Identifier):
            raise SimulationError(
                "event controls must reference simple signals")
        obj = scope.lookup(ev.signal.name)
        if not isinstance(obj, Signal):
            raise SimulationError(f"cannot wait on {ev.signal.name!r}")
        resolved.append((ev.edge, obj))
    return tuple(resolved)


# ----------------------------------------------------------------------
# Format strings ($display and friends), pre-parsed into segments
# ----------------------------------------------------------------------
@lru_cache(maxsize=4096)
def _format_segments(fmt: str) -> tuple:
    """Pre-scan a format string into ``("lit", text)`` / ``("arg", spec)``
    segments.  Cached globally by text: drivers repeat the same handful
    of format strings hundreds of times across designs."""
    segments: list[tuple[str, str]] = []
    literal: list[str] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            literal.append(ch)
            i += 1
            continue
        i += 1
        # Skip width/zero-pad modifiers: %0d, %2d, ...
        while i < len(fmt) and fmt[i].isdigit():
            i += 1
        if i >= len(fmt):
            raise SimulationError("dangling % in format string")
        spec = fmt[i]
        i += 1
        if spec == "%":
            literal.append("%")
            continue
        if spec not in "dDbBhHxXtTcsS":
            raise SimulationError(f"unsupported format %{spec}")
        if literal:
            segments.append(("lit", "".join(literal)))
            literal.clear()
        segments.append(("arg", spec))
    if literal:
        segments.append(("lit", "".join(literal)))
    return tuple(segments)


def _compile_format(fmt: str, args: tuple[ast.Expr, ...], scope: Scope):
    pieces: list[tuple] = []
    literal: list[str] = []

    def flush() -> None:
        if literal:
            pieces.append(("lit", "".join(literal)))
            literal.clear()

    arg_iter = iter(args)
    for kind, payload in _format_segments(fmt):
        if kind == "lit":
            literal.append(payload)
            continue
        spec = payload
        try:
            arg = next(arg_iter)
        except StopIteration:
            raise SimulationError(
                f"missing argument for %{spec} in {fmt!r}") from None
        if spec in ("d", "D"):
            flush()
            pieces.append(("d", compile_expr(arg, scope),
                           signed_of(arg, scope)))
        elif spec in ("b", "B"):
            flush()
            pieces.append(("b", compile_expr(arg, scope)))
        elif spec in ("h", "H", "x", "X"):
            flush()
            pieces.append(("h", compile_expr(arg, scope)))
        elif spec in ("t", "T"):
            flush()
            pieces.append(("t", compile_expr(arg, scope)))
        elif spec == "c":
            flush()
            pieces.append(("c", compile_expr(arg, scope)))
        else:  # "s" / "S"
            if isinstance(arg, ast.StringLit):
                literal.append(arg.text)
            else:
                flush()
                pieces.append(("s", compile_expr(arg, scope)))
    flush()
    frozen = tuple(pieces)

    def render() -> str:
        out = []
        for piece in frozen:
            kind = piece[0]
            if kind == "lit":
                out.append(piece[1])
            elif kind == "d":
                out.append(piece[1]().format_decimal(signed=piece[2]))
            elif kind == "b":
                out.append(piece[1]().format_binary())
            elif kind == "h":
                out.append(piece[1]().format_hex())
            elif kind == "t":
                out.append(piece[1]().format_decimal())
            elif kind == "c":
                u = piece[1]().to_uint()
                out.append(chr(u & 0xFF) if u is not None else "x")
            else:  # "s"
                value = piece[1]()
                u = value.to_uint() or 0
                raw = u.to_bytes((value.width + 7) // 8, "big")
                out.append(raw.decode("latin-1").lstrip("\x00"))
        return "".join(out)
    return render


def _compile_format_args(args: tuple[ast.Expr, ...], scope: Scope):
    if not args:
        return lambda: ""
    first = args[0]
    if isinstance(first, ast.StringLit):
        return _compile_format(first.text, args[1:], scope)
    fns = tuple(compile_expr(a, scope) for a in args)
    return lambda: " ".join(fn().format_decimal() for fn in fns)


# ----------------------------------------------------------------------
# Statement compilation
# ----------------------------------------------------------------------
# A compiled statement is ``(suspends, run, ops)``:
#   - pure statements: ``run(sim)`` is a plain callable,
#     ``ops == ((_OP_CALL, run),)``;
#   - suspendable statements: ``run(sim)`` is a generator function and
#     ``ops`` is the flattened op sequence, so enclosing blocks/loops can
#     splice it without an extra generator layer.


def _ops_genfunc(ops):
    """Generator function executing a flattened op sequence.

    This is the suspendable-path driver: one generator per execution of
    the whole sequence, however many suspension points it contains.
    """
    if len(ops) == 1 and ops[0][0] == _OP_GEN:
        return ops[0][1]

    def run(sim):
        for op in ops:
            kind = op[0]
            if kind == _OP_CALL:
                op[1](sim)
            elif kind == _OP_YIELD:
                sim._tick()
                yield op[1]
            elif kind == _OP_DELAY:
                sim._tick()
                amount = op[1]().to_uint()
                if amount is None:
                    raise SimulationError("delay amount is unknown (x)")
                yield ("delay", amount)
            else:
                yield from op[1](sim)
    return run


def compile_stmt(stmt: ast.Stmt, scope: Scope):
    """Compile one statement; returns ``(suspends, run, ops)``.

    Compilation errors are deferred: the returned closure re-raises them
    at execution time, matching the interpreter's executed-path-only
    laziness.
    """
    try:
        return _compile_stmt(stmt, scope)
    except HdlError as exc:
        def raise_deferred(sim, _exc=exc):
            raise _exc
        return False, raise_deferred, ((_OP_CALL, raise_deferred),)


def _pure(run):
    return False, run, ((_OP_CALL, run),)


def _compile_stmt(stmt: ast.Stmt, scope: Scope):
    if isinstance(stmt, ast.Block):
        return _compile_block(stmt, scope)

    if isinstance(stmt, ast.BlockingAssign):
        width = _lvalue_width(stmt.target, scope)
        value = compile_coerced(stmt.value, scope, width,
                                signed_of(stmt.value, scope))
        store = _compile_store(stmt.target, scope)
        return _pure(lambda sim: store(sim, value()))

    if isinstance(stmt, ast.NonblockingAssign):
        width = _lvalue_width(stmt.target, scope)
        value = compile_coerced(stmt.value, scope, width,
                                signed_of(stmt.value, scope))
        sched = _compile_nba_store(stmt.target, scope)
        return _pure(lambda sim: sched(sim, value()))

    if isinstance(stmt, ast.If):
        return _compile_if(stmt, scope)

    if isinstance(stmt, ast.Case):
        return _compile_case(stmt, scope)

    if isinstance(stmt, ast.For):
        return _compile_for(stmt, scope)

    if isinstance(stmt, ast.While):
        return _compile_while(stmt, scope)

    if isinstance(stmt, ast.Repeat):
        return _compile_repeat(stmt, scope)

    if isinstance(stmt, ast.Forever):
        return _compile_forever(stmt, scope)

    if isinstance(stmt, ast.DelayStmt):
        inner_ops = ()
        if stmt.stmt is not None:
            _, _, inner_ops = compile_stmt(stmt.stmt, scope)
        const = _const_delay_request(stmt.amount, scope)
        if const is not None:
            ops = ((_OP_YIELD, const),) + inner_ops
        else:
            amount = compile_expr(stmt.amount, scope)
            ops = ((_OP_DELAY, amount),) + inner_ops
        return True, _ops_genfunc(ops), ops

    if isinstance(stmt, ast.EventControl):
        if stmt.events is None:
            raise SimulationError(
                "@(*) is not supported as a procedural statement")
        request = ("wait", resolve_events(stmt.events, scope))
        inner_ops = ()
        if stmt.stmt is not None:
            _, _, inner_ops = compile_stmt(stmt.stmt, scope)
        ops = ((_OP_YIELD, request),) + inner_ops
        return True, _ops_genfunc(ops), ops

    if isinstance(stmt, ast.SysTaskCall):
        return _pure(_compile_sys_task(stmt, scope))

    if isinstance(stmt, ast.NullStmt):
        return _pure(lambda sim: None)

    raise SimulationError(f"cannot execute statement {stmt!r}")


def _const_delay_request(amount: ast.Expr, scope: Scope):
    """``("delay", n)`` when the delay amount is a defined constant."""
    if isinstance(amount, ast.Number):
        value = Logic(amount.width if amount.width is not None else 32,
                      amount.val, amount.xmask).to_uint()
        if value is not None:
            return ("delay", value)
    return None


def _compile_block(stmt: ast.Block, scope: Scope):
    children = tuple(compile_stmt(s, scope) for s in stmt.stmts)
    if len(children) == 1:
        return children[0]
    if not any(susp for susp, _, _ in children):
        fns = tuple(run for _, run, _ in children)
        if not fns:
            return _pure(lambda sim: None)

        def run_pure(sim):
            for fn in fns:
                fn(sim)
        return _pure(run_pure)

    # Splice child op sequences into one flat program: consecutive leaf
    # suspensions cost zero generator creations.
    ops: list[tuple] = []
    for _, _, child_ops in children:
        ops.extend(child_ops)
    frozen = tuple(ops)
    return True, _ops_genfunc(frozen), frozen


def _compile_if(stmt: ast.If, scope: Scope):
    cond = compile_expr(stmt.cond, scope)
    t_susp, t_run, _ = compile_stmt(stmt.then, scope)
    if stmt.other is not None:
        e_susp, e_run, _ = compile_stmt(stmt.other, scope)
    else:
        e_susp, e_run = False, None

    if not t_susp and not e_susp:
        def run_pure(sim):
            if cond().truth() is True:
                t_run(sim)
            elif e_run is not None:
                e_run(sim)
        return _pure(run_pure)

    def run_mixed(sim):
        if cond().truth() is True:
            if t_susp:
                yield from t_run(sim)
            else:
                t_run(sim)
        elif e_run is not None:
            if e_susp:
                yield from e_run(sim)
            else:
                e_run(sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_case(stmt: ast.Case, scope: Scope):
    kind = stmt.kind
    subject = compile_expr(stmt.subject, scope)
    entries: list[tuple] = []
    default = None
    for item in stmt.items:
        body = compile_stmt(item.body, scope)
        if not item.labels:
            default = body  # like the interpreter: the last default wins
            continue
        # Deferred label compilation: the interpreter evaluates labels
        # in order only until one matches, so a broken label after the
        # match point must not fail the whole case statement.
        labels = tuple(compile_expr_deferred(label, scope)
                       for label in item.labels)
        entries.append((labels, body))
    frozen = tuple(entries)
    suspends = (any(body[0] for _, body in frozen)
                or (default is not None and default[0]))

    if not suspends:
        def run_pure(sim):
            value = subject()
            for labels, (_, body, _) in frozen:
                for label in labels:
                    if case_match(kind, value, label()):
                        body(sim)
                        return
            if default is not None:
                default[1](sim)
        return _pure(run_pure)

    def run_mixed(sim):
        value = subject()
        for labels, (b_susp, body, _) in frozen:
            for label in labels:
                if case_match(kind, value, label()):
                    if b_susp:
                        yield from body(sim)
                    else:
                        body(sim)
                    return
        if default is not None:
            if default[0]:
                yield from default[1](sim)
            else:
                default[1](sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_for(stmt: ast.For, scope: Scope):
    _, init, _ = compile_stmt(stmt.init, scope)
    _, step, _ = compile_stmt(stmt.step, scope)
    cond = compile_expr(stmt.cond, scope)
    b_susp, body, body_ops = compile_stmt(stmt.body, scope)

    if not b_susp:
        def run_pure(sim):
            init(sim)
            while cond().truth() is True:
                sim._tick()
                body(sim)
                step(sim)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim):
        init(sim)
        while cond().truth() is True:
            sim._tick()
            yield from body_run(sim)
            step(sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_while(stmt: ast.While, scope: Scope):
    cond = compile_expr(stmt.cond, scope)
    b_susp, body, body_ops = compile_stmt(stmt.body, scope)

    if not b_susp:
        def run_pure(sim):
            while cond().truth() is True:
                sim._tick()
                body(sim)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim):
        while cond().truth() is True:
            sim._tick()
            yield from body_run(sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_repeat(stmt: ast.Repeat, scope: Scope):
    count = compile_expr(stmt.count, scope)
    b_susp, body, body_ops = compile_stmt(stmt.body, scope)

    if not b_susp:
        def run_pure(sim):
            for _ in range(count().to_uint() or 0):
                sim._tick()
                body(sim)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim):
        for _ in range(count().to_uint() or 0):
            sim._tick()
            yield from body_run(sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_forever(stmt: ast.Forever, scope: Scope):
    b_susp, body, body_ops = compile_stmt(stmt.body, scope)

    if not b_susp:
        def run_pure(sim):
            while True:
                sim._tick()
                body(sim)
        return _pure(run_pure)

    body_run = _ops_genfunc(body_ops)

    def run_mixed(sim):
        while True:
            sim._tick()
            yield from body_run(sim)
    return True, run_mixed, ((_OP_GEN, run_mixed),)


def _compile_sys_task(stmt: ast.SysTaskCall, scope: Scope):
    name = stmt.name
    if name in ("$finish", "$stop"):
        def run_finish(sim):
            raise FinishRequest()
        return run_finish
    if name in ("$display", "$write"):
        render = _compile_format_args(stmt.args, scope)
        return lambda sim: sim.stdout.append(render())
    if name in ("$fdisplay", "$fwrite"):
        if not stmt.args:
            raise SimulationError(f"{name} requires a descriptor")
        fd_expr = compile_expr(stmt.args[0], scope)
        render = _compile_format_args(stmt.args[1:], scope)
        is_display = name == "$fdisplay"

        def run_fwrite(sim):
            fd = fd_expr().to_uint()
            if fd is None or fd not in sim._fd_lines:
                raise SimulationError(f"{name}: invalid file descriptor")
            text = render()
            if is_display:
                line = sim._fd_partial[fd] + text
                sim._fd_partial[fd] = ""
                sim._fd_lines[fd].append(line)
            else:
                sim._fd_partial[fd] += text
        return run_fwrite
    if name in ("$fclose", "$dumpfile", "$dumpvars", "$timeformat",
                "$monitor", "$fflush"):
        return lambda sim: None
    raise SimulationError(f"unsupported system task {name!r}")


def contains_loop(stmt: ast.Stmt | None) -> bool:
    """True when the statement subtree contains a loop construct.

    Drives the adaptive compile policy for ``initial`` bodies: a
    straight-line body executes each statement once, so compiling it can
    only pay off across *re-runs* of the design (template reuse), while
    a loopy body amortizes the compile within a single run.
    """
    if stmt is None:
        return False
    if isinstance(stmt, (ast.For, ast.While, ast.Repeat, ast.Forever)):
        return True
    if isinstance(stmt, ast.Block):
        return any(contains_loop(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        return contains_loop(stmt.then) or contains_loop(stmt.other)
    if isinstance(stmt, ast.Case):
        return any(contains_loop(item.body) for item in stmt.items)
    if isinstance(stmt, (ast.DelayStmt, ast.EventControl)):
        return contains_loop(stmt.stmt)
    return False


# ----------------------------------------------------------------------
# Process compilation
# ----------------------------------------------------------------------
def compile_spec(spec: ProcSpec) -> CompiledProc:
    """Compile one elaborated process; the result is cached on the spec so
    re-simulations of the same :class:`~repro.hdl.elaborate.Design`
    (e.g. through the elaboration cache) reuse the closures."""
    if spec.compiled is not None:
        return spec.compiled
    if spec.kind == "comb":
        program = CompiledProc("comb", _compile_comb(spec))
    elif spec.kind == "initial":
        assert spec.body is not None
        program = CompiledProc("initial", _compile_initial(spec))
    elif spec.kind == "always":
        program = CompiledProc("always", _compile_always(spec))
    else:  # pragma: no cover - elaborator invariant
        raise SimulationError(f"unknown process kind {spec.kind!r}")
    spec.compiled = program
    return program


def _compile_comb(spec: ProcSpec):
    if spec.port_bind is not None:
        return _compile_port_bind(spec)
    if spec.body is None:
        # Elaborator-provided Python callable with no AST body.
        assert spec.pyfunc is not None
        return spec.pyfunc
    suspends, body, _ = compile_stmt(spec.body, spec.scope)
    if not suspends:
        return body
    label = spec.label

    def run_guarded(sim):
        for _ in body(sim):
            raise SimulationError(
                f"delay/event control inside combinational block "
                f"{label!r}")
    return run_guarded


def _compile_port_bind(spec: ProcSpec):
    direction, source, sink = spec.port_bind
    width = sink.width
    if direction == "in":
        # Parent expression drives the child port signal.
        value = compile_coerced(source, spec.scope, width, False)
        return lambda sim: sim.set_signal(sink, value())
    # Child output signal drives the parent net.
    if source.width == width:
        return lambda sim: sim.set_signal(sink, source.value)
    return lambda sim: sim.set_signal(sink, source.value.resize(width))


def _compile_initial(spec: ProcSpec):
    suspends, run, ops = compile_stmt(spec.body, spec.scope)
    if suspends:
        return _ops_genfunc(ops)

    def gen(sim):
        run(sim)
        return
        yield  # pragma: no cover - makes this a generator function
    return gen


def _compile_always(spec: ProcSpec):
    assert spec.body is not None
    events = spec.events or ()
    resolved = resolve_events(events, spec.scope) if events else ()
    request = ("wait", resolved)
    suspends, body, body_ops = compile_stmt(spec.body, spec.scope)

    if resolved and not suspends:
        def run_clocked(sim):
            while True:
                sim._tick()
                yield request
                body(sim)
        return run_clocked

    if suspends:
        # Per-clock-edge hot path (e.g. `always #5 clk = ~clk`): the
        # op-dispatch loop from _ops_genfunc is inlined on purpose so no
        # body generator is created per iteration, forever.  Keep the
        # dispatch in sync with _ops_genfunc; the golden-equivalence
        # suite pins the semantics.
        wait_request = request if resolved else None

        def run_mixed_always(sim):
            while True:
                sim._tick()
                if wait_request is not None:
                    yield wait_request
                for op in body_ops:
                    kind = op[0]
                    if kind == _OP_CALL:
                        op[1](sim)
                    elif kind == _OP_YIELD:
                        sim._tick()
                        yield op[1]
                    elif kind == _OP_DELAY:
                        sim._tick()
                        amount = op[1]().to_uint()
                        if amount is None:
                            raise SimulationError(
                                "delay amount is unknown (x)")
                        yield ("delay", amount)
                    else:
                        yield from op[1](sim)
        return run_mixed_always

    def run_free(sim):
        # No suspension points at all: the statement budget is the only
        # brake, exactly like the interpreted engine.
        while True:
            sim._tick()
            body(sim)
        yield  # pragma: no cover - unreachable; makes this a generator
    return run_free
