"""Abstract syntax tree for the supported Verilog subset.

The node set covers the synthesisable constructs used by the benchmark
circuits plus the behavioural constructs the generated testbench drivers
need (``initial`` blocks, delays, event controls, system tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""
    __slots__ = ()


@dataclass(frozen=True)
class Number(Expr):
    width: Optional[int]        # None = unsized (32-bit) decimal
    val: int
    xmask: int = 0
    signed: bool = False


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class StringLit(Expr):
    text: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str                     # ! ~ & | ^ ~& ~| ~^ + -
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str                     # arithmetic / logical / relational / shifts
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class Concat(Expr):
    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class Replicate(Expr):
    count: Expr
    value: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Bit select or memory-word select: ``name[expr]``."""
    base: str
    index: Expr


@dataclass(frozen=True)
class PartSelect(Expr):
    """Constant part select: ``name[msb:lsb]``."""
    base: str
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class SystemCall(Expr):
    """System function in expression position, e.g. ``$time``."""
    name: str
    args: tuple[Expr, ...] = ()


# ----------------------------------------------------------------------
# L-values
# ----------------------------------------------------------------------
class LValue:
    __slots__ = ()


@dataclass(frozen=True)
class LvIdent(LValue):
    name: str


@dataclass(frozen=True)
class LvIndex(LValue):
    name: str
    index: Expr


@dataclass(frozen=True)
class LvPart(LValue):
    name: str
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class LvConcat(LValue):
    parts: tuple[LValue, ...]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]
    name: Optional[str] = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass(frozen=True)
class CaseItem:
    labels: tuple[Expr, ...]    # empty tuple marks the default item
    body: Stmt


@dataclass(frozen=True)
class Case(Stmt):
    kind: str                   # "case" | "casez" | "casex"
    subject: Expr
    items: tuple[CaseItem, ...]


@dataclass(frozen=True)
class For(Stmt):
    init: "BlockingAssign"
    cond: Expr
    step: "BlockingAssign"
    body: Stmt


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class Repeat(Stmt):
    count: Expr
    body: Stmt


@dataclass(frozen=True)
class Forever(Stmt):
    body: Stmt


@dataclass(frozen=True)
class BlockingAssign(Stmt):
    target: LValue
    value: Expr


@dataclass(frozen=True)
class NonblockingAssign(Stmt):
    target: LValue
    value: Expr


@dataclass(frozen=True)
class DelayStmt(Stmt):
    """``#N stmt`` — the statement may be empty (``#N;``)."""
    amount: Expr
    stmt: Optional[Stmt] = None


@dataclass(frozen=True)
class EventExpr:
    edge: str                   # "pos" | "neg" | "any"
    signal: Expr


@dataclass(frozen=True)
class EventControl(Stmt):
    """``@(...) stmt`` — ``events=None`` encodes ``@(*)``."""
    events: Optional[tuple[EventExpr, ...]]
    stmt: Optional[Stmt] = None


@dataclass(frozen=True)
class SysTaskCall(Stmt):
    name: str
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class NullStmt(Stmt):
    pass


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------
class ModuleItem:
    __slots__ = ()


@dataclass(frozen=True)
class Range:
    """Packed range ``[msb:lsb]`` (constant expressions)."""
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class Port:
    direction: str              # "input" | "output" | "inout"
    name: str
    range: Optional[Range] = None
    is_reg: bool = False
    signed: bool = False


@dataclass(frozen=True)
class NetDecl(ModuleItem):
    kind: str                   # "wire" | "reg" | "integer"
    names: tuple[str, ...]
    range: Optional[Range] = None
    signed: bool = False
    array: Optional[Range] = None       # 1-D unpacked array (memories)
    inits: tuple[Optional[Expr], ...] = ()


@dataclass(frozen=True)
class ParamDecl(ModuleItem):
    name: str
    value: Expr
    local: bool = False


@dataclass(frozen=True)
class ContinuousAssign(ModuleItem):
    target: LValue
    value: Expr


@dataclass(frozen=True)
class AlwaysBlock(ModuleItem):
    """``events=None`` encodes ``always @(*)`` / ``always @*``;
    an empty tuple encodes an unconditioned ``always`` (e.g. clocks)."""
    events: Optional[tuple[EventExpr, ...]]
    body: Stmt


@dataclass(frozen=True)
class InitialBlock(ModuleItem):
    body: Stmt


@dataclass(frozen=True)
class Instance(ModuleItem):
    module: str
    name: str
    connections: tuple[tuple[Optional[str], Optional[Expr]], ...]
    parameters: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class Module:
    name: str
    ports: tuple[Port, ...]
    items: tuple[ModuleItem, ...]


@dataclass(frozen=True)
class SourceFile:
    modules: tuple[Module, ...] = field(default_factory=tuple)

    def module(self, name: str) -> Module:
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(name)
