"""AST to Verilog source rendering.

The mutation engine parses golden RTL, rewrites the AST, and uses this
module to regenerate compilable source.  Rendering is deliberately plain:
stable output makes mutant diffs readable and tests deterministic.
"""

from __future__ import annotations

from . import ast

_IND = "    "


def unparse_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Number):
        if expr.width is None:
            return str(expr.val)
        if expr.xmask:
            bits = []
            for i in range(expr.width - 1, -1, -1):
                if (expr.xmask >> i) & 1:
                    bits.append("x")
                else:
                    bits.append("1" if (expr.val >> i) & 1 else "0")
            return f"{expr.width}'b{''.join(bits)}"
        sign = "s" if expr.signed else ""
        return f"{expr.width}'{sign}d{expr.val}"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.StringLit):
        escaped = expr.text.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.Unary):
        return f"{expr.op}({unparse_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
    if isinstance(expr, ast.Ternary):
        return (f"({unparse_expr(expr.cond)} ? {unparse_expr(expr.then)}"
                f" : {unparse_expr(expr.other)})")
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(unparse_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Replicate):
        return ("{" + unparse_expr(expr.count) + "{"
                + unparse_expr(expr.value) + "}}")
    if isinstance(expr, ast.Index):
        return f"{expr.base}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return f"{expr.base}[{unparse_expr(expr.msb)}:{unparse_expr(expr.lsb)}]"
    if isinstance(expr, ast.SystemCall):
        if expr.args:
            return f"{expr.name}(" + ", ".join(
                unparse_expr(a) for a in expr.args) + ")"
        return expr.name
    raise TypeError(f"cannot unparse expression {expr!r}")


def unparse_lvalue(lv: ast.LValue) -> str:
    if isinstance(lv, ast.LvIdent):
        return lv.name
    if isinstance(lv, ast.LvIndex):
        return f"{lv.name}[{unparse_expr(lv.index)}]"
    if isinstance(lv, ast.LvPart):
        return f"{lv.name}[{unparse_expr(lv.msb)}:{unparse_expr(lv.lsb)}]"
    if isinstance(lv, ast.LvConcat):
        return "{" + ", ".join(unparse_lvalue(p) for p in lv.parts) + "}"
    raise TypeError(f"cannot unparse lvalue {lv!r}")


def _unparse_event_list(events: tuple[ast.EventExpr, ...] | None) -> str:
    if events is None:
        return "@(*)"
    parts = []
    for ev in events:
        prefix = {"pos": "posedge ", "neg": "negedge ", "any": ""}[ev.edge]
        parts.append(prefix + unparse_expr(ev.signal))
    return "@(" + " or ".join(parts) + ")"


def unparse_stmt(stmt: ast.Stmt, indent: int = 1) -> str:
    pad = _IND * indent
    if isinstance(stmt, ast.Block):
        label = f" : {stmt.name}" if stmt.name else ""
        inner = "\n".join(unparse_stmt(s, indent + 1) for s in stmt.stmts)
        if inner:
            return f"{pad}begin{label}\n{inner}\n{pad}end"
        return f"{pad}begin{label}\n{pad}end"
    if isinstance(stmt, ast.If):
        out = f"{pad}if ({unparse_expr(stmt.cond)})\n"
        out += unparse_stmt(stmt.then, indent + 1)
        if stmt.other is not None:
            out += f"\n{pad}else\n" + unparse_stmt(stmt.other, indent + 1)
        return out
    if isinstance(stmt, ast.Case):
        out = f"{pad}{stmt.kind} ({unparse_expr(stmt.subject)})\n"
        for item in stmt.items:
            if item.labels:
                labels = ", ".join(unparse_expr(e) for e in item.labels)
            else:
                labels = "default"
            out += f"{pad}{_IND}{labels}:\n"
            out += unparse_stmt(item.body, indent + 2) + "\n"
        out += f"{pad}endcase"
        return out
    if isinstance(stmt, ast.For):
        init = (f"{unparse_lvalue(stmt.init.target)} = "
                f"{unparse_expr(stmt.init.value)}")
        step = (f"{unparse_lvalue(stmt.step.target)} = "
                f"{unparse_expr(stmt.step.value)}")
        out = f"{pad}for ({init}; {unparse_expr(stmt.cond)}; {step})\n"
        return out + unparse_stmt(stmt.body, indent + 1)
    if isinstance(stmt, ast.While):
        return (f"{pad}while ({unparse_expr(stmt.cond)})\n"
                + unparse_stmt(stmt.body, indent + 1))
    if isinstance(stmt, ast.Repeat):
        return (f"{pad}repeat ({unparse_expr(stmt.count)})\n"
                + unparse_stmt(stmt.body, indent + 1))
    if isinstance(stmt, ast.Forever):
        return f"{pad}forever\n" + unparse_stmt(stmt.body, indent + 1)
    if isinstance(stmt, ast.BlockingAssign):
        return f"{pad}{unparse_lvalue(stmt.target)} = {unparse_expr(stmt.value)};"
    if isinstance(stmt, ast.NonblockingAssign):
        return f"{pad}{unparse_lvalue(stmt.target)} <= {unparse_expr(stmt.value)};"
    if isinstance(stmt, ast.DelayStmt):
        amount = unparse_expr(stmt.amount)
        if stmt.stmt is None:
            return f"{pad}#{amount};"
        inner = unparse_stmt(stmt.stmt, indent).lstrip()
        return f"{pad}#{amount} {inner}"
    if isinstance(stmt, ast.EventControl):
        header = _unparse_event_list(stmt.events)
        if stmt.stmt is None:
            return f"{pad}{header};"
        inner = unparse_stmt(stmt.stmt, indent).lstrip()
        return f"{pad}{header} {inner}"
    if isinstance(stmt, ast.SysTaskCall):
        if stmt.args:
            args = ", ".join(unparse_expr(a) for a in stmt.args)
            return f"{pad}{stmt.name}({args});"
        return f"{pad}{stmt.name};"
    if isinstance(stmt, ast.NullStmt):
        return f"{pad};"
    raise TypeError(f"cannot unparse statement {stmt!r}")


def _unparse_range(rng: ast.Range | None) -> str:
    if rng is None:
        return ""
    return f"[{unparse_expr(rng.msb)}:{unparse_expr(rng.lsb)}] "


def unparse_item(item: ast.ModuleItem) -> str:
    if isinstance(item, ast.NetDecl):
        signed = "signed " if item.signed else ""
        rng = _unparse_range(item.range)
        decls = []
        for name, init in zip(item.names, item.inits or
                              (None,) * len(item.names)):
            text = name
            if item.array is not None:
                text += (f" [{unparse_expr(item.array.msb)}"
                         f":{unparse_expr(item.array.lsb)}]")
            if init is not None:
                text += f" = {unparse_expr(init)}"
            decls.append(text)
        return f"{_IND}{item.kind} {signed}{rng}{', '.join(decls)};"
    if isinstance(item, ast.ParamDecl):
        kw = "localparam" if item.local else "parameter"
        return f"{_IND}{kw} {item.name} = {unparse_expr(item.value)};"
    if isinstance(item, ast.ContinuousAssign):
        return (f"{_IND}assign {unparse_lvalue(item.target)} = "
                f"{unparse_expr(item.value)};")
    if isinstance(item, ast.AlwaysBlock):
        if item.events == ():
            header = f"{_IND}always"
        else:
            header = f"{_IND}always {_unparse_event_list(item.events)}"
        return header + "\n" + unparse_stmt(item.body, 2)
    if isinstance(item, ast.InitialBlock):
        return f"{_IND}initial\n" + unparse_stmt(item.body, 2)
    if isinstance(item, ast.Instance):
        params = ""
        if item.parameters:
            plist = ", ".join(f".{n}({unparse_expr(e)})"
                              for n, e in item.parameters)
            params = f" #({plist})"
        conns = []
        for pname, expr in item.connections:
            value = unparse_expr(expr) if expr is not None else ""
            if pname is None:
                conns.append(value)
            else:
                conns.append(f".{pname}({value})")
        return (f"{_IND}{item.module}{params} {item.name} ("
                + ", ".join(conns) + ");")
    raise TypeError(f"cannot unparse item {item!r}")


def unparse_module(module: ast.Module) -> str:
    ports = []
    for p in module.ports:
        reg = "reg " if p.is_reg else ""
        signed = "signed " if p.signed else ""
        rng = _unparse_range(p.range)
        ports.append(f"{p.direction} {reg}{signed}{rng}{p.name}".rstrip()
                     .replace("  ", " "))
    header = f"module {module.name}(\n"
    header += ",\n".join(_IND + p for p in ports)
    header += "\n);\n"
    body = "\n".join(unparse_item(item) for item in module.items)
    return header + body + "\nendmodule\n"


def unparse_source(source: ast.SourceFile) -> str:
    return "\n".join(unparse_module(m) for m in source.modules)
