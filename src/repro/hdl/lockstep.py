"""Lockstep mutant-schemata unions: N same-interface DUT variants in
one design, one event loop, one run.

AutoEval's Eval2 and the validator's R/S matrices simulate dozens of
*variants of one design* against *one driver*.  The per-variant path
pays the shared driver's execution (clock generation, stimulus
sequencing, scheduler bookkeeping) once per variant; this module builds
a **union design** that pays it once per sweep:

- every lane's modules are renamed with a ``__ls<k>`` suffix (intra-lane
  instances follow), so N structurally-different variants of
  ``top_module`` coexist in one design;
- the driver's single DUT instance is replaced by N lane instances that
  share the input nets and drive per-lane output wires
  (``q``, ``q__ls1``, …);
- every dump ``$fdisplay`` is rewritten into **one widened statement**
  per check-point: shared fields (scenario counter, driven inputs)
  render once, and each output field renders as a delimiter-bracketed
  group of all N lane values.  :func:`demux_lines` splits the groups
  back into N per-lane lines that are byte-identical to what N separate
  runs would have written.

The transform is AST-level and engine-agnostic: the union design runs
through the ordinary elaborate → compile → simulate pipeline (either
execution engine), and the renamed lane modules keep their original
``always``/``assign`` AST nodes, so the shared slot-program cache
reuses the exact programs the per-variant path compiled.

The union is only *valid* when the driver observes the DUT exclusively
through dump ``$fdisplay`` statements — any other read of a DUT output
(a ``$display`` verdict, a checking ``if``, a continuous assign) would
see lane 0 only.  :func:`build_union` statically verifies this and
raises :exc:`LockstepUnsupported` otherwise; callers fall back to the
per-variant path, which stays the behavioural oracle (see the
lockstep-vs-per-mutant differential fuzz battery).
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

from . import ast
from .parser import parse_source_cached

#: Delimiters bracketing per-lane value groups inside a widened dump
#: line.  Control characters: they cannot appear in rendered numeric
#: fields, and a format string containing them is rejected up front.
GROUP_DELIM = "\x1d"
LANE_DELIM = "\x1c"

#: Format specs whose rendered output is delimiter-free (digits, hex
#: letters, ``x``/``z``, ``-``).  ``%c`` / ``%s`` can emit arbitrary
#: bytes, so formats using them on lane-divergent args are unsupported.
_SAFE_SPECS = frozenset("dDbBhHxXtT")

#: System tasks that write to stdout: shared driver state, so a driver
#: using any of them would report lane 0's values only.
_STDOUT_TASKS = frozenset(
    {"$display", "$write", "$monitor", "$strobe"})


class LockstepUnsupported(Exception):
    """The driver/DUT shape cannot be run as a lockstep union.

    Carries a short human-readable reason; callers are expected to fall
    back to the per-variant path.
    """


def lane_suffix(k: int) -> str:
    """The module/net rename suffix for lane ``k``."""
    return f"__ls{k}"


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def _subst_expr(expr, mapping: dict):
    """Rewrite identifier references per ``mapping`` (name -> name)."""
    if isinstance(expr, ast.Identifier):
        name = mapping.get(expr.name)
        return ast.Identifier(name) if name is not None else expr
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _subst_expr(expr.operand, mapping))
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _subst_expr(expr.left, mapping),
                          _subst_expr(expr.right, mapping))
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(_subst_expr(expr.cond, mapping),
                           _subst_expr(expr.then, mapping),
                           _subst_expr(expr.other, mapping))
    if isinstance(expr, ast.Concat):
        return ast.Concat(tuple(_subst_expr(p, mapping)
                                for p in expr.parts))
    if isinstance(expr, ast.Replicate):
        return ast.Replicate(_subst_expr(expr.count, mapping),
                             _subst_expr(expr.value, mapping))
    if isinstance(expr, ast.Index):
        return ast.Index(mapping.get(expr.base, expr.base),
                         _subst_expr(expr.index, mapping))
    if isinstance(expr, ast.PartSelect):
        return ast.PartSelect(mapping.get(expr.base, expr.base),
                              expr.msb, expr.lsb)
    return expr


def _expr_refs(expr, names: frozenset) -> bool:
    """Does ``expr`` reference any identifier in ``names``?"""
    if expr is None:
        return False
    if isinstance(expr, ast.Identifier):
        return expr.name in names
    if isinstance(expr, ast.Unary):
        return _expr_refs(expr.operand, names)
    if isinstance(expr, ast.Binary):
        return (_expr_refs(expr.left, names)
                or _expr_refs(expr.right, names))
    if isinstance(expr, ast.Ternary):
        return (_expr_refs(expr.cond, names)
                or _expr_refs(expr.then, names)
                or _expr_refs(expr.other, names))
    if isinstance(expr, ast.Concat):
        return any(_expr_refs(p, names) for p in expr.parts)
    if isinstance(expr, ast.Replicate):
        return (_expr_refs(expr.count, names)
                or _expr_refs(expr.value, names))
    if isinstance(expr, ast.Index):
        return expr.base in names or _expr_refs(expr.index, names)
    if isinstance(expr, ast.PartSelect):
        return expr.base in names
    return False


def _lvalue_refs(target, names: frozenset) -> bool:
    if isinstance(target, ast.LvIdent):
        return target.name in names
    if isinstance(target, ast.LvIndex):
        return target.name in names or _expr_refs(target.index, names)
    if isinstance(target, ast.LvPart):
        return target.name in names
    if isinstance(target, ast.LvConcat):
        return any(_lvalue_refs(p, names) for p in target.parts)
    return False


def _events_ref(events, names: frozenset) -> bool:
    if not events:
        return False
    return any(_expr_refs(ev.signal, names) for ev in events)


# ----------------------------------------------------------------------
# Format widening
# ----------------------------------------------------------------------
def _split_fmt(fmt: str) -> list[tuple[str, str]]:
    """``("lit", text)`` / ``("arg", spec-letter)`` segments, mirroring
    the compiler's pre-scan (width modifiers are dropped there too, so a
    rebuilt ``%d`` renders identically to an original ``%0d``)."""
    segments: list[tuple[str, str]] = []
    literal: list[str] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            literal.append(ch)
            i += 1
            continue
        i += 1
        while i < len(fmt) and fmt[i].isdigit():
            i += 1
        if i >= len(fmt):
            raise LockstepUnsupported("dangling % in dump format")
        spec = fmt[i]
        i += 1
        if spec == "%":
            literal.append("%")
            continue
        if literal:
            segments.append(("lit", "".join(literal)))
            literal.clear()
        segments.append(("arg", spec))
    if literal:
        segments.append(("lit", "".join(literal)))
    return segments


def _widen_fdisplay(stmt: ast.SysTaskCall, n_lanes: int,
                    out_maps: list[dict],
                    out_names: frozenset) -> ast.SysTaskCall:
    """One dump ``$fdisplay`` -> one widened statement carrying every
    lane's output fields as delimiter-bracketed groups."""
    fmt = stmt.args[1].text
    if GROUP_DELIM in fmt or LANE_DELIM in fmt:
        raise LockstepUnsupported("group delimiter in dump format")
    _reject_out_refs((stmt.args[0],), out_names, "$fdisplay handle")
    arg_exprs = stmt.args[2:]
    segments = _split_fmt(fmt)
    if sum(1 for kind, _ in segments if kind == "arg") != len(arg_exprs):
        raise LockstepUnsupported("dump format/argument count mismatch")

    fmt_parts: list[str] = []
    args: list = [stmt.args[0]]
    j = 0
    for kind, payload in segments:
        if kind == "lit":
            fmt_parts.append(payload.replace("%", "%%"))
            continue
        expr = arg_exprs[j]
        j += 1
        spec = "%" + payload
        if not _expr_refs(expr, out_names):
            fmt_parts.append(spec)
            args.append(expr)
            continue
        if payload not in _SAFE_SPECS:
            raise LockstepUnsupported(
                f"%{payload} on a DUT output in a dump format")
        fmt_parts.append(GROUP_DELIM + spec
                         + (LANE_DELIM + spec) * (n_lanes - 1)
                         + GROUP_DELIM)
        for k in range(n_lanes):
            args.append(_subst_expr(expr, out_maps[k]))
    return ast.SysTaskCall(
        stmt.name,
        (args[0], ast.StringLit("".join(fmt_parts))) + tuple(args[1:]))


def _is_dump_fdisplay(stmt) -> bool:
    return (isinstance(stmt, ast.SysTaskCall)
            and stmt.name == "$fdisplay"
            and len(stmt.args) >= 2
            and isinstance(stmt.args[1], ast.StringLit))


# ----------------------------------------------------------------------
# Statement transform + static validation
# ----------------------------------------------------------------------
def _reject_out_refs(exprs, out_names: frozenset, where: str) -> None:
    for expr in exprs:
        if _expr_refs(expr, out_names):
            raise LockstepUnsupported(
                f"DUT output read outside a dump $fdisplay ({where})")


def _transform_stmt(stmt, n_lanes: int, out_maps: list[dict],
                    out_names: frozenset):
    """Widen dump ``$fdisplay`` statements; verify nothing else in the
    driver reads a DUT output."""
    if stmt is None:
        return None
    if _is_dump_fdisplay(stmt):
        return _widen_fdisplay(stmt, n_lanes, out_maps, out_names)
    if isinstance(stmt, ast.SysTaskCall):
        if stmt.name in _STDOUT_TASKS:
            raise LockstepUnsupported(
                f"{stmt.name} in the driver (stdout is shared)")
        _reject_out_refs(stmt.args, out_names, stmt.name)
        return stmt
    if isinstance(stmt, ast.Block):
        return ast.Block(
            tuple(_transform_stmt(s, n_lanes, out_maps, out_names)
                  for s in stmt.stmts), stmt.name)
    if isinstance(stmt, ast.If):
        _reject_out_refs((stmt.cond,), out_names, "if condition")
        return ast.If(stmt.cond,
                      _transform_stmt(stmt.then, n_lanes, out_maps,
                                      out_names),
                      _transform_stmt(stmt.other, n_lanes, out_maps,
                                      out_names))
    if isinstance(stmt, ast.Case):
        _reject_out_refs((stmt.subject,), out_names, "case subject")
        items = []
        for item in stmt.items:
            _reject_out_refs(item.labels, out_names, "case label")
            items.append(ast.CaseItem(
                item.labels,
                _transform_stmt(item.body, n_lanes, out_maps,
                                out_names)))
        return ast.Case(stmt.kind, stmt.subject, tuple(items))
    if isinstance(stmt, ast.DelayStmt):
        _reject_out_refs((stmt.amount,), out_names, "delay amount")
        return ast.DelayStmt(
            stmt.amount,
            _transform_stmt(stmt.stmt, n_lanes, out_maps, out_names))
    if isinstance(stmt, ast.EventControl):
        if _events_ref(stmt.events, out_names):
            raise LockstepUnsupported("event control on a DUT output")
        return ast.EventControl(
            stmt.events,
            _transform_stmt(stmt.stmt, n_lanes, out_maps, out_names))
    if isinstance(stmt, ast.For):
        _reject_out_refs((stmt.init.value, stmt.cond, stmt.step.value),
                         out_names, "for loop")
        return ast.For(stmt.init, stmt.cond, stmt.step,
                       _transform_stmt(stmt.body, n_lanes, out_maps,
                                       out_names))
    if isinstance(stmt, ast.While):
        _reject_out_refs((stmt.cond,), out_names, "while condition")
        return ast.While(stmt.cond,
                         _transform_stmt(stmt.body, n_lanes, out_maps,
                                         out_names))
    if isinstance(stmt, ast.Repeat):
        _reject_out_refs((stmt.count,), out_names, "repeat count")
        return ast.Repeat(stmt.count,
                          _transform_stmt(stmt.body, n_lanes, out_maps,
                                          out_names))
    if isinstance(stmt, ast.Forever):
        return ast.Forever(_transform_stmt(stmt.body, n_lanes, out_maps,
                                           out_names))
    if isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
        if (_expr_refs(stmt.value, out_names)
                or _lvalue_refs(stmt.target, out_names)):
            raise LockstepUnsupported(
                "DUT output read outside a dump $fdisplay (assignment)")
        return stmt
    return stmt


# ----------------------------------------------------------------------
# Lane-module renaming (cached: the same mutant set is swept against
# many fresh drivers, and reusing the renamed Module objects keeps the
# shared slot-program cache hitting by AST identity)
# ----------------------------------------------------------------------
_RENAME_CACHE_SIZE = 1024
_rename_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_rename_lock = Lock()


def _rename_lane_modules(src_file: ast.SourceFile,
                         k: int) -> tuple[ast.Module, ...]:
    # Identity-keyed: parse_source_cached returns one AST object per
    # source text, and the cached entry pins ``src_file`` so its id
    # cannot be recycled while the key lives.
    key = (id(src_file), k)
    with _rename_lock:
        cached = _rename_cache.get(key)
        if cached is not None:
            _rename_cache.move_to_end(key)
            return cached[1]
    names = {m.name for m in src_file.modules}
    renamed = tuple(
        ast.Module(
            mod.name + lane_suffix(k), mod.ports,
            tuple(ast.Instance(item.module + lane_suffix(k), item.name,
                               item.connections, item.parameters)
                  if (isinstance(item, ast.Instance)
                      and item.module in names)
                  else item
                  for item in mod.items))
        for mod in src_file.modules)
    with _rename_lock:
        while len(_rename_cache) >= _RENAME_CACHE_SIZE:
            _rename_cache.popitem(last=False)
        _rename_cache[key] = (src_file, renamed)
    return renamed


def clear_lockstep_caches() -> None:
    with _rename_lock:
        _rename_cache.clear()


def lockstep_cache_stats() -> dict:
    with _rename_lock:
        return {"size": len(_rename_cache)}


# ----------------------------------------------------------------------
# Union construction
# ----------------------------------------------------------------------
def _check_lane_interfaces(lane_asts, dut_module: str) -> None:
    reference = None
    for k, lane in enumerate(lane_asts):
        try:
            module = lane.module(dut_module)
        except KeyError:
            raise LockstepUnsupported(
                f"lane {k} has no module {dut_module!r}") from None
        shape = tuple((p.direction, p.name) for p in module.ports)
        if any(direction == "inout" for direction, _ in shape):
            raise LockstepUnsupported("inout ports are unsupported")
        if reference is None:
            reference = shape
        elif shape != reference:
            raise LockstepUnsupported(
                f"lane {k} port interface differs from lane 0")


def build_union(driver_src: str, lane_srcs: list[str],
                dut_module: str = "top_module",
                top: str = "tb") -> ast.SourceFile:
    """Merge a driver and N same-interface DUT variants into one design.

    Raises :exc:`LockstepUnsupported` when the shapes cannot be merged
    faithfully (see the module docstring); syntax errors in any source
    propagate as :exc:`~repro.hdl.errors.VerilogSyntaxError`.
    """
    if not lane_srcs:
        raise LockstepUnsupported("no lanes")
    for src in lane_srcs:
        if "$random" in src or "$urandom" in src:
            raise LockstepUnsupported("$random in a DUT lane")
    driver_ast = parse_source_cached(driver_src)
    lane_asts = [parse_source_cached(src) for src in lane_srcs]
    n_lanes = len(lane_srcs)

    try:
        tb = driver_ast.module(top)
    except KeyError:
        raise LockstepUnsupported(
            f"driver has no module {top!r}") from None
    _check_lane_interfaces(lane_asts, dut_module)
    out_ports = {p.name for p in lane_asts[0].module(dut_module).ports
                 if p.direction == "output"}

    instances = [item for item in tb.items
                 if isinstance(item, ast.Instance)
                 and item.module == dut_module]
    if len(instances) != 1:
        raise LockstepUnsupported(
            f"driver instantiates {dut_module!r} {len(instances)} times")
    inst = instances[0]

    out_wires: set[str] = set()
    for pname, expr in inst.connections:
        if pname is None:
            raise LockstepUnsupported("positional DUT port connection")
        if pname in out_ports:
            if not isinstance(expr, ast.Identifier):
                raise LockstepUnsupported(
                    f"output port .{pname} bound to a non-identifier")
            out_wires.add(expr.name)
    out_names = frozenset(out_wires)
    out_maps: list[dict] = [
        {} if k == 0 else {w: w + lane_suffix(k) for w in out_names}
        for k in range(n_lanes)]

    # Per-lane output wire declarations mirror the driver's originals.
    wire_shapes: dict[str, tuple] = {}
    new_items: list[ast.ModuleItem] = []
    for item in tb.items:
        if item is inst:
            new_items.append(item)  # placeholder, replaced below
            continue
        if isinstance(item, ast.NetDecl):
            for name, init in zip(item.names, item.inits):
                if name in out_names:
                    if init is not None:
                        raise LockstepUnsupported(
                            "initialized DUT output wire")
                    wire_shapes[name] = (item.range, item.signed)
            _reject_out_refs((i for i in item.inits if i is not None),
                             out_names, "net initializer")
            new_items.append(item)
            continue
        if isinstance(item, ast.InitialBlock):
            new_items.append(ast.InitialBlock(_transform_stmt(
                item.body, n_lanes, out_maps, out_names)))
            continue
        if isinstance(item, ast.AlwaysBlock):
            if _events_ref(item.events, out_names):
                raise LockstepUnsupported(
                    "always block sensitive to a DUT output")
            new_items.append(ast.AlwaysBlock(item.events, _transform_stmt(
                item.body, n_lanes, out_maps, out_names)))
            continue
        if isinstance(item, ast.ContinuousAssign):
            if (_expr_refs(item.value, out_names)
                    or _lvalue_refs(item.target, out_names)):
                raise LockstepUnsupported(
                    "continuous assign reads a DUT output")
            new_items.append(item)
            continue
        if isinstance(item, ast.Instance):
            _reject_out_refs((expr for _, expr in item.connections
                              if expr is not None),
                             out_names, f"instance {item.name}")
            new_items.append(item)
            continue
        new_items.append(item)

    missing = out_names - set(wire_shapes)
    if missing:
        raise LockstepUnsupported(
            f"undeclared DUT output wires: {sorted(missing)}")

    index = new_items.index(inst)
    lane_instances = []
    for k in range(n_lanes):
        connections = tuple(
            (pname,
             _subst_expr(expr, out_maps[k]) if expr is not None else None)
            for pname, expr in inst.connections)
        lane_instances.append(ast.Instance(
            dut_module + lane_suffix(k), inst.name + lane_suffix(k),
            connections, inst.parameters))
    new_items[index:index + 1] = lane_instances

    declarations: list[ast.ModuleItem] = []
    for k in range(1, n_lanes):
        for name in sorted(out_names):
            rng, signed = wire_shapes[name]
            declarations.append(ast.NetDecl(
                "wire", (name + lane_suffix(k),), rng, signed, None,
                (None,)))

    union_tb = ast.Module(top, tb.ports,
                          tuple(declarations) + tuple(new_items))

    driver_names = {m.name for m in driver_ast.modules}
    modules: list[ast.Module] = []
    for k, lane_ast in enumerate(lane_asts):
        for module in _rename_lane_modules(lane_ast, k):
            if module.name in driver_names:
                raise LockstepUnsupported(
                    f"module name collision: {module.name}")
            modules.append(module)
    modules.append(union_tb)
    for module in driver_ast.modules:
        if module.name != top:
            modules.append(module)
    return ast.SourceFile(tuple(modules))


# ----------------------------------------------------------------------
# Demultiplexing
# ----------------------------------------------------------------------
def demux_lines(lines: list[str], n_lanes: int) -> list[list[str]]:
    """Split a union run's widened dump back into per-lane lines.

    Each widened line alternates shared literal text with
    delimiter-bracketed value groups; lane ``k``'s line re-concatenates
    the literals with the group's ``k``-th value.  Lines without groups
    (fully shared check-points) replicate to every lane verbatim, so
    the result is byte-identical to N separate per-lane runs.
    """
    lanes: list[list[str]] = [[] for _ in range(n_lanes)]
    for line in lines:
        parts = line.split(GROUP_DELIM)
        if len(parts) == 1:
            for lane in lanes:
                lane.append(line)
            continue
        groups = [part.split(LANE_DELIM) if i % 2 else part
                  for i, part in enumerate(parts)]
        for k in range(n_lanes):
            lanes[k].append("".join(
                groups[i][k] if i % 2 else groups[i]
                for i in range(len(groups))))
    return lanes
