"""Token definitions for the Verilog subset lexer."""

from __future__ import annotations

from enum import Enum, auto


class TokenKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()        # value carries (width | None, val, xmask, signed)
    STRING = auto()
    SYSTEM_IDENT = auto()  # $display, $finish, ...
    PUNCT = auto()
    EOF = auto()


#: Keywords of the supported subset.  Everything else is an identifier.
KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "real", "parameter", "localparam", "assign", "always",
    "initial", "begin", "end", "if", "else", "case", "casez", "casex",
    "endcase", "default", "for", "while", "repeat", "forever", "posedge",
    "negedge", "or", "and", "not", "signed", "unsigned", "function",
    "endfunction", "task", "endtask", "generate", "endgenerate", "genvar",
    "wait", "deassign", "force", "release",
})

#: Multi-character punctuation, longest first so the lexer can greedily match.
PUNCTUATIONS = (
    "<<<", ">>>", "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "~&", "~|", "~^", "^~", "**", "+:", "-:", "(", ")", "[", "]", "{",
    "}", ",", ";", ":", "?", "@", "#", "=", "+", "-", "*", "/", "%", "&",
    "|", "^", "~", "!", "<", ">", ".",
)


class Token:
    """One lexed token.

    A plain ``__slots__`` class rather than a (frozen) dataclass: the
    lexer creates one per token on the cold-parse path, and dataclass
    ``__init__``/``object.__setattr__`` overhead dominated construction.
    Instances are immutable by convention — they are shared freely
    between cached token streams and parser runs.
    """

    __slots__ = ("kind", "text", "line", "column", "value")

    def __init__(self, kind: TokenKind, text: str, line: int, column: int,
                 value: object = None):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column
        self.value = value

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind is other.kind and self.text == other.text
                and self.line == other.line and self.column == other.column
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.line, self.column,
                     self.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
