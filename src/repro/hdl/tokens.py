"""Token definitions for the Verilog subset lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()        # value carries (width | None, val, xmask, signed)
    STRING = auto()
    SYSTEM_IDENT = auto()  # $display, $finish, ...
    PUNCT = auto()
    EOF = auto()


#: Keywords of the supported subset.  Everything else is an identifier.
KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "real", "parameter", "localparam", "assign", "always",
    "initial", "begin", "end", "if", "else", "case", "casez", "casex",
    "endcase", "default", "for", "while", "repeat", "forever", "posedge",
    "negedge", "or", "and", "not", "signed", "unsigned", "function",
    "endfunction", "task", "endtask", "generate", "endgenerate", "genvar",
    "wait", "deassign", "force", "release",
})

#: Multi-character punctuation, longest first so the lexer can greedily match.
PUNCTUATIONS = (
    "<<<", ">>>", "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "~&", "~|", "~^", "^~", "**", "+:", "-:", "(", ")", "[", "]", "{",
    "}", ",", ";", ":", "?", "@", "#", "=", "+", "-", "*", "/", "%", "&",
    "|", "^", "~", "!", "<", ">", ".",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
