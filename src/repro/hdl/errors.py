"""Exception hierarchy for the Verilog front end and simulator."""

from __future__ import annotations


class HdlError(Exception):
    """Base class for all HDL subsystem errors."""


class VerilogSyntaxError(HdlError):
    """Raised by the lexer/parser for malformed source.

    The AutoEval ``Eval0`` criterion is defined as "no syntax error"; this
    exception is the signal it keys on.

    ``line``/``column`` are 1-based (0 meaning "unknown"); both lexer
    implementations must agree on them exactly — the differential suite
    compares ``(line, column, bare_message)`` across lexers, where
    ``bare_message`` is the diagnostic before the ``line L:C:`` prefix
    is baked into ``args``.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        self.bare_message = message
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class ElaborationError(HdlError):
    """Raised when a parsed design cannot be elaborated (unknown
    identifiers, port mismatches, unsupported constructs, ...)."""


class SimulationError(HdlError):
    """Raised for runtime failures inside the simulator."""


class FinishRequest(Exception):
    """Internal control-flow signal raised by ``$finish``/``$stop``.

    Deliberately *not* an :class:`HdlError`: it must never be reported as
    a failure, only caught by the scheduler (which sets
    ``finish_requested``).  Both the interpreted and the compiled
    execution engines raise this class, so the scheduler's catch sites
    work for either engine.
    """


class SimulationLimit(SimulationError):
    """Raised when a run exceeds its event or time budget.

    Runaway testbenches (e.g. a driver that never calls ``$finish``) are
    reported through this exception instead of hanging the host process.
    """
