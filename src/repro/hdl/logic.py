"""Four-state logic vectors with Verilog operator semantics.

This module implements the value model of the Verilog simulator: fixed-width
bit vectors whose bits are ``0``, ``1`` or ``x`` (unknown).  High-impedance
``z`` is folded into ``x`` on read, which is sufficient for the synthesisable
subset used by the CorrectBench benchmark circuits (no tristate buses).

The representation keeps two integers per vector:

``val``
    the defined bit values; bits that are unknown are canonically ``0`` here.
``xmask``
    a mask whose set bits mark unknown (``x``) positions.

All operators follow IEEE 1364 semantics, including pessimistic
X-propagation: arithmetic and relational operators with any unknown input
produce fully-unknown results, while the bitwise operators use per-bit rules
(for instance ``0 & x == 0`` but ``1 & x == x``).
"""

from __future__ import annotations

from typing import Iterable


class LogicError(ValueError):
    """Raised for malformed logic-vector constructions."""


def _mask(width: int) -> int:
    return (1 << width) - 1


class Logic:
    """A fixed-width four-state logic vector.

    Instances are treated as immutable; all operators return new vectors.
    """

    __slots__ = ("width", "val", "xmask")

    def __init__(self, width: int, val: int = 0, xmask: int = 0):
        if width < 1:
            raise LogicError(f"logic width must be >= 1, got {width}")
        m = _mask(width)
        xmask &= m
        self.width = width
        self.xmask = xmask
        # Canonical form: value bits under the x mask are zero.
        self.val = (val & m) & ~xmask

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_int(cls, value: int, width: int) -> "Logic":
        """Build a fully-defined vector from a Python integer (wraps)."""
        return cls(width, value & _mask(width), 0)

    @classmethod
    def unknown(cls, width: int) -> "Logic":
        """A vector whose bits are all ``x``."""
        return cls(width, 0, _mask(width))

    @classmethod
    def zeros(cls, width: int) -> "Logic":
        return cls(width, 0, 0)

    @classmethod
    def ones(cls, width: int) -> "Logic":
        return cls(width, _mask(width), 0)

    @classmethod
    def from_bits(cls, bits: str) -> "Logic":
        """Build from a bit string, MSB first, e.g. ``"10x1"``."""
        bits = bits.strip().replace("_", "")
        if not bits:
            raise LogicError("empty bit string")
        val = 0
        xmask = 0
        for ch in bits:
            val <<= 1
            xmask <<= 1
            if ch == "1":
                val |= 1
            elif ch == "0":
                pass
            elif ch in "xXzZ":
                xmask |= 1
            else:
                raise LogicError(f"invalid bit character {ch!r}")
        return cls(len(bits), val, xmask)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_defined(self) -> bool:
        """True when no bit is unknown."""
        return self.xmask == 0

    @property
    def has_unknown(self) -> bool:
        return self.xmask != 0

    def to_uint(self) -> int | None:
        """Unsigned integer value, or ``None`` when any bit is unknown."""
        return self.val if self.xmask == 0 else None

    def to_int(self, signed: bool = False) -> int | None:
        """Integer value (optionally two's complement), or ``None`` if x."""
        if self.xmask != 0:
            return None
        if signed and self.val & (1 << (self.width - 1)):
            return self.val - (1 << self.width)
        return self.val

    def bit(self, index: int) -> "Logic":
        """Single-bit select; out-of-range indices read as ``x``."""
        if index < 0 or index >= self.width:
            return Logic.unknown(1)
        return Logic(1, (self.val >> index) & 1, (self.xmask >> index) & 1)

    def bits(self) -> str:
        """Bit string, MSB first, using ``0``, ``1`` and ``x``."""
        out = []
        for i in range(self.width - 1, -1, -1):
            if (self.xmask >> i) & 1:
                out.append("x")
            else:
                out.append("1" if (self.val >> i) & 1 else "0")
        return "".join(out)

    # ------------------------------------------------------------------
    # Width adjustment
    # ------------------------------------------------------------------
    def resize(self, width: int, signed: bool = False) -> "Logic":
        """Zero/sign extend or truncate to ``width`` bits.

        Sign extension replicates the MSB, including an unknown MSB.
        """
        if width == self.width:
            return self
        if width < self.width:
            return Logic(width, self.val, self.xmask)
        ext = width - self.width
        if not signed:
            return Logic(width, self.val, self.xmask)
        msb_i = self.width - 1
        fill = _mask(ext) << self.width
        if (self.xmask >> msb_i) & 1:
            return Logic(width, self.val, self.xmask | fill)
        if (self.val >> msb_i) & 1:
            return Logic(width, self.val | fill, self.xmask)
        return Logic(width, self.val, self.xmask)

    # ------------------------------------------------------------------
    # Truthiness (Verilog condition semantics)
    # ------------------------------------------------------------------
    def truth(self) -> bool | None:
        """Verilog truthiness: True if any bit is known 1, False if all
        bits are known 0, ``None`` (= x) otherwise."""
        if self.val & ~self.xmask:
            return True
        if self.xmask == 0:
            return False
        return None

    # ------------------------------------------------------------------
    # Bitwise operators (per-bit X rules)
    # ------------------------------------------------------------------
    def _binary_widths(self, other: "Logic") -> int:
        return max(self.width, other.width)

    def band(self, other: "Logic") -> "Logic":
        w = self._binary_widths(other)
        a, b = self.resize(w), other.resize(w)
        known0 = (~a.val & ~a.xmask) | (~b.val & ~b.xmask)
        x = (a.xmask | b.xmask) & ~known0
        return Logic(w, a.val & b.val, x)

    def bor(self, other: "Logic") -> "Logic":
        w = self._binary_widths(other)
        a, b = self.resize(w), other.resize(w)
        known1 = (a.val & ~a.xmask) | (b.val & ~b.xmask)
        x = (a.xmask | b.xmask) & ~known1
        return Logic(w, a.val | b.val, x)

    def bxor(self, other: "Logic") -> "Logic":
        w = self._binary_widths(other)
        a, b = self.resize(w), other.resize(w)
        x = a.xmask | b.xmask
        return Logic(w, a.val ^ b.val, x)

    def bxnor(self, other: "Logic") -> "Logic":
        return self.bxor(other).bnot()

    def bnot(self) -> "Logic":
        return Logic(self.width, ~self.val, self.xmask)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce_and(self) -> "Logic":
        known0 = ~self.val & ~self.xmask & _mask(self.width)
        if known0:
            return Logic(1, 0, 0)
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, 1, 0)

    def reduce_or(self) -> "Logic":
        if self.val & ~self.xmask:
            return Logic(1, 1, 0)
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, 0, 0)

    def reduce_xor(self) -> "Logic":
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, bin(self.val).count("1") & 1, 0)

    def reduce_nand(self) -> "Logic":
        return self.reduce_and().bnot()

    def reduce_nor(self) -> "Logic":
        return self.reduce_or().bnot()

    def reduce_xnor(self) -> "Logic":
        return self.reduce_xor().bnot()

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------
    def lnot(self) -> "Logic":
        t = self.truth()
        if t is None:
            return Logic.unknown(1)
        return Logic(1, 0 if t else 1, 0)

    def land(self, other: "Logic") -> "Logic":
        a, b = self.truth(), other.truth()
        if a is False or b is False:
            return Logic(1, 0, 0)
        if a is None or b is None:
            return Logic.unknown(1)
        return Logic(1, 1, 0)

    def lor(self, other: "Logic") -> "Logic":
        a, b = self.truth(), other.truth()
        if a is True or b is True:
            return Logic(1, 1, 0)
        if a is None or b is None:
            return Logic.unknown(1)
        return Logic(1, 0, 0)

    # ------------------------------------------------------------------
    # Equality / relational
    # ------------------------------------------------------------------
    def eq(self, other: "Logic") -> "Logic":
        w = self._binary_widths(other)
        a, b = self.resize(w), other.resize(w)
        if a.xmask or b.xmask:
            return Logic.unknown(1)
        return Logic(1, 1 if a.val == b.val else 0, 0)

    def neq(self, other: "Logic") -> "Logic":
        return self.eq(other).bnot()

    def case_eq(self, other: "Logic") -> "Logic":
        """``===``: x bits compare literally."""
        w = self._binary_widths(other)
        a, b = self.resize(w), other.resize(w)
        same = a.val == b.val and a.xmask == b.xmask
        return Logic(1, 1 if same else 0, 0)

    def case_neq(self, other: "Logic") -> "Logic":
        return self.case_eq(other).bnot()

    def _cmp(self, other: "Logic", signed: bool) -> tuple[int, int] | None:
        w = self._binary_widths(other)
        a, b = self.resize(w, signed), other.resize(w, signed)
        if a.xmask or b.xmask:
            return None
        av = a.to_int(signed)
        bv = b.to_int(signed)
        assert av is not None and bv is not None
        return av, bv

    def lt(self, other: "Logic", signed: bool = False) -> "Logic":
        pair = self._cmp(other, signed)
        if pair is None:
            return Logic.unknown(1)
        return Logic(1, 1 if pair[0] < pair[1] else 0, 0)

    def le(self, other: "Logic", signed: bool = False) -> "Logic":
        pair = self._cmp(other, signed)
        if pair is None:
            return Logic.unknown(1)
        return Logic(1, 1 if pair[0] <= pair[1] else 0, 0)

    def gt(self, other: "Logic", signed: bool = False) -> "Logic":
        return other.lt(self, signed)

    def ge(self, other: "Logic", signed: bool = False) -> "Logic":
        return other.le(self, signed)

    # ------------------------------------------------------------------
    # Arithmetic (pessimistic X semantics)
    # ------------------------------------------------------------------
    def _arith(self, other: "Logic", width: int | None = None) -> int | None:
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return None
        return w

    def add(self, other: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        return Logic.from_int(self.val + other.val, w)

    def sub(self, other: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        return Logic.from_int(self.val - other.val, w)

    def mul(self, other: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        return Logic.from_int(self.val * other.val, w)

    def div(self, other: "Logic", width: int | None = None,
            signed: bool = False) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        a = self.resize(w, signed).to_int(signed)
        b = other.resize(w, signed).to_int(signed)
        assert a is not None and b is not None
        if b == 0:
            return Logic.unknown(w)
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return Logic.from_int(q, w)

    def mod(self, other: "Logic", width: int | None = None,
            signed: bool = False) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        a = self.resize(w, signed).to_int(signed)
        b = other.resize(w, signed).to_int(signed)
        assert a is not None and b is not None
        if b == 0:
            return Logic.unknown(w)
        r = abs(a) % abs(b)
        if a < 0:
            r = -r
        return Logic.from_int(r, w)

    def neg(self, width: int | None = None) -> "Logic":
        w = width if width is not None else self.width
        if self.xmask:
            return Logic.unknown(w)
        return Logic.from_int(-self.val, w)

    def pow(self, other: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self._binary_widths(other)
        if self.xmask or other.xmask:
            return Logic.unknown(w)
        return Logic.from_int(pow(self.val, other.val, 1 << w), w)

    # ------------------------------------------------------------------
    # Shifts
    # ------------------------------------------------------------------
    def shl(self, amount: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self.width
        if amount.xmask:
            return Logic.unknown(w)
        n = amount.val
        if n >= w:
            return Logic.zeros(w)
        return Logic(w, self.val << n, self.xmask << n)

    def shr(self, amount: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self.width
        if amount.xmask:
            return Logic.unknown(w)
        n = amount.val
        if n >= self.width:
            return Logic.zeros(w)
        return Logic(w, self.val >> n, self.xmask >> n)

    def ashr(self, amount: "Logic", width: int | None = None) -> "Logic":
        w = width if width is not None else self.width
        if amount.xmask:
            return Logic.unknown(w)
        n = min(amount.val, self.width)
        msb_i = self.width - 1
        msb_x = (self.xmask >> msb_i) & 1
        msb_v = (self.val >> msb_i) & 1
        fill = _mask(n) << (self.width - n) if n else 0
        val = self.val >> n
        xm = self.xmask >> n
        if msb_x:
            xm |= fill
        elif msb_v:
            val |= fill
        return Logic(w, val, xm)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @staticmethod
    def concat(parts: Iterable["Logic"]) -> "Logic":
        """Concatenate, first part becomes the most-significant bits."""
        parts = list(parts)
        if not parts:
            raise LogicError("empty concatenation")
        val = 0
        xmask = 0
        width = 0
        for p in parts:
            val = (val << p.width) | p.val
            xmask = (xmask << p.width) | p.xmask
            width += p.width
        return Logic(width, val, xmask)

    def replicate(self, count: int) -> "Logic":
        if count < 1:
            raise LogicError(f"replication count must be >= 1, got {count}")
        return Logic.concat([self] * count)

    def part(self, msb: int, lsb: int) -> "Logic":
        """Constant part select ``[msb:lsb]``; out-of-range bits read x."""
        if msb < lsb:
            raise LogicError(f"part select [{msb}:{lsb}] reversed")
        width = msb - lsb + 1
        if lsb >= self.width or msb < 0:
            return Logic.unknown(width)
        val = self.val >> max(lsb, 0)
        xm = self.xmask >> max(lsb, 0)
        out = Logic(width, val, xm)
        if msb >= self.width:
            # Bits above the declared width read as x.
            hi = msb - self.width + 1
            fill = _mask(hi) << (width - hi)
            out = Logic(width, out.val, out.xmask | fill)
        return out

    def set_part(self, msb: int, lsb: int, value: "Logic") -> "Logic":
        """Return a copy with ``[msb:lsb]`` replaced by ``value``."""
        if msb < lsb:
            raise LogicError(f"part select [{msb}:{lsb}] reversed")
        width = msb - lsb + 1
        v = value.resize(width)
        keep = ~(_mask(width) << lsb) & _mask(self.width)
        val = (self.val & keep) | ((v.val << lsb) & ~keep)
        xm = (self.xmask & keep) | ((v.xmask << lsb) & ~keep)
        return Logic(self.width, val, xm)

    # ------------------------------------------------------------------
    # Formatting (matches the $display conventions used by the drivers)
    # ------------------------------------------------------------------
    def format_decimal(self, signed: bool = False) -> str:
        if self.xmask:
            return "x"
        v = self.to_int(signed)
        assert v is not None
        return str(v)

    def format_binary(self) -> str:
        return self.bits()

    def format_hex(self) -> str:
        if self.xmask == 0:
            digits = (self.width + 3) // 4
            return format(self.val, f"0{digits}x")
        out = []
        for nib_i in range((self.width + 3) // 4 - 1, -1, -1):
            nib_x = (self.xmask >> (nib_i * 4)) & 0xF
            nib_v = (self.val >> (nib_i * 4)) & 0xF
            out.append("x" if nib_x else format(nib_v, "x"))
        return "".join(out)

    # ------------------------------------------------------------------
    # Python protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Logic):
            return NotImplemented
        return (self.width == other.width and self.val == other.val
                and self.xmask == other.xmask)

    def __hash__(self) -> int:
        return hash((self.width, self.val, self.xmask))

    def __repr__(self) -> str:
        return f"Logic({self.width}'b{self.bits()})"


def logic_equal_defined(a: Logic, b: Logic) -> bool:
    """True when both vectors are fully defined and equal as unsigned ints.

    This is the comparison the Python checkers use on dump values.
    """
    return a.xmask == 0 and b.xmask == 0 and a.resize(
        max(a.width, b.width)).val == b.resize(max(a.width, b.width)).val
