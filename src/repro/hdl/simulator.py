"""Event-driven simulator kernel.

The kernel implements a simplified IEEE 1364 scheduling model with three
regions per time slot:

``active``
    process resumptions and combinational re-evaluations,
``inactive``
    ``#0`` continuations, promoted when the active region drains,
``NBA``
    non-blocking assignment updates, applied when both queues drain.

Processes are Python generators; they yield suspension requests
(``#delay`` / ``@(events)``) back to the kernel.  Combinational processes
(continuous assignments, ``always @(*)``, port bindings) are plain
callables re-run whenever one of their read signals changes; convergence
is guaranteed by only propagating actual value changes, and runaway
feedback is cut off by a per-slot delta budget.

Two execution engines produce those generators/callables:

``compiled`` (the default)
    process bodies are lowered once by :mod:`repro.hdl.compile` into
    slot-indexed closure programs that only yield at real suspension
    points.  Programs are scope-polymorphic: they are cached globally by
    AST identity + structural signature and merely *re-bound* (a cheap
    slot-table build) for each new elaboration, so pairing one driver
    with many DUT designs compiles it once; the bound program is then
    cached on the ``ProcSpec`` so re-simulating the same elaborated
    design skips the bind too.
``interpret``
    the original recursive-generator statement walker
    (:meth:`Simulator._exec`), kept as the behavioural reference — the
    golden-equivalence suite checks the engines produce identical
    results.
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from . import ast
from .compile import compile_spec
# The canonical engine names live in repro.hdl.context (alongside
# SimContext); re-exported here (redundant-alias form) for the many
# callers that import them from the simulator.
from .context import ENGINE_COMPILED as ENGINE_COMPILED
from .context import ENGINE_INTERPRET as ENGINE_INTERPRET
from .context import ENGINES as ENGINES
from .context import (active_context, current_context, root_context,
                      set_root_context)
from .elaborate import Design, Memory, ProcSpec, Scope, Signal, elaborate
from .errors import FinishRequest, SimulationError, SimulationLimit
from .eval import case_match, eval_expr, signed_of
from .logic import Logic
from .parser import parse_source_cached

MAX_DELTAS_PER_SLOT = 20_000


def set_default_engine(engine: str) -> None:
    """Deprecated: steer the root :class:`~repro.hdl.context.SimContext`.

    Prefer ``use_context(engine=...)`` for request-scoped selection or
    ``set_root_context`` for process setup; this shim remains so legacy
    callers keep working.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"expected one of {ENGINES}")
    message = ("set_default_engine() is deprecated; use "
               "repro.hdl.use_context(engine=...) or set_root_context()")
    if active_context() is not None:
        # The getter resolves through the activation, so a legacy
        # pin-and-restore around this call would read the ACTIVE value
        # and write it into the ROOT — warn loudly instead of letting
        # the set appear to work.
        message += (" — an activated SimContext is in effect and keeps "
                    "winning over this root-context change until it "
                    "exits")
    warnings.warn(message, DeprecationWarning, stacklevel=2)
    set_root_context(root_context().evolve(engine=engine))


def get_default_engine() -> str:
    """The engine the current context resolves to (legacy accessor)."""
    return current_context().engine

# Backwards-compatible alias; the class moved to ``repro.hdl.errors`` so
# the compile pass can raise it without importing this module.
_Finish = FinishRequest


class WaitToken:
    __slots__ = ("process", "armed")

    def __init__(self, process: "Process"):
        self.process = process
        self.armed = True


class Process:
    __slots__ = ("name", "gen", "tokens", "done")

    def __init__(self, name: str, gen):
        self.name = name
        self.gen = gen
        self.tokens: list[WaitToken] = []
        self.done = False


class CombProcess:
    __slots__ = ("name", "run", "pending", "runs_this_slot")

    def __init__(self, name: str, run):
        self.name = name
        self.run = run
        self.pending = False
        self.runs_this_slot = 0


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""
    finished: bool
    sim_time: int
    stdout: list[str]
    files: dict[str, list[str]] = field(default_factory=dict)
    stmt_count: int = 0
    design: Optional[Design] = None

    def file_text(self, name: str) -> str:
        return "\n".join(self.files.get(name, []))

    def signal_value(self, hier_name: str) -> Logic:
        assert self.design is not None
        return self.design.signal(hier_name).value


class Simulator:
    """Runs an elaborated :class:`Design`."""

    def __init__(self, design: Design, max_time: int | None = None,
                 max_stmts: int | None = None, seed: int = 0,
                 engine: str | None = None):
        # Resolution order for every knob: explicit argument > active
        # context > env-seeded root context.
        context = current_context()
        if engine is None:
            engine = context.engine
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        self.engine = engine
        self.design = design
        self.max_time = context.max_time if max_time is None else max_time
        self.max_stmts = (context.max_stmts if max_stmts is None
                          else max_stmts)
        self.time = 0
        self.stmt_count = 0
        self.finish_requested = False

        self.active: deque = deque()
        self.inactive: deque = deque()
        self.nba: list[tuple] = []
        self.future: list[tuple[int, int, Process]] = []
        self._seq = 0

        self.stdout: list[str] = []
        self._fd_names: dict[int, str] = {}
        self._fd_lines: dict[int, list[str]] = {}
        self._fd_partial: dict[int, str] = {}
        self._next_fd = 3
        self._rand_state = (seed * 2654435761 + 1) & 0xFFFFFFFF

        self._comb_procs: list[CombProcess] = []
        self._processes: list[Process] = []
        # The combinational process currently executing; its own writes do
        # not re-trigger it (a process cannot observe events while it runs).
        self._current_comb: CombProcess | None = None

        design.runtime_time = lambda: self.time
        design.runtime_random = self._next_random
        design.runtime_fopen = self._fopen

        # Trigger lists live on the signal/memory objects themselves
        # (no dict lookup per value change); clear any lists left by a
        # previous simulation of the same elaborated design.
        for sig in design.signals.values():
            sig.combs = None
        for mem in design.memories.values():
            mem.combs = None

        self._instantiate(design.processes)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _instantiate(self, specs: Iterable[ProcSpec]) -> None:
        compiled = self.engine == ENGINE_COMPILED
        for spec in specs:
            if spec.kind == "comb":
                runner = (compile_spec(spec).run if compiled
                          else self._interp_comb_runner(spec))
                self._add_comb(spec, runner)
            elif spec.kind == "initial":
                assert spec.body is not None
                gen = (compile_spec(spec).run(self) if compiled
                       else self._exec(spec.body, spec.scope))
                proc = Process(spec.label, gen)
                self._processes.append(proc)
                self.active.append(proc)
            elif spec.kind == "always":
                gen = (compile_spec(spec).run(self) if compiled
                       else self._always_gen(spec))
                proc = Process(spec.label, gen)
                self._processes.append(proc)
                self.active.append(proc)
            else:  # pragma: no cover - elaborator invariant
                raise SimulationError(f"unknown process kind {spec.kind!r}")

    def _interp_comb_runner(self, spec: ProcSpec):
        if spec.pyfunc is not None:
            return spec.pyfunc
        body, scope = spec.body, spec.scope
        assert body is not None

        def runner(sim, _body=body, _scope=scope):
            gen = sim._exec(_body, _scope)
            for _ in gen:
                raise SimulationError(
                    "delay/event control inside combinational block "
                    f"{spec.label!r}")
        return runner

    def _add_comb(self, spec: ProcSpec, runner) -> None:
        comb = CombProcess(spec.label, runner)
        self._comb_procs.append(comb)
        for obj in spec.reads:
            if obj.combs is None:
                obj.combs = []
            obj.combs.append(comb)
        # Every combinational process evaluates once at time zero.
        comb.pending = True
        self.active.append(comb)

    def _always_gen(self, spec: ProcSpec):
        assert spec.body is not None
        events = spec.events or ()
        resolved = self._resolve_events(events, spec.scope) if events else ()
        while True:
            if resolved:
                yield ("wait", resolved)
            yield from self._exec(spec.body, spec.scope)

    def _resolve_events(self, events: tuple[ast.EventExpr, ...],
                        scope: Scope) -> tuple[tuple[str, Signal], ...]:
        resolved = []
        for ev in events:
            if not isinstance(ev.signal, ast.Identifier):
                raise SimulationError(
                    "event controls must reference simple signals")
            obj = scope.lookup(ev.signal.name)
            if not isinstance(obj, Signal):
                raise SimulationError(
                    f"cannot wait on {ev.signal.name!r}")
            resolved.append((ev.edge, obj))
        return tuple(resolved)

    # ------------------------------------------------------------------
    # Runtime services
    # ------------------------------------------------------------------
    def _next_random(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0xFFFFFFFF
        return self._rand_state

    def _fopen(self, filename: str) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fd_names[fd] = filename
        self._fd_lines[fd] = []
        self._fd_partial[fd] = ""
        return fd

    # ------------------------------------------------------------------
    # Value updates
    # ------------------------------------------------------------------
    def set_signal(self, sig: Signal, value: Logic) -> None:
        old = sig.value
        if old.val == value.val and old.xmask == value.xmask:
            return
        sig.value = value
        # Inlined notification (this is the hottest kernel path).
        combs = sig.combs
        if combs:
            for comb in combs:
                if not comb.pending and comb is not self._current_comb:
                    comb.pending = True
                    self.active.append(comb)
        if sig.waiters:
            self._wake_waiters(sig, old, value)

    def _wake_waiters(self, sig: Signal, old: Logic, new: Logic) -> None:
        # LSB as 0 / 1 / 2(=x); an edge fires per the 1364 value
        # transition table (x transitions count for both edges except
        # the excluded endpoint).
        old_bit = 2 if old.xmask & 1 else old.val & 1
        new_bit = 2 if new.xmask & 1 else new.val & 1
        pos = old_bit != new_bit and new_bit != 0 and old_bit != 1
        neg = old_bit != new_bit and new_bit != 1 and old_bit != 0
        keep = []
        for token, edge in sig.waiters:
            if not token.armed:
                continue
            fire = (edge == "any" or (edge == "pos" and pos)
                    or (edge == "neg" and neg))
            if fire:
                token.armed = False
                self.active.append(token.process)
            else:
                keep.append((token, edge))
        sig.waiters[:] = keep

    def write_memory(self, mem: Memory, addr: int, value: Logic) -> None:
        if addr < mem.lo or addr > mem.hi:
            return
        idx = addr - mem.lo
        old = mem.words[idx]
        value = value.resize(mem.width)
        if old.val == value.val and old.xmask == value.xmask:
            return
        mem.words[idx] = value
        combs = mem.combs
        if combs:
            for comb in combs:
                if not comb.pending and comb is not self._current_comb:
                    comb.pending = True
                    self.active.append(comb)
        if mem.waiters:
            keep = []
            for token, _edge in mem.waiters:
                if token.armed:
                    token.armed = False
                    self.active.append(token.process)
            mem.waiters[:] = keep

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _assign(self, target: ast.LValue, value: Logic, scope: Scope) -> None:
        if isinstance(target, ast.LvIdent):
            obj = scope.lookup(target.name)
            if isinstance(obj, Signal):
                self.set_signal(obj, value.resize(obj.width))
                return
            raise SimulationError(f"cannot assign to {target.name!r}")
        if isinstance(target, ast.LvIndex):
            obj = scope.lookup(target.name)
            index = eval_expr(target.index, scope).to_uint()
            if index is None:
                return  # write to unknown index is discarded
            if isinstance(obj, Memory):
                self.write_memory(obj, index, value)
                return
            if isinstance(obj, Signal):
                if index >= obj.width:
                    return
                self.set_signal(
                    obj, obj.value.set_part(index, index, value.resize(1)))
                return
            raise SimulationError(f"cannot assign to {target.name!r}")
        if isinstance(target, ast.LvPart):
            obj = scope.lookup(target.name)
            if not isinstance(obj, Signal):
                raise SimulationError(f"cannot assign to {target.name!r}")
            msb = scope.const_int(target.msb)
            lsb = scope.const_int(target.lsb)
            self.set_signal(obj, obj.value.set_part(msb, lsb, value))
            return
        if isinstance(target, ast.LvConcat):
            offset = 0
            for part in reversed(target.parts):
                w = self._lvalue_width(part, scope)
                self._assign(part, value.part(offset + w - 1, offset), scope)
                offset += w
            return
        raise SimulationError(f"unsupported lvalue {target!r}")

    def _lvalue_width(self, target: ast.LValue, scope: Scope) -> int:
        if isinstance(target, ast.LvIdent):
            obj = scope.lookup(target.name)
            if isinstance(obj, Signal):
                return obj.width
            raise SimulationError(f"cannot size lvalue {target.name!r}")
        if isinstance(target, ast.LvIndex):
            obj = scope.lookup(target.name)
            if isinstance(obj, Memory):
                return obj.width
            return 1
        if isinstance(target, ast.LvPart):
            msb = scope.const_int(target.msb)
            lsb = scope.const_int(target.lsb)
            return msb - lsb + 1
        if isinstance(target, ast.LvConcat):
            return sum(self._lvalue_width(p, scope) for p in target.parts)
        raise SimulationError(f"unsupported lvalue {target!r}")

    def _schedule_nba(self, target: ast.LValue, value: Logic,
                      scope: Scope) -> None:
        """Resolve the lvalue address now, apply the value in the NBA region."""
        if isinstance(target, ast.LvIdent):
            obj = scope.lookup(target.name)
            if isinstance(obj, Signal):
                self.nba.append(("sig", obj, value.resize(obj.width)))
                return
            raise SimulationError(f"cannot assign to {target.name!r}")
        if isinstance(target, ast.LvIndex):
            obj = scope.lookup(target.name)
            index = eval_expr(target.index, scope).to_uint()
            if index is None:
                return
            if isinstance(obj, Memory):
                self.nba.append(("mem", obj, index, value))
                return
            if isinstance(obj, Signal):
                self.nba.append(("part", obj, index, index, value.resize(1)))
                return
            raise SimulationError(f"cannot assign to {target.name!r}")
        if isinstance(target, ast.LvPart):
            obj = scope.lookup(target.name)
            if not isinstance(obj, Signal):
                raise SimulationError(f"cannot assign to {target.name!r}")
            msb = scope.const_int(target.msb)
            lsb = scope.const_int(target.lsb)
            self.nba.append(("part", obj, msb, lsb, value))
            return
        if isinstance(target, ast.LvConcat):
            offset = 0
            for part in reversed(target.parts):
                w = self._lvalue_width(part, scope)
                self._schedule_nba(part, value.part(offset + w - 1, offset),
                                   scope)
                offset += w
            return
        raise SimulationError(f"unsupported lvalue {target!r}")

    def _apply_nba(self) -> None:
        # Drain in place: the list object stays stable so the scheduler
        # loop can hold a local reference to it.
        updates = self.nba[:]
        del self.nba[:]
        for entry in updates:
            kind = entry[0]
            if kind == "sig":
                _, sig, value = entry
                self.set_signal(sig, value)
            elif kind == "part":
                _, sig, msb, lsb, value = entry
                self.set_signal(sig, sig.value.set_part(msb, lsb, value))
            else:
                _, mem, addr, value = entry
                self.write_memory(mem, addr, value)

    # ------------------------------------------------------------------
    # Statement execution (generator)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.stmt_count += 1
        if self.stmt_count > self.max_stmts:
            raise SimulationLimit(
                f"statement budget of {self.max_stmts} exhausted at "
                f"t={self.time} (runaway loop or missing $finish?)")

    def _exec(self, stmt: ast.Stmt, scope: Scope):
        self._tick()

        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                yield from self._exec(s, scope)
            return

        if isinstance(stmt, ast.BlockingAssign):
            width = self._lvalue_width(stmt.target, scope)
            value = eval_expr(stmt.value, scope, width)
            value = value.resize(width, signed_of(stmt.value, scope))
            self._assign(stmt.target, value, scope)
            return

        if isinstance(stmt, ast.NonblockingAssign):
            width = self._lvalue_width(stmt.target, scope)
            value = eval_expr(stmt.value, scope, width)
            value = value.resize(width, signed_of(stmt.value, scope))
            self._schedule_nba(stmt.target, value, scope)
            return

        if isinstance(stmt, ast.If):
            if eval_expr(stmt.cond, scope).truth() is True:
                yield from self._exec(stmt.then, scope)
            elif stmt.other is not None:
                yield from self._exec(stmt.other, scope)
            return

        if isinstance(stmt, ast.Case):
            yield from self._exec_case(stmt, scope)
            return

        if isinstance(stmt, ast.For):
            yield from self._exec(stmt.init, scope)
            while eval_expr(stmt.cond, scope).truth() is True:
                yield from self._exec(stmt.body, scope)
                yield from self._exec(stmt.step, scope)
            return

        if isinstance(stmt, ast.While):
            while eval_expr(stmt.cond, scope).truth() is True:
                self._tick()
                yield from self._exec(stmt.body, scope)
            return

        if isinstance(stmt, ast.Repeat):
            count = eval_expr(stmt.count, scope).to_uint() or 0
            for _ in range(count):
                yield from self._exec(stmt.body, scope)
            return

        if isinstance(stmt, ast.Forever):
            while True:
                self._tick()
                yield from self._exec(stmt.body, scope)

        if isinstance(stmt, ast.DelayStmt):
            amount = eval_expr(stmt.amount, scope).to_uint()
            if amount is None:
                raise SimulationError("delay amount is unknown (x)")
            yield ("delay", amount)
            if stmt.stmt is not None:
                yield from self._exec(stmt.stmt, scope)
            return

        if isinstance(stmt, ast.EventControl):
            if stmt.events is None:
                raise SimulationError(
                    "@(*) is not supported as a procedural statement")
            yield ("wait", self._resolve_events(stmt.events, scope))
            if stmt.stmt is not None:
                yield from self._exec(stmt.stmt, scope)
            return

        if isinstance(stmt, ast.SysTaskCall):
            self._sys_task(stmt, scope)
            return

        if isinstance(stmt, ast.NullStmt):
            return

        raise SimulationError(f"cannot execute statement {stmt!r}")

    def _exec_case(self, stmt: ast.Case, scope: Scope):
        subject = eval_expr(stmt.subject, scope)
        default: ast.Stmt | None = None
        for item in stmt.items:
            if not item.labels:
                default = item.body
                continue
            for label_expr in item.labels:
                label = eval_expr(label_expr, scope)
                if self._case_match(stmt.kind, subject, label):
                    yield from self._exec(item.body, scope)
                    return
        if default is not None:
            yield from self._exec(default, scope)

    # Shared with the compiled engine (repro.hdl.eval.case_match).
    _case_match = staticmethod(case_match)

    # ------------------------------------------------------------------
    # System tasks
    # ------------------------------------------------------------------
    def _sys_task(self, stmt: ast.SysTaskCall, scope: Scope) -> None:
        name = stmt.name
        if name in ("$finish", "$stop"):
            raise _Finish()
        if name == "$display":
            self.stdout.append(self._format_args(stmt.args, scope))
            return
        if name == "$write":
            # Collapsed into stdout lines; sufficient for testbench logs.
            self.stdout.append(self._format_args(stmt.args, scope))
            return
        if name in ("$fdisplay", "$fwrite"):
            if not stmt.args:
                raise SimulationError(f"{name} requires a descriptor")
            fd = eval_expr(stmt.args[0], scope).to_uint()
            if fd is None or fd not in self._fd_lines:
                raise SimulationError(f"{name}: invalid file descriptor")
            text = self._format_args(stmt.args[1:], scope)
            if name == "$fdisplay":
                line = self._fd_partial[fd] + text
                self._fd_partial[fd] = ""
                self._fd_lines[fd].append(line)
            else:
                self._fd_partial[fd] += text
            return
        if name == "$fclose":
            return
        if name in ("$dumpfile", "$dumpvars", "$timeformat", "$monitor",
                    "$fflush"):
            return
        raise SimulationError(f"unsupported system task {name!r}")

    def _format_args(self, args: tuple[ast.Expr, ...], scope: Scope) -> str:
        if not args:
            return ""
        first = args[0]
        if isinstance(first, ast.StringLit):
            return self._format(first.text, args[1:], scope)
        return " ".join(
            eval_expr(a, scope).format_decimal() for a in args)

    def _format(self, fmt: str, args: tuple[ast.Expr, ...],
                scope: Scope) -> str:
        out: list[str] = []
        arg_iter = iter(args)
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            i += 1
            # Skip width/zero-pad modifiers: %0d, %2d, ...
            while i < len(fmt) and fmt[i].isdigit():
                i += 1
            if i >= len(fmt):
                raise SimulationError("dangling % in format string")
            spec = fmt[i]
            i += 1
            if spec == "%":
                out.append("%")
                continue
            try:
                arg = next(arg_iter)
            except StopIteration:
                raise SimulationError(
                    f"missing argument for %{spec} in {fmt!r}") from None
            value = eval_expr(arg, scope)
            if spec in ("d", "D"):
                out.append(value.format_decimal(
                    signed=signed_of(arg, scope)))
            elif spec in ("b", "B"):
                out.append(value.format_binary())
            elif spec in ("h", "H", "x", "X"):
                out.append(value.format_hex())
            elif spec in ("t", "T"):
                out.append(value.format_decimal())
            elif spec in ("c",):
                u = value.to_uint()
                out.append(chr(u & 0xFF) if u is not None else "x")
            elif spec in ("s", "S"):
                if isinstance(arg, ast.StringLit):
                    out.append(arg.text)
                else:
                    u = value.to_uint() or 0
                    raw = u.to_bytes((value.width + 7) // 8, "big")
                    out.append(raw.decode("latin-1").lstrip("\x00"))
            else:
                raise SimulationError(f"unsupported format %{spec}")
        return "".join(out)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run_process(self, proc: Process) -> None:
        try:
            request = next(proc.gen)
        except StopIteration:
            proc.done = True
            return
        except _Finish:
            proc.done = True
            self.finish_requested = True
            return
        kind = request[0]
        if kind == "delay":
            amount = request[1]
            if amount == 0:
                self.inactive.append(proc)
            else:
                self._seq += 1
                heapq.heappush(self.future,
                               (self.time + amount, self._seq, proc))
            return
        if kind == "wait":
            token = WaitToken(proc)
            proc.tokens = [token]
            for edge, sig in request[1]:
                sig.waiters.append((token, edge))
            return
        raise SimulationError(f"unknown suspension {request!r}")

    def _run_comb(self, comb: CombProcess) -> None:
        comb.pending = False
        comb.runs_this_slot += 1
        if comb.runs_this_slot > MAX_DELTAS_PER_SLOT:
            raise SimulationLimit(
                f"combinational loop detected around {comb.name!r} at "
                f"t={self.time}")
        self._current_comb = comb
        try:
            comb.run(self)
        except _Finish:
            # $finish inside a combinational block must end the run, not
            # escape Simulator.run() as an internal exception.
            self.finish_requested = True
        finally:
            self._current_comb = None

    def run(self) -> SimulationResult:
        # Local aliases: this loop is the hottest few lines of the whole
        # system (every evaluation pipeline bottoms out here).
        active = self.active
        inactive = self.inactive
        nba = self.nba
        run_comb = self._run_comb
        run_process = self._run_process
        future = self.future
        while True:
            # Delta loop for the current time slot.
            while active or inactive or nba:
                if self.finish_requested:
                    break
                if active:
                    item = active.popleft()
                    if item.__class__ is CombProcess:
                        run_comb(item)
                    else:
                        run_process(item)
                elif inactive:
                    active.append(inactive.popleft())
                else:
                    self._apply_nba()
            if self.finish_requested or not future:
                break
            next_time, _, proc = heapq.heappop(future)
            if next_time > self.max_time:
                raise SimulationLimit(
                    f"simulation exceeded max_time={self.max_time} "
                    "(missing $finish?)")
            self.time = next_time
            for comb in self._comb_procs:
                comb.runs_this_slot = 0
            active.append(proc)
            while future and future[0][0] == next_time:
                _, _, other = heapq.heappop(future)
                active.append(other)

        files = {self._fd_names[fd]: lines
                 for fd, lines in self._fd_lines.items()}
        return SimulationResult(
            finished=self.finish_requested,
            sim_time=self.time,
            stdout=self.stdout,
            files=files,
            stmt_count=self.stmt_count,
            design=self.design,
        )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def compile_design(sources: str | Iterable[str], top: str) -> Design:
    """Parse and elaborate; raises on syntax or elaboration errors.

    This is the "does it compile" check that AutoEval's Eval0 uses.
    Parsing goes through the text-keyed parse cache; elaboration is
    always fresh (each call returns an independent design).
    """
    if isinstance(sources, str):
        text = sources
    else:
        text = "\n".join(sources)
    return elaborate(parse_source_cached(text), top)


def simulate(sources: str | Iterable[str], top: str,
             max_time: int | None = None,
             max_stmts: int | None = None,
             seed: int = 0, engine: str | None = None) -> SimulationResult:
    """Compile and run a design; the testbench must call ``$finish``.

    ``engine`` selects the execution strategy: ``"compiled"`` (closure
    trees) or ``"interpret"`` (the reference AST walker).  ``engine``,
    ``max_time`` and ``max_stmts`` left as ``None`` resolve through the
    active :class:`~repro.hdl.context.SimContext`
    (:func:`~repro.hdl.context.current_context`).
    """
    design = compile_design(sources, top)
    return Simulator(design, max_time=max_time, max_stmts=max_stmts,
                     seed=seed, engine=engine).run()
